"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig4                 # regenerate Figure 4
    python -m repro tab6 --scale 2.0     # Table 6 on a 2x-sized world
    python -m repro all                  # everything, in paper order
    python -m repro cache stats          # persistent artifact cache usage
    python -m repro cache clear          # drop every cached artifact
    python -m repro explain example.com --date 2021-06-08
                                         # why did this domain get its ID?
    python -m repro serve                # query daemon over stored maps
    python -m repro serve ingest 8       # delta re-inference of snapshot 8

The world is deterministic in (--seed, --scale); the default matches the
test suite's standard world.  With a cache configured (``--cache-dir`` or
``REPRO_CACHE``), gathered snapshots and inference results persist across
invocations, so repeat runs skip the measure→infer work entirely.

Observability: ``--trace PATH`` (or ``REPRO_TRACE``) writes a Chrome-trace/
Perfetto span file plus a ``.jsonl`` event stream, ``--metrics-out PATH``
exports the unified metrics registry (JSON, or Prometheus textfile for
``.prom`` paths), ``--manifest PATH`` records the per-run provenance
manifest, and ``REPRO_LOG``/``--log-level`` enables structured logging.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from datetime import date as date_type
from pathlib import Path

from .experiments import (
    ext_concentration,
    ext_ml,
    ext_spf,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    sec41_corpus,
    tab1_2_3,
    tab4,
    tab5,
    tab6,
)
from .engine import EngineOptions, get_stats, sample_peak_rss
from .experiments.common import StudyContext
from .faults import FAULTS_ENV, resolve_plan
from .obs import log as obs_log
from .obs import manifest as obs_manifest
from .obs import metrics as obs_metrics
from .obs import provenance as obs_provenance
from .obs import trace as obs_trace
from . import resilience
from .resilience import RunInterrupted, ShardQuarantined, trap_shutdown
from .store import CACHE_ENV, ArtifactStore
from .world.build import WorldConfig
from .world.population import SNAPSHOT_DATES

EXPERIMENTS = {
    "sec4-corpus": (sec41_corpus, "Section 4.1 — stable-corpus construction funnel"),
    "tab1-3": (tab1_2_3, "Tables 1-3 — worked examples of the methodology"),
    "fig4": (fig4, "Figure 4 — accuracy of the four inference approaches"),
    "tab4": (tab4, "Table 4 — data-availability breakdown"),
    "tab5": (tab5, "Table 5 — provider IDs per company"),
    "fig5": (fig5, "Figure 5 — top companies per domain set"),
    "fig6": (fig6, "Figure 6 — longitudinal market share"),
    "fig7": (fig7, "Figure 7 — provider churn (Sankey flows)"),
    "fig8": (fig8, "Figure 8 — provider preference by ccTLD"),
    "tab6": (tab6, "Table 6 — top-15 companies per dataset"),
    "ext-spf": (ext_spf, "Extension — SPF-revealed eventual providers (Section 3.4)"),
    "ext-hhi": (ext_concentration, "Extension — HHI/CR-k market concentration over time"),
    "ext-ml": (ext_ml, "Extension — learned misidentification detection"),
}

# Regeneration order mirrors the paper.
PAPER_ORDER = (
    "tab1-3", "fig4", "sec4-corpus", "tab4", "tab5", "fig5", "fig6", "fig7",
    "fig8", "tab6", "ext-spf", "ext-hhi", "ext-ml",
)

log = obs_log.get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Who's Got Your Mail?' (IMC 2021)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "cache", "explain", "resume"],
        help="which table/figure to regenerate ('all' for everything; "
             "'cache' for store maintenance; 'explain' for a per-domain "
             "inference audit trail; 'resume' to continue an interrupted "
             "resilient run)",
    )
    parser.add_argument(
        "argument",
        nargs="?",
        metavar="ARG",
        help="with 'cache': 'stats' (default) or 'clear'; "
             "with 'explain': the domain to explain; "
             "with 'resume': the run id under --runs-root",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="corpus scale factor (1.0 = 1200/1500/300 domains)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="engine workers for gathering/identification "
             "(default: REPRO_JOBS or 1; results are identical for any N)",
    )
    parser.add_argument(
        "--batch-domains", type=int, default=None, metavar="N",
        help="streamed gather batch size: gather snapshots in contiguous "
             "batches of N domains, spilling encoded batches through the "
             "store to keep peak RSS near-flat (default: REPRO_BATCH or "
             "unbatched; 0 disables; results are identical for any N)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="deterministic fault injection plan: 'none', a uniform rate "
             "('0.1'), or 'rate=0.1,seed=3,dns.timeout=0.2,asn:64501=0.5' "
             f"(default: ${FAULTS_ENV}; faults are seeded and replayable)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="print engine perf stats (cache hit rates, timings) to stderr",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help=f"persistent artifact store directory (default: ${CACHE_ENV})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact store for this run",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome-trace/Perfetto span file to PATH (plus a "
             f"PATH.jsonl event stream; default: ${obs_trace.TRACE_ENV})",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="export the unified metrics registry to PATH "
             "(JSON, or Prometheus textfile when PATH ends in .prom/.txt)",
    )
    parser.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write a per-run provenance manifest (world config, cache "
             "state, schema versions, timing summary) to PATH",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help=f"structured-log level on stderr (default: ${obs_log.LOG_ENV})",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured logs as JSON lines "
             f"(default: ${obs_log.LOG_JSON_ENV})",
    )
    parser.add_argument(
        "--run-dir", metavar="PATH", default=None,
        help="make this run resilient: journal + shard checkpoints under "
             "PATH, graceful SIGINT/SIGTERM shutdown, and 'repro resume "
             "--run-dir PATH' to continue after an interruption",
    )
    parser.add_argument(
        "--runs-root", metavar="PATH", default=None,
        help="like --run-dir, but runs get fresh ids under PATH and are "
             f"resumed by id (default: ${resilience.RUNS_ENV})",
    )
    parser.add_argument(
        "--shard-deadline", type=float, default=None, metavar="SECONDS",
        help="supervised-gather watchdog: a shard past this wall-clock "
             "budget is treated as hung, its worker killed, and the shard "
             "reassigned (default: no deadline)",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=2, metavar="N",
        help="reassignments per supervised shard after crashed/hung "
             "workers before the shard is quarantined and the run fails "
             "with a diagnosis (default 2)",
    )
    parser.add_argument(
        "--date", metavar="SNAPSHOT", default=None,
        help="with 'explain': snapshot index (0-8) or ISO date, e.g. "
             "2021-06-08 (default: the last snapshot)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with 'explain': print the provenance record as JSON "
             "instead of the rendered audit trail",
    )
    return parser


def resolve_store(args: argparse.Namespace) -> ArtifactStore | None:
    """The artifact store selected by flags/environment, or None."""
    if args.no_cache:
        return None
    if args.cache_dir:
        return ArtifactStore(args.cache_dir)
    return ArtifactStore.from_env()


def resolve_snapshot(raw: str | None) -> int | None:
    """A snapshot index from ``--date`` (index or ISO date), or None."""
    if raw is None:
        return len(SNAPSHOT_DATES) - 1
    try:
        index = int(raw)
    except ValueError:
        try:
            wanted = date_type.fromisoformat(raw)
        except ValueError:
            return None
        try:
            return SNAPSHOT_DATES.index(wanted)
        except ValueError:
            return None
    return index if 0 <= index < len(SNAPSHOT_DATES) else None


def run_cache_command(args: argparse.Namespace) -> int:
    """The ``repro cache [stats|clear]`` maintenance subcommand."""
    store = resolve_store(args)
    if store is None:
        print(
            f"no artifact cache configured (set {CACHE_ENV} or pass --cache-dir)",
            file=sys.stderr,
        )
        return 2
    if args.argument == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries from {store.root}")
    else:
        if not store.root.is_dir():
            print(f"cache directory {store.root} does not exist", file=sys.stderr)
            return 2
        print(f"cache {store.describe()}")
    return 0


def _explain_via_store(
    config: WorldConfig,
    store: ArtifactStore | None,
    domain: str,
    snapshot_index: int,
    faults_key: str | None,
) -> tuple[dict | None, bool]:
    """``(record, definitive)`` — explain from stored artifacts alone.

    Walks every corpus's stored inference map at the snapshot; a hit
    yields the full provenance record without building the world or
    running any pipeline (O(one domain) on a warm cache).  ``definitive``
    is True when every covered corpus had a stored map, so a miss means
    the domain genuinely has no inference there — not that the store is
    cold.  Any unreadable artifact degrades to (None, False): the caller
    falls back to the full pipeline path.
    """
    from .store import CodecError, ResultView, SnapshotView
    from .world.entities import DatasetTag
    from .world.population import GOV_FIRST_SNAPSHOT

    if store is None:
        return None, False
    all_present = True
    try:
        for dataset in DatasetTag:
            if dataset is DatasetTag.GOV and snapshot_index < GOV_FIRST_SNAPSHOT:
                continue
            payload = store.result_payload(
                config, dataset, snapshot_index, faults_key
            )
            if payload is None:
                all_present = False
                continue
            inference = ResultView(payload).get(domain)
            if inference is None:
                continue
            measurement = None
            measured = store.measurement_payload(
                config, dataset, snapshot_index, faults_key
            )
            if measured is not None:
                snapshot_view = SnapshotView(measured)
                if domain in snapshot_view:
                    measurement = snapshot_view.materialize({domain})[domain]
            record = obs_provenance.provenance_record(
                inference,
                corpus=dataset.value,
                snapshot_index=snapshot_index,
                snapshot_date=SNAPSHOT_DATES[snapshot_index],
                measurement=measurement,
            )
            return record, True
    except CodecError:
        return None, False
    return None, all_present


def run_explain_command(args: argparse.Namespace) -> int:
    """``repro explain <domain> [--date SNAPSHOT]`` — the audit trail."""
    domain = args.argument
    snapshot_index = resolve_snapshot(args.date)
    if snapshot_index is None:
        known = ", ".join(day.isoformat() for day in SNAPSHOT_DATES)
        print(
            f"unknown snapshot {args.date!r}; use an index (0-"
            f"{len(SNAPSHOT_DATES) - 1}) or one of: {known}",
            file=sys.stderr,
        )
        return 2
    config = WorldConfig(seed=args.seed).scaled(args.scale)
    plan = resolve_plan(args.faults, seed=args.seed)
    # Warm-cache short-circuit: when the store already holds the maps,
    # explain reads one domain's rows instead of rebuilding the world and
    # re-running the sweep.  Measurement-faulted runs skip it — their
    # evidence-loss section needs the live injector.
    if plan is None or not plan.measurement_active:
        faults_key = plan.store_key() if plan is not None else None
        record, definitive = _explain_via_store(
            config, resolve_store(args), domain, snapshot_index, faults_key
        )
        if record is not None:
            if args.json:
                print(json.dumps(record, indent=2, sort_keys=True))
            else:
                print(obs_provenance.render_explanation(record))
            return 0
        if definitive:
            print(
                f"{domain}: no stored inference in any covered corpus at "
                f"snapshot {snapshot_index} (seed={config.seed}; --scale "
                f"and --seed must match the sweep that filled the cache)",
                file=sys.stderr,
            )
            return 2
    ctx = StudyContext.create(
        config,
        engine=EngineOptions(jobs=args.jobs),
        store=resolve_store(args),
        faults=plan,
    )
    dataset = obs_provenance.locate_domain(ctx, domain)
    if dataset is None:
        print(
            f"{domain}: not in any corpus of this world "
            f"(seed={config.seed}, scale via --scale must match the sweep)",
            file=sys.stderr,
        )
        return 2
    record = obs_provenance.explain(ctx, domain, snapshot_index, dataset=dataset)
    if record is None:
        print(
            f"{domain}: corpus {dataset.value} has no coverage at snapshot "
            f"{snapshot_index}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(obs_provenance.render_explanation(record))
    return 0


def run_experiment(name: str, ctx: StudyContext) -> str:
    module, _description = EXPERIMENTS[name]
    return module.run(ctx).render()


def _prepare_resume(args: argparse.Namespace, parser: argparse.ArgumentParser):
    """Rebuild the original namespace of an interrupted run.

    Returns ``(restored_args, RunRecord)``, or an exit code on error.
    The journal's ``run.start`` event carries the full argument
    namespace; flags added since the journal was written pick up their
    current defaults.  ``--jobs`` may be overridden — results are pinned
    identical across worker counts, so resuming at a different width
    still converges to the same bytes.
    """
    if args.run_dir:
        run_dir = Path(args.run_dir)
        runs_root_arg = None
    elif args.argument:
        root = resilience.runs_root(args.runs_root)
        if root is None:
            print(
                "resume <run-id> needs --runs-root or $"
                f"{resilience.RUNS_ENV} to locate the run directory",
                file=sys.stderr,
            )
            return 2
        run_dir = root / args.argument
        runs_root_arg = str(root)
    else:
        parser.error("resume requires a run id or --run-dir")
    try:
        record = resilience.load_record(run_dir)
    except resilience.ResumeError as error:
        print(f"cannot resume: {error}", file=sys.stderr)
        return 2
    stored = record.args
    if not stored or "experiment" not in stored:
        print(
            f"cannot resume: journal {record.run_dir} stores no arguments",
            file=sys.stderr,
        )
        return 2
    restored = argparse.Namespace(**{**vars(parser.parse_args(["list"])), **stored})
    restored.run_dir = str(record.run_dir)
    restored.runs_root = runs_root_arg
    if args.jobs is not None:
        restored.jobs = args.jobs
    config = WorldConfig(seed=restored.seed).scaled(restored.scale)
    plan = resolve_plan(restored.faults, seed=restored.seed)
    try:
        resilience.verify_resume_digest(
            record, config, plan.canonical() if plan is not None else None
        )
    except resilience.ResumeError as error:
        print(f"cannot resume: {error}", file=sys.stderr)
        return 2
    if record.completed:
        print(
            f"run {record.run_id} already completed; re-running warm",
            file=sys.stderr,
        )
    else:
        print(
            f"resuming run {record.run_id} "
            f"({record.snapshots_done} snapshots, {record.shards_done} shard "
            "checkpoints journaled)",
            file=sys.stderr,
        )
    return restored, record


def main(argv: list[str] | None = None, *, dist_coordinator=None) -> int:
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "dist":
        # Distributed execution verbs (`repro dist coordinator|worker`).
        from .dist.cli import main as dist_main

        return dist_main(raw[1:])
    if raw and raw[0] == "serve":
        # The serving subcommands have their own parser (daemon flags,
        # client verbs) — dispatch before the experiment parser sees them.
        from .serve.cli import main as serve_main

        return serve_main(raw[1:])
    if raw and raw[0] == "top":
        # `repro top` is sugar for `repro serve top` — the live view.
        from .serve.cli import main as serve_main

        return serve_main(raw)
    if raw and raw[0] == "obs":
        # Observability tooling: `repro obs report` / `repro obs timeline`.
        from .obs.cli import main as obs_main

        return obs_main(raw[1:])
    parser = build_parser()
    args = parser.parse_args(raw)
    if args.argument is not None and args.experiment not in (
        "cache", "explain", "resume"
    ):
        parser.error("positional ARG is only valid with 'cache', 'explain', or 'resume'")
    if args.experiment == "cache" and args.argument not in (None, "stats", "clear"):
        parser.error("cache action must be 'stats' or 'clear'")
    if args.experiment == "explain" and args.argument is None:
        parser.error("explain requires a domain argument")

    resume_record = None
    if args.experiment == "resume":
        prepared = _prepare_resume(args, parser)
        if isinstance(prepared, int):
            return prepared
        args, resume_record = prepared

    if args.log_level or args.log_json or obs_log.env_level():
        obs_log.configure(level=args.log_level, json_lines=args.log_json or None)

    if args.experiment == "list":
        for name in PAPER_ORDER:
            print(f"{name:8s} {EXPERIMENTS[name][1]}")
        return 0
    if args.experiment == "cache":
        return run_cache_command(args)

    trace_path = args.trace or os.environ.get(obs_trace.TRACE_ENV)
    if trace_path:
        obs_trace.enable(stream_path=obs_trace.jsonl_path(trace_path))

    try:
        if args.experiment == "explain":
            return run_explain_command(args)
        return _run_experiments(
            args, trace_path, argv, resume_record, dist=dist_coordinator
        )
    finally:
        if trace_path:
            tracer = obs_trace.active()
            if tracer is not None:
                tracer.write_chrome(trace_path)
            obs_trace.disable()


def _prepare_run_context(
    args: argparse.Namespace,
    config: WorldConfig,
    plan,
    store: ArtifactStore | None,
    names,
    argv: list[str] | None,
    resume_record,
) -> "resilience.RunContext | None":
    """Build the resilience bundle, or None for a plain (pre-PR) run."""
    root = resilience.runs_root(getattr(args, "runs_root", None))
    runs_root_path = None
    if resume_record is not None:
        run_dir = Path(resume_record.run_dir)
        run_id = resume_record.run_id
        if root is not None and run_dir == root / run_id:
            runs_root_path = root
    elif args.run_dir:
        run_dir = Path(args.run_dir)
        run_id = resilience.new_run_id()
        if (run_dir / resilience.JOURNAL_NAME).exists():
            raise resilience.ResumeError(
                f"{run_dir} already holds a journal; continue it with "
                f"'python -m repro resume --run-dir {run_dir}'"
            )
    elif root is not None:
        run_id = resilience.new_run_id()
        run_dir = root / run_id
        runs_root_path = root
    else:
        return None
    journal = resilience.RunJournal(run_dir, run_id)
    if resume_record is not None:
        journal.append(
            "run.resume",
            resume=resume_record.resume_count + 1,
            argv=list(argv) if argv is not None else None,
        )
    else:
        journal.append(
            "run.start",
            args=dict(vars(args)),
            config_digest=resilience.config_digest(
                config, plan.canonical() if plan is not None else None
            ),
            experiments=list(names),
            argv=list(argv) if argv is not None else None,
        )
    checkpoints = None
    if store is not None:
        checkpoints = resilience.ShardCheckpointer(
            store, config, plan.store_key() if plan is not None else None
        )
    return resilience.RunContext(
        run_id=run_id,
        run_dir=Path(run_dir),
        journal=journal,
        shutdown=resilience.ShutdownFlag(),
        checkpoints=checkpoints,
        resumed_from=resume_record,
        runs_root=runs_root_path,
    )


def _run_experiments(
    args: argparse.Namespace,
    trace_path: str | None,
    argv: list[str] | None,
    resume_record=None,
    dist=None,
) -> int:
    config = WorldConfig(seed=args.seed).scaled(args.scale)
    store = resolve_store(args)
    plan = resolve_plan(args.faults, seed=args.seed)
    engine = EngineOptions(
        jobs=args.jobs,
        shard_deadline=args.shard_deadline,
        max_restarts=args.max_restarts,
        batch_domains=args.batch_domains,
    )
    names = PAPER_ORDER if args.experiment == "all" else (args.experiment,)
    try:
        run = _prepare_run_context(
            args, config, plan, store, names, argv, resume_record
        )
    except resilience.ResumeError as error:
        print(str(error), file=sys.stderr)
        return 2
    if dist is not None:
        # Pin the welcome document (world, faults, shared store) before
        # the socket exists, so a fast-joining host can never see a
        # half-configured coordinator; dist flags stay out of the
        # journaled args, so `repro resume` continues locally.
        dist.configure(
            config=config,
            faults_spec=plan.canonical() if plan is not None else None,
            cache_dir=str(store.root) if store is not None else None,
            run_id=run.run_id if run is not None else None,
        )
        if run is not None:
            dist.journal = run.journal
        dist.start()
        where = dist.socket_path or "tcp:{}:{}".format(*dist.tcp_address[:2])
        print(f"dist coordinator listening on {where}", file=sys.stderr)
    started = time.time()
    print(
        f"Building world (seed={config.seed}, "
        f"{config.alexa_size}/{config.com_size}/{config.gov_size} domains) ...",
        file=sys.stderr,
    )
    if plan is not None:
        print(f"fault injection active: {plan.canonical()}", file=sys.stderr)
    if run is not None:
        print(f"resilient run {run.run_id}: journal at {run.journal.path}", file=sys.stderr)
    log.info(
        "run.start",
        extra={"fields": {"experiments": list(names), "seed": config.seed}},
    )
    completed: list[str] = []
    interrupted_signal: str | None = None
    quarantine: ShardQuarantined | None = None
    exit_code = 0
    shutdown_trap = (
        trap_shutdown(run.shutdown) if run is not None else contextlib.nullcontext()
    )
    try:
        with shutdown_trap, obs_trace.span("run", cat="run", experiments=len(names)):
            ctx = StudyContext.create(
                config, engine=engine, store=store, faults=plan,
                resilience=run, dist=dist,
            )
            for name in names:
                if run is not None:
                    run.shutdown.raise_if_set()
                experiment_started = time.time()
                with obs_trace.span(name, cat="experiment"):
                    print(run_experiment(name, ctx))
                print()
                elapsed = time.time() - experiment_started
                print(f"[{name}] done in {elapsed:.1f}s", file=sys.stderr)
                log.info(
                    "experiment.done",
                    extra={"fields": {"experiment": name, "seconds": round(elapsed, 3)}},
                )
                completed.append(name)
                if run is not None:
                    run.journal.append(
                        "experiment.done", experiment=name, seconds=round(elapsed, 3)
                    )
    except RunInterrupted as stop:
        interrupted_signal = stop.signal_name
        exit_code = 130
    except KeyboardInterrupt:
        if run is None:
            raise
        interrupted_signal = run.shutdown.signal_name or "SIGINT"
        exit_code = 130
    except ShardQuarantined as error:
        quarantine = error
        exit_code = 3

    total_elapsed = time.time() - started
    sample_peak_rss()

    if exit_code == 0:
        print(f"Done in {total_elapsed:.1f}s", file=sys.stderr)
        if args.perf:
            print(get_stats().render(), file=sys.stderr)
        if args.metrics_out:
            obs_metrics.write_metrics(args.metrics_out)
            print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
        document = None
        if args.manifest or run is not None:
            document = obs_manifest.build_manifest(
                config=config,
                engine=engine,
                store=store,
                experiments=list(names),
                elapsed_seconds=total_elapsed,
                argv=argv,
                faults=plan,
                resilience=run.describe("complete") if run is not None else None,
            )
        if args.manifest:
            obs_manifest.write_manifest(args.manifest, document)
            print(f"wrote manifest to {args.manifest}", file=sys.stderr)
        if run is not None:
            run.journal.append(
                "run.complete",
                experiments=completed,
                seconds=round(total_elapsed, 3),
            )
            obs_manifest.write_manifest(
                run.run_dir / resilience.MANIFEST_NAME, document
            )
            stale_partial = run.run_dir / resilience.PARTIAL_MANIFEST_NAME
            if stale_partial.exists():
                stale_partial.unlink()
            run.journal.close()
        if trace_path:
            print(
                f"wrote trace to {trace_path} "
                f"(+ {obs_trace.jsonl_path(trace_path)})",
                file=sys.stderr,
            )
        return 0

    # Failure epilogue: finalize a partial manifest, point at the resume.
    if quarantine is not None:
        print(f"run failed: {quarantine}", file=sys.stderr)
        log.error(
            "run.quarantined",
            extra={"fields": {
                "corpus": quarantine.corpus,
                "snapshot": quarantine.snapshot,
                "shard": quarantine.shard_index,
            }},
        )
    if run is not None:
        status = "interrupted" if interrupted_signal is not None else "failed"
        if interrupted_signal is not None:
            run.journal.append(
                "run.interrupted", signal=interrupted_signal, experiments=completed
            )
        else:
            run.journal.append(
                "run.failed", reason=str(quarantine), experiments=completed
            )
        document = obs_manifest.build_manifest(
            config=config,
            engine=engine,
            store=store,
            experiments=completed,
            elapsed_seconds=total_elapsed,
            argv=argv,
            faults=plan,
            resilience=run.describe(status),
        )
        partial_path = run.run_dir / resilience.PARTIAL_MANIFEST_NAME
        obs_manifest.write_manifest(partial_path, document)
        print(f"wrote partial manifest to {partial_path}", file=sys.stderr)
        if interrupted_signal is not None:
            print(
                f"interrupted by {interrupted_signal}; resume with:\n"
                f"  {run.resume_command()}",
                file=sys.stderr,
            )
        run.journal.close()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
