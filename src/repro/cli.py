"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig4                 # regenerate Figure 4
    python -m repro tab6 --scale 2.0     # Table 6 on a 2x-sized world
    python -m repro all                  # everything, in paper order
    python -m repro cache stats          # persistent artifact cache usage
    python -m repro cache clear          # drop every cached artifact
    python -m repro explain example.com --date 2021-06-08
                                         # why did this domain get its ID?

The world is deterministic in (--seed, --scale); the default matches the
test suite's standard world.  With a cache configured (``--cache-dir`` or
``REPRO_CACHE``), gathered snapshots and inference results persist across
invocations, so repeat runs skip the measure→infer work entirely.

Observability: ``--trace PATH`` (or ``REPRO_TRACE``) writes a Chrome-trace/
Perfetto span file plus a ``.jsonl`` event stream, ``--metrics-out PATH``
exports the unified metrics registry (JSON, or Prometheus textfile for
``.prom`` paths), ``--manifest PATH`` records the per-run provenance
manifest, and ``REPRO_LOG``/``--log-level`` enables structured logging.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import date as date_type

from .experiments import (
    ext_concentration,
    ext_ml,
    ext_spf,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    sec41_corpus,
    tab1_2_3,
    tab4,
    tab5,
    tab6,
)
from .engine import EngineOptions, get_stats
from .experiments.common import StudyContext
from .faults import FAULTS_ENV, resolve_plan
from .obs import log as obs_log
from .obs import manifest as obs_manifest
from .obs import metrics as obs_metrics
from .obs import provenance as obs_provenance
from .obs import trace as obs_trace
from .store import CACHE_ENV, ArtifactStore
from .world.build import WorldConfig
from .world.population import SNAPSHOT_DATES

EXPERIMENTS = {
    "sec4-corpus": (sec41_corpus, "Section 4.1 — stable-corpus construction funnel"),
    "tab1-3": (tab1_2_3, "Tables 1-3 — worked examples of the methodology"),
    "fig4": (fig4, "Figure 4 — accuracy of the four inference approaches"),
    "tab4": (tab4, "Table 4 — data-availability breakdown"),
    "tab5": (tab5, "Table 5 — provider IDs per company"),
    "fig5": (fig5, "Figure 5 — top companies per domain set"),
    "fig6": (fig6, "Figure 6 — longitudinal market share"),
    "fig7": (fig7, "Figure 7 — provider churn (Sankey flows)"),
    "fig8": (fig8, "Figure 8 — provider preference by ccTLD"),
    "tab6": (tab6, "Table 6 — top-15 companies per dataset"),
    "ext-spf": (ext_spf, "Extension — SPF-revealed eventual providers (Section 3.4)"),
    "ext-hhi": (ext_concentration, "Extension — HHI/CR-k market concentration over time"),
    "ext-ml": (ext_ml, "Extension — learned misidentification detection"),
}

# Regeneration order mirrors the paper.
PAPER_ORDER = (
    "tab1-3", "fig4", "sec4-corpus", "tab4", "tab5", "fig5", "fig6", "fig7",
    "fig8", "tab6", "ext-spf", "ext-hhi", "ext-ml",
)

log = obs_log.get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Who's Got Your Mail?' (IMC 2021)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "cache", "explain"],
        help="which table/figure to regenerate ('all' for everything; "
             "'cache' for store maintenance; 'explain' for a per-domain "
             "inference audit trail)",
    )
    parser.add_argument(
        "argument",
        nargs="?",
        metavar="ARG",
        help="with 'cache': 'stats' (default) or 'clear'; "
             "with 'explain': the domain to explain",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="corpus scale factor (1.0 = 1200/1500/300 domains)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="engine workers for gathering/identification "
             "(default: REPRO_JOBS or 1; results are identical for any N)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="deterministic fault injection plan: 'none', a uniform rate "
             "('0.1'), or 'rate=0.1,seed=3,dns.timeout=0.2,asn:64501=0.5' "
             f"(default: ${FAULTS_ENV}; faults are seeded and replayable)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="print engine perf stats (cache hit rates, timings) to stderr",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help=f"persistent artifact store directory (default: ${CACHE_ENV})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent artifact store for this run",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome-trace/Perfetto span file to PATH (plus a "
             f"PATH.jsonl event stream; default: ${obs_trace.TRACE_ENV})",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="export the unified metrics registry to PATH "
             "(JSON, or Prometheus textfile when PATH ends in .prom/.txt)",
    )
    parser.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write a per-run provenance manifest (world config, cache "
             "state, schema versions, timing summary) to PATH",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help=f"structured-log level on stderr (default: ${obs_log.LOG_ENV})",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured logs as JSON lines "
             f"(default: ${obs_log.LOG_JSON_ENV})",
    )
    parser.add_argument(
        "--date", metavar="SNAPSHOT", default=None,
        help="with 'explain': snapshot index (0-8) or ISO date, e.g. "
             "2021-06-08 (default: the last snapshot)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with 'explain': print the provenance record as JSON "
             "instead of the rendered audit trail",
    )
    return parser


def resolve_store(args: argparse.Namespace) -> ArtifactStore | None:
    """The artifact store selected by flags/environment, or None."""
    if args.no_cache:
        return None
    if args.cache_dir:
        return ArtifactStore(args.cache_dir)
    return ArtifactStore.from_env()


def resolve_snapshot(raw: str | None) -> int | None:
    """A snapshot index from ``--date`` (index or ISO date), or None."""
    if raw is None:
        return len(SNAPSHOT_DATES) - 1
    try:
        index = int(raw)
    except ValueError:
        try:
            wanted = date_type.fromisoformat(raw)
        except ValueError:
            return None
        try:
            return SNAPSHOT_DATES.index(wanted)
        except ValueError:
            return None
    return index if 0 <= index < len(SNAPSHOT_DATES) else None


def run_cache_command(args: argparse.Namespace) -> int:
    """The ``repro cache [stats|clear]`` maintenance subcommand."""
    store = resolve_store(args)
    if store is None:
        print(
            f"no artifact cache configured (set {CACHE_ENV} or pass --cache-dir)",
            file=sys.stderr,
        )
        return 2
    if args.argument == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries from {store.root}")
    else:
        print(f"cache {store.describe()}")
    return 0


def run_explain_command(args: argparse.Namespace) -> int:
    """``repro explain <domain> [--date SNAPSHOT]`` — the audit trail."""
    domain = args.argument
    snapshot_index = resolve_snapshot(args.date)
    if snapshot_index is None:
        known = ", ".join(day.isoformat() for day in SNAPSHOT_DATES)
        print(
            f"unknown snapshot {args.date!r}; use an index (0-"
            f"{len(SNAPSHOT_DATES) - 1}) or one of: {known}",
            file=sys.stderr,
        )
        return 2
    config = WorldConfig(seed=args.seed).scaled(args.scale)
    plan = resolve_plan(args.faults, seed=args.seed)
    ctx = StudyContext.create(
        config,
        engine=EngineOptions(jobs=args.jobs),
        store=resolve_store(args),
        faults=plan,
    )
    dataset = obs_provenance.locate_domain(ctx, domain)
    if dataset is None:
        print(
            f"{domain}: not in any corpus of this world "
            f"(seed={config.seed}, scale via --scale must match the sweep)",
            file=sys.stderr,
        )
        return 2
    record = obs_provenance.explain(ctx, domain, snapshot_index, dataset=dataset)
    if record is None:
        print(
            f"{domain}: corpus {dataset.value} has no coverage at snapshot "
            f"{snapshot_index}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(obs_provenance.render_explanation(record))
    return 0


def run_experiment(name: str, ctx: StudyContext) -> str:
    module, _description = EXPERIMENTS[name]
    return module.run(ctx).render()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.argument is not None and args.experiment not in ("cache", "explain"):
        parser.error("positional ARG is only valid with 'cache' or 'explain'")
    if args.experiment == "cache" and args.argument not in (None, "stats", "clear"):
        parser.error("cache action must be 'stats' or 'clear'")
    if args.experiment == "explain" and args.argument is None:
        parser.error("explain requires a domain argument")

    if args.log_level or args.log_json or obs_log.env_level():
        obs_log.configure(level=args.log_level, json_lines=args.log_json or None)

    if args.experiment == "list":
        for name in PAPER_ORDER:
            print(f"{name:8s} {EXPERIMENTS[name][1]}")
        return 0
    if args.experiment == "cache":
        return run_cache_command(args)

    trace_path = args.trace or os.environ.get(obs_trace.TRACE_ENV)
    if trace_path:
        obs_trace.enable(stream_path=obs_trace.jsonl_path(trace_path))

    try:
        if args.experiment == "explain":
            return run_explain_command(args)
        return _run_experiments(args, trace_path, argv)
    finally:
        if trace_path:
            tracer = obs_trace.active()
            if tracer is not None:
                tracer.write_chrome(trace_path)
            obs_trace.disable()


def _run_experiments(
    args: argparse.Namespace, trace_path: str | None, argv: list[str] | None
) -> int:
    config = WorldConfig(seed=args.seed).scaled(args.scale)
    store = resolve_store(args)
    plan = resolve_plan(args.faults, seed=args.seed)
    started = time.time()
    print(
        f"Building world (seed={config.seed}, "
        f"{config.alexa_size}/{config.com_size}/{config.gov_size} domains) ...",
        file=sys.stderr,
    )
    if plan is not None:
        print(f"fault injection active: {plan.canonical()}", file=sys.stderr)
    engine = EngineOptions(jobs=args.jobs)
    names = PAPER_ORDER if args.experiment == "all" else (args.experiment,)
    log.info(
        "run.start",
        extra={"fields": {"experiments": list(names), "seed": config.seed}},
    )
    with obs_trace.span("run", cat="run", experiments=len(names)):
        ctx = StudyContext.create(config, engine=engine, store=store, faults=plan)
        for name in names:
            experiment_started = time.time()
            with obs_trace.span(name, cat="experiment"):
                print(run_experiment(name, ctx))
            print()
            elapsed = time.time() - experiment_started
            print(f"[{name}] done in {elapsed:.1f}s", file=sys.stderr)
            log.info(
                "experiment.done",
                extra={"fields": {"experiment": name, "seconds": round(elapsed, 3)}},
            )
    total_elapsed = time.time() - started
    print(f"Done in {total_elapsed:.1f}s", file=sys.stderr)
    if args.perf:
        print(get_stats().render(), file=sys.stderr)
    if args.metrics_out:
        obs_metrics.write_metrics(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    if args.manifest:
        document = obs_manifest.build_manifest(
            config=config,
            engine=engine,
            store=store,
            experiments=list(names),
            elapsed_seconds=total_elapsed,
            argv=argv,
            faults=plan,
        )
        obs_manifest.write_manifest(args.manifest, document)
        print(f"wrote manifest to {args.manifest}", file=sys.stderr)
    if trace_path:
        print(
            f"wrote trace to {trace_path} "
            f"(+ {obs_trace.jsonl_path(trace_path)})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
