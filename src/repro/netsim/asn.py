"""Autonomous systems and prefix-to-AS mapping.

Models the CAIDA Routeviews prefix2as dataset [6] the paper augments IP
addresses with: a set of AS objects, their announced prefixes, and a
longest-prefix-match lookup implemented as a binary trie (so lookups are
O(32) regardless of table size).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ip import IPv4Address, IPv4Prefix, parse_ipv4
from .ip6 import IPv6Address, IPv6Prefix, parse_ipv6


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: number, holder name, and country of registration."""

    number: int
    name: str
    country: str = "US"

    def __post_init__(self) -> None:
        if not 0 < self.number < 2**32:
            raise ValueError(f"bad AS number: {self.number}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AS{self.number} ({self.name})"


class _TrieNode:
    __slots__ = ("children", "asn")

    def __init__(self) -> None:
        self.children: list[_TrieNode | None] = [None, None]
        self.asn: int | None = None


@dataclass
class PrefixToASTable:
    """Longest-prefix-match table from IPv4 prefixes to origin ASNs.

    Mirrors Routeviews semantics: the most specific announced prefix
    covering an address determines its origin AS.  Multi-origin prefixes
    are out of scope (the paper's pipeline only consumes a single ASN).
    """

    _root: _TrieNode = field(default_factory=_TrieNode)
    _root6: _TrieNode = field(default_factory=_TrieNode)
    _asys: dict[int, AutonomousSystem] = field(default_factory=dict)
    _announcements: list[tuple[IPv4Prefix, int]] = field(default_factory=list)
    _announcements6: list[tuple[IPv6Prefix, int]] = field(default_factory=list)

    def register_as(self, asys: AutonomousSystem) -> None:
        existing = self._asys.get(asys.number)
        if existing is not None and existing != asys:
            raise ValueError(f"AS{asys.number} already registered as {existing.name}")
        self._asys[asys.number] = asys

    @staticmethod
    def _insert(root: _TrieNode, network: int, length: int, width: int, asn: int) -> None:
        node = root
        for depth in range(length):
            bit = (network >> (width - 1 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.asn = asn

    @staticmethod
    def _walk(root: _TrieNode, value: int, width: int) -> int | None:
        node = root
        best = node.asn
        for depth in range(width):
            bit = (value >> (width - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.asn is not None:
                best = node.asn
        return best

    def announce(self, prefix: IPv4Prefix | str, asn: int) -> None:
        """Record that *asn* originates *prefix*."""
        if isinstance(prefix, str):
            prefix = IPv4Prefix.parse(prefix)
        if asn not in self._asys:
            raise KeyError(f"AS{asn} not registered")
        self._insert(self._root, prefix.network, prefix.length, 32, asn)
        self._announcements.append((prefix, asn))

    def announce6(self, prefix: IPv6Prefix | str, asn: int) -> None:
        """Record that *asn* originates an IPv6 *prefix*."""
        if isinstance(prefix, str):
            prefix = IPv6Prefix.parse(prefix)
        if asn not in self._asys:
            raise KeyError(f"AS{asn} not registered")
        self._insert(self._root6, prefix.network, prefix.length, 128, asn)
        self._announcements6.append((prefix, asn))

    def lookup_asn(self, address: IPv4Address | str | int) -> int | None:
        """Origin ASN of the most specific covering prefix, or None."""
        if isinstance(address, str):
            value = parse_ipv4(address)
        elif isinstance(address, IPv4Address):
            value = address.value
        else:
            value = address
        return self._walk(self._root, value, 32)

    def lookup_asn6(self, address: IPv6Address | str | int) -> int | None:
        """Origin ASN of the most specific covering IPv6 prefix, or None."""
        if isinstance(address, str):
            value = parse_ipv6(address)
        elif isinstance(address, IPv6Address):
            value = address.value
        else:
            value = address
        return self._walk(self._root6, value, 128)

    def lookup6(self, address: IPv6Address | str | int) -> AutonomousSystem | None:
        asn = self.lookup_asn6(address)
        return self._asys.get(asn) if asn is not None else None

    def announcements6(self) -> list[tuple[IPv6Prefix, int]]:
        return list(self._announcements6)

    def lookup(self, address: IPv4Address | str | int) -> AutonomousSystem | None:
        """The :class:`AutonomousSystem` owning *address*, or None."""
        asn = self.lookup_asn(address)
        if asn is None:
            return None
        return self._asys.get(asn)

    def get_as(self, asn: int) -> AutonomousSystem | None:
        return self._asys.get(asn)

    def announcements(self) -> list[tuple[IPv4Prefix, int]]:
        """All announcements in insertion order (for snapshot export)."""
        return list(self._announcements)

    def autonomous_systems(self) -> list[AutonomousSystem]:
        return sorted(self._asys.values(), key=lambda a: a.number)

    def lookup_linear(self, address: IPv4Address | str | int) -> int | None:
        """Reference LPM by linear scan; used to property-test the trie.

        Matches the trie's tie-break: when the same prefix is announced
        twice (re-origination), the most recent announcement wins.
        """
        if isinstance(address, str):
            address = IPv4Address.parse(address)
        elif isinstance(address, int):
            address = IPv4Address(address)
        best: tuple[int, int] | None = None  # (length, asn)
        for prefix, asn in self._announcements:
            if address in prefix:
                if best is None or prefix.length >= best[0]:
                    best = (prefix.length, asn)
        return best[1] if best else None
