"""IP and AS substrate: IPv4 arithmetic, prefix2as LPM, address registry."""

from .asn import AutonomousSystem, PrefixToASTable
from .ip import AddressError, IPv4Address, IPv4Prefix, format_ipv4, parse_ipv4
from .ip6 import IPv6Address, IPv6Prefix, format_ipv6, parse_ipv6
from .registry import AddressBlock, AddressRegistry, ExhaustedError

__all__ = [
    "AddressBlock",
    "AddressError",
    "AddressRegistry",
    "AutonomousSystem",
    "ExhaustedError",
    "IPv4Address",
    "IPv4Prefix",
    "IPv6Address",
    "IPv6Prefix",
    "PrefixToASTable",
    "format_ipv4",
    "format_ipv6",
    "parse_ipv4",
    "parse_ipv6",
]
