"""IPv4 addresses and prefixes.

Small, dependency-free IPv4 arithmetic.  Addresses are value objects wrapping
a 32-bit integer; prefixes support containment, iteration, subdivision and
canonical CIDR rendering.  The whole measurement substrate (AS announcements,
the scanner's target space, the address registry) is built on these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

_MAX32 = 0xFFFFFFFF


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad text into a 32-bit integer.

    Strict: exactly four decimal octets, no leading ``+``, each 0..255.
    Leading zeros are accepted (``"010"`` == 10) because scan data contains
    them in the wild.
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Render a 32-bit integer as dotted-quad text."""
    if not 0 <= value <= _MAX32:
        raise AddressError(f"address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX32:
            raise AddressError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(parse_ipv4(text))

    def __str__(self) -> str:
        return format_ipv4(self.value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    def is_private(self) -> bool:
        """RFC 1918 check — the world generator never hands these out."""
        return (
            (self.value >> 24) == 10
            or (self.value >> 20) == (172 << 4 | 1)  # 172.16/12
            or (self.value >> 16) == (192 << 8 | 168)
        )


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """A CIDR prefix; ``network`` is always masked to the prefix length."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"bad prefix length: {self.length}")
        if not 0 <= self.network <= _MAX32:
            raise AddressError(f"network out of range: {self.network}")
        if self.network & ~self.mask():
            raise AddressError(
                f"network {format_ipv4(self.network)} has host bits set for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``"a.b.c.d/len"``; host bits must be zero."""
        if "/" not in text:
            raise AddressError(f"missing prefix length: {text!r}")
        addr_text, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise AddressError(f"bad prefix length: {text!r}")
        return cls(parse_ipv4(addr_text), int(length_text))

    @classmethod
    def of(cls, address: IPv4Address | str, length: int) -> "IPv4Prefix":
        """The /length prefix containing *address* (host bits masked off)."""
        if isinstance(address, str):
            address = IPv4Address.parse(address)
        mask = (_MAX32 << (32 - length)) & _MAX32 if length else 0
        return cls(address.value & mask, length)

    def mask(self) -> int:
        return (_MAX32 << (32 - self.length)) & _MAX32 if self.length else 0

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"

    def __contains__(self, item: object) -> bool:
        if isinstance(item, IPv4Address):
            value = item.value
        elif isinstance(item, IPv4Prefix):
            return item.length >= self.length and (item.network & self.mask()) == self.network
        elif isinstance(item, str):
            value = parse_ipv4(item)
        elif isinstance(item, int):
            value = item
        else:
            return False
        return (value & self.mask()) == self.network

    @property
    def size(self) -> int:
        return 1 << (32 - self.length)

    @property
    def first(self) -> IPv4Address:
        return IPv4Address(self.network)

    @property
    def last(self) -> IPv4Address:
        return IPv4Address(self.network + self.size - 1)

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (use only on small prefixes)."""
        for offset in range(self.size):
            yield IPv4Address(self.network + offset)

    def subdivide(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Yield the child prefixes of the given longer length."""
        if new_length < self.length or new_length > 32:
            raise AddressError(
                f"cannot subdivide /{self.length} into /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.network, self.network + self.size, step):
            yield IPv4Prefix(network, new_length)

    def overlaps(self, other: "IPv4Prefix") -> bool:
        return other in self or self in other
