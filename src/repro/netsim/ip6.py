"""IPv6 addresses and prefixes (future-work groundwork, Section 3.4).

The paper develops "a generic inference method based on IPv4 addresses"
and names IPv6 as future work.  This module provides the address layer
that extension needs: RFC 4291 parsing (``::`` compression, embedded IPv4
tails), RFC 5952 canonical formatting, and prefix arithmetic mirroring the
IPv4 API, so the AAAA side of the measurement pipeline has the same
foundations as the A side.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ip import AddressError, parse_ipv4

_MAX128 = (1 << 128) - 1


def parse_ipv6(text: str) -> int:
    """Parse IPv6 text (with optional ``::`` and IPv4-mapped tail)."""
    text = text.strip().lower()
    if not text:
        raise AddressError("empty IPv6 address")
    if text.count("::") > 1:
        raise AddressError(f"multiple '::' in {text!r}")

    if "::" in text:
        head_text, _, tail_text = text.partition("::")
        head = _parse_groups(head_text, allow_v4_tail=False)
        tail = _parse_groups(tail_text)
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise AddressError(f"'::' expands to nothing in {text!r}")
        groups = head + [0] * missing + tail
    else:
        groups = _parse_groups(text)
        if len(groups) != 8:
            raise AddressError(f"need 8 groups in {text!r}")

    value = 0
    for group in groups:
        value = (value << 16) | group
    return value


def _parse_groups(text: str, allow_v4_tail: bool = True) -> list[int]:
    if not text:
        return []
    groups: list[int] = []
    parts = text.split(":")
    for index, part in enumerate(parts):
        if "." in part:
            # Embedded IPv4 (only legal as the final component overall).
            if not allow_v4_tail or index != len(parts) - 1:
                raise AddressError(f"embedded IPv4 not at tail: {text!r}")
            v4 = parse_ipv4(part)
            groups.append(v4 >> 16)
            groups.append(v4 & 0xFFFF)
            continue
        if not part or len(part) > 4:
            raise AddressError(f"bad group {part!r} in {text!r}")
        try:
            value = int(part, 16)
        except ValueError as error:
            raise AddressError(f"bad group {part!r} in {text!r}") from error
        groups.append(value)
    return groups


def format_ipv6(value: int) -> str:
    """Canonical RFC 5952 text: lowercase, longest zero run compressed."""
    if not 0 <= value <= _MAX128:
        raise AddressError(f"IPv6 value out of range: {value}")
    groups = [(value >> (16 * (7 - index))) & 0xFFFF for index in range(8)]

    # Find the longest run of zero groups (length ≥ 2) to compress.
    best_start, best_length = -1, 0
    run_start, run_length = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_length = index, 0
            run_length += 1
            if run_length > best_length:
                best_start, best_length = run_start, run_length
        else:
            run_start, run_length = -1, 0

    if best_length < 2:
        return ":".join(f"{group:x}" for group in groups)
    head = groups[:best_start]
    tail = groups[best_start + best_length:]
    left = ":".join(f"{group:x}" for group in head)
    right = ":".join(f"{group:x}" for group in tail)
    return f"{left}::{right}"


@dataclass(frozen=True, order=True)
class IPv6Address:
    """An IPv6 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX128:
            raise AddressError(f"IPv6 value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        return cls(parse_ipv6(text))

    def __str__(self) -> str:
        return format_ipv6(self.value)

    def __add__(self, offset: int) -> "IPv6Address":
        return IPv6Address(self.value + offset)

    def is_link_local(self) -> bool:
        return (self.value >> 118) == 0x3FA  # fe80::/10

    def is_unique_local(self) -> bool:
        return (self.value >> 121) == 0x7E  # fc00::/7

    def is_documentation(self) -> bool:
        return (self.value >> 96) == 0x20010DB8  # 2001:db8::/32


@dataclass(frozen=True, order=True)
class IPv6Prefix:
    """A CIDR IPv6 prefix; ``network`` always masked to the length."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 128:
            raise AddressError(f"bad IPv6 prefix length: {self.length}")
        if not 0 <= self.network <= _MAX128:
            raise AddressError("IPv6 network out of range")
        if self.network & ~self.mask():
            raise AddressError(
                f"network {format_ipv6(self.network)} has host bits for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv6Prefix":
        if "/" not in text:
            raise AddressError(f"missing IPv6 prefix length: {text!r}")
        address_text, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise AddressError(f"bad IPv6 prefix length: {text!r}")
        return cls(parse_ipv6(address_text), int(length_text))

    @classmethod
    def of(cls, address: IPv6Address | str, length: int) -> "IPv6Prefix":
        if isinstance(address, str):
            address = IPv6Address.parse(address)
        mask = (_MAX128 << (128 - length)) & _MAX128 if length else 0
        return cls(address.value & mask, length)

    def mask(self) -> int:
        return (_MAX128 << (128 - self.length)) & _MAX128 if self.length else 0

    def __str__(self) -> str:
        return f"{format_ipv6(self.network)}/{self.length}"

    def __contains__(self, item: object) -> bool:
        if isinstance(item, IPv6Address):
            value = item.value
        elif isinstance(item, IPv6Prefix):
            return item.length >= self.length and (item.network & self.mask()) == self.network
        elif isinstance(item, str):
            value = parse_ipv6(item)
        elif isinstance(item, int):
            value = item
        else:
            return False
        return (value & self.mask()) == self.network

    @property
    def first(self) -> IPv6Address:
        return IPv6Address(self.network)

    @property
    def last(self) -> IPv6Address:
        return IPv6Address(self.network + (1 << (128 - self.length)) - 1)
