"""Address-space registry: allocates prefixes and addresses to organizations.

The world builder uses this to hand out non-overlapping public IPv4 blocks
to the companies it creates (mail providers, hosting companies, security
vendors, cloud operators) and to carve per-server addresses out of those
blocks.  Every allocation is automatically announced in the associated
:class:`~repro.netsim.asn.PrefixToASTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .asn import AutonomousSystem, PrefixToASTable
from .ip import AddressError, IPv4Address, IPv4Prefix


class ExhaustedError(RuntimeError):
    """Raised when a registry or block has no space left."""


@dataclass
class AddressBlock:
    """A prefix assigned to one organization, with a bump allocator."""

    prefix: IPv4Prefix
    asn: int
    _next_offset: int = 1  # skip the network address

    def allocate_address(self) -> IPv4Address:
        # Leave the broadcast address unused, as real deployments do.
        if self._next_offset >= self.prefix.size - 1:
            raise ExhaustedError(f"block {self.prefix} exhausted")
        address = IPv4Address(self.prefix.network + self._next_offset)
        self._next_offset += 1
        return address

    @property
    def allocated_count(self) -> int:
        return self._next_offset - 1


@dataclass
class AddressRegistry:
    """Carves a supernet into per-AS blocks and tracks announcements.

    The default supernet (11.0.0.0/8) is chosen to be publicly routable,
    non-RFC1918 space so that `IPv4Address.is_private` stays False for all
    simulated infrastructure.
    """

    table: PrefixToASTable = field(default_factory=PrefixToASTable)
    supernet: IPv4Prefix = field(default_factory=lambda: IPv4Prefix.parse("11.0.0.0/8"))
    _next_network: int = field(init=False)
    _blocks: list[AddressBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._next_network = self.supernet.network

    def register_as(
        self, number: int, name: str, country: str = "US"
    ) -> AutonomousSystem:
        asys = AutonomousSystem(number=number, name=name, country=country)
        self.table.register_as(asys)
        return asys

    def allocate_block(self, asn: int, length: int = 20) -> AddressBlock:
        """Allocate the next free /length block to *asn* and announce it."""
        if length < self.supernet.length or length > 30:
            raise AddressError(f"unsupported block length /{length}")
        size = 1 << (32 - length)
        # Align the cursor to the block size.
        network = (self._next_network + size - 1) & ~(size - 1)
        if network + size > self.supernet.network + self.supernet.size:
            raise ExhaustedError("registry supernet exhausted")
        self._next_network = network + size
        prefix = IPv4Prefix(network, length)
        self.table.announce(prefix, asn)
        block = AddressBlock(prefix=prefix, asn=asn)
        self._blocks.append(block)
        return block

    def blocks(self) -> list[AddressBlock]:
        return list(self._blocks)

    def lookup_asn(self, address: IPv4Address | str) -> int | None:
        return self.table.lookup_asn(address)

    def lookup_as(self, address: IPv4Address | str) -> AutonomousSystem | None:
        return self.table.lookup(address)
