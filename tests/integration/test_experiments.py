"""Unit-level tests of the experiment runners' result objects."""

import pytest

from repro.experiments import ext_spf, fig4, fig5, fig6, sec41_corpus, tab4, tab6
from repro.world.entities import DatasetTag


class TestFig4Result:
    def test_cells_per_dataset(self, ctx):
        result = fig4.run(ctx, sample_size=50)
        for evaluation in result.evaluations.values():
            assert len(evaluation.cells) == 8
        assert set(result.evaluations) == {
            DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV,
        }

    def test_sample_size_parameter(self, ctx):
        result = fig4.run(ctx, sample_size=50)
        for evaluation in result.evaluations.values():
            for cell in evaluation.cells:
                assert cell.total <= 50

    def test_seed_changes_samples(self, ctx):
        a = fig4.run(ctx, sample_size=50, seed=1)
        b = fig4.run(ctx, sample_size=50, seed=2)
        a_corrects = [c.correct for e in a.evaluations.values() for c in e.cells]
        b_corrects = [c.correct for e in b.evaluations.values() for c in e.cells]
        assert a_corrects != b_corrects

    def test_render_mentions_all_approaches(self, ctx):
        text = fig4.run(ctx, sample_size=50).render()
        for approach in ("mx-only", "cert-based", "banner-based", "priority-based"):
            assert approach in text


class TestFig5Result:
    def test_panel_structure(self, ctx):
        result = fig5.run(ctx, k=3)
        assert len(result.panels) == 8
        for rows in result.panels.values():
            assert len(rows) <= 3
            assert all(row.rank == index + 1 for index, row in enumerate(rows))

    def test_rank_slices_nested(self, ctx):
        result = fig5.run(ctx)
        # Google's count can only grow as the rank slice widens.
        counts = [
            next(row.count for row in result.panels[panel] if row.label == "google")
            for panel in ("Alexa Top 10k", "Alexa Top 100k", "Alexa Top 1M")
        ]
        assert counts == sorted(counts)


class TestFig6Result:
    def test_nine_panels(self, ctx):
        result = fig6.run(ctx)
        assert len(result.panels) == 9
        letters = {panel.title.split(")")[0][-1] for panel in result.panels.values()}
        assert letters == set("abcdefghi")

    def test_security_panel_membership(self, ctx):
        result = fig6.run(ctx)
        panel = result.panel("com:security")
        assert set(panel.labels) == set(fig6.SECURITY_PANEL)


class TestTab6Result:
    def test_totals_are_sums(self, ctx):
        result = tab6.run(ctx, k=10)
        for dataset, rows in result.rankings.items():
            count, percent = result.totals[dataset]
            assert count == pytest.approx(sum(row.count for row in rows))

    def test_k_parameter(self, ctx):
        result = tab6.run(ctx, k=5)
        assert all(len(rows) == 5 for rows in result.rankings.values())


class TestTab4Result:
    def test_render_has_total_row(self, ctx):
        text = tab4.run(ctx).render()
        assert "Total" in text

    def test_snapshot_parameter(self, ctx):
        early = tab4.run(ctx, snapshot_index=3)
        late = tab4.run(ctx, snapshot_index=8)
        assert early.breakdowns[DatasetTag.ALEXA].total == (
            late.breakdowns[DatasetTag.ALEXA].total
        )


class TestExtSPFResult:
    def test_structure(self, ctx):
        result = ext_spf.run(ctx)
        for dataset, entries in result.adjustments.items():
            for slug, before, after in entries:
                assert after >= before
                assert slug in ("google", "microsoft")

    def test_render(self, ctx):
        text = ext_spf.run(ctx).render()
        assert "SPF" in text and "Hidden customers" in text


class TestSec41Result:
    def test_churn_rate_changes_funnel(self, ctx):
        low = sec41_corpus.run(ctx, churn_rate=0.1)
        high = sec41_corpus.run(ctx, churn_rate=0.4)
        assert high.funnel.union_domains > low.funnel.union_domains
        assert high.funnel.list_stable == low.funnel.list_stable

    def test_render(self, ctx):
        text = sec41_corpus.run(ctx).render()
        assert "funnel" in text.lower() or "Stage" in text
