"""Determinism: identical configs produce identical artifacts end to end."""

import pytest

from repro.experiments import fig5, fig8, tab4
from repro.experiments.common import StudyContext
from repro.world.build import WorldConfig

CONFIG = WorldConfig(seed=31, alexa_size=250, com_size=250, gov_size=80)


@pytest.fixture(scope="module")
def twin_contexts():
    return StudyContext.create(CONFIG), StudyContext.create(CONFIG)


class TestEndToEndDeterminism:
    def test_measurements_identical(self, twin_contexts):
        from repro.world.entities import DatasetTag

        a, b = twin_contexts
        measurements_a = a.measurements(DatasetTag.GOV, 8)
        measurements_b = b.measurements(DatasetTag.GOV, 8)
        assert set(measurements_a) == set(measurements_b)
        for domain in measurements_a:
            ma, mb = measurements_a[domain], measurements_b[domain]
            assert [
                (mx.name, mx.preference, tuple(ip.address for ip in mx.ips))
                for mx in ma.mx_set
            ] == [
                (mx.name, mx.preference, tuple(ip.address for ip in mx.ips))
                for mx in mb.mx_set
            ]
            assert ma.txt == mb.txt

    def test_inferences_identical(self, twin_contexts):
        from repro.world.entities import DatasetTag

        a, b = twin_contexts
        inferences_a = a.priority(DatasetTag.ALEXA, 8)
        inferences_b = b.priority(DatasetTag.ALEXA, 8)
        for domain in inferences_a:
            assert inferences_a[domain].attributions == inferences_b[domain].attributions
            assert inferences_a[domain].status == inferences_b[domain].status

    def test_rendered_artifacts_identical(self, twin_contexts):
        a, b = twin_contexts
        for module in (tab4, fig5, fig8):
            assert module.run(a).render() == module.run(b).render()

    def test_pipeline_rerun_is_idempotent(self, twin_contexts):
        """Running the pipeline twice over the same measurements agrees."""
        from repro.core.pipeline import PriorityPipeline
        from repro.world.entities import DatasetTag

        ctx, _ = twin_contexts
        measurements = ctx.measurements(DatasetTag.COM, 8)
        pipeline = PriorityPipeline(ctx.world.trust_store, ctx.company_map, ctx.world.psl)
        first = pipeline.run(measurements)
        second = pipeline.run(measurements)
        for domain in measurements:
            assert first[domain].attributions == second[domain].attributions

    def test_different_seed_differs(self):
        other = StudyContext.create(
            WorldConfig(seed=32, alexa_size=250, com_size=250, gov_size=80)
        )
        base = StudyContext.create(CONFIG)
        assert set(base.world.domains) != set(other.world.domains)
