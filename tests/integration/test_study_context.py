"""Tests for the StudyContext caching layer and scale handling."""

import os

import pytest

from repro.core.baselines import APPROACH_BANNER, APPROACH_CERT, APPROACH_MX_ONLY
from repro.core.pipeline import PipelineConfig
from repro.experiments.common import env_scale
from repro.world.entities import DatasetTag


class TestCaching:
    def test_measurements_cached(self, ctx):
        first = ctx.measurements(DatasetTag.GOV, 8)
        second = ctx.measurements(DatasetTag.GOV, 8)
        assert first is second

    def test_priority_cached(self, ctx):
        first = ctx.priority(DatasetTag.GOV, 8)
        second = ctx.priority(DatasetTag.GOV, 8)
        assert first is second

    def test_custom_config_not_cached(self, ctx):
        default = ctx.priority_result(DatasetTag.GOV, 8)
        custom = ctx.priority_result(
            DatasetTag.GOV, 8, config=PipelineConfig(check_misidentifications=False)
        )
        assert custom is not default

    def test_baselines_cached_per_approach(self, ctx):
        for approach in (APPROACH_MX_ONLY, APPROACH_CERT, APPROACH_BANNER):
            first = ctx.baseline(approach, DatasetTag.GOV, 8)
            second = ctx.baseline(approach, DatasetTag.GOV, 8)
            assert first is second

    def test_unknown_baseline_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.baseline("oracle", DatasetTag.GOV, 8)

    def test_all_approaches_complete(self, ctx):
        approaches = ctx.all_approaches(DatasetTag.GOV, 8)
        assert approaches is not None and len(approaches) == 4

    def test_all_approaches_none_when_uncovered(self, ctx):
        assert ctx.all_approaches(DatasetTag.GOV, 0) is None


class TestCoverage:
    def test_gov_coverage_window(self, ctx):
        assert not ctx.covered(DatasetTag.GOV, 1)
        assert ctx.covered(DatasetTag.GOV, 2)
        assert ctx.covered(DatasetTag.ALEXA, 0)
        assert not ctx.covered(DatasetTag.ALEXA, 9)

    def test_truth_fn_binding(self, ctx):
        domains = ctx.domains(DatasetTag.ALEXA)
        truth_fn = ctx.truth_fn(8)
        assert truth_fn(domains[0]) == ctx.ground_truth(domains[0], 8)


class TestEnvScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert env_scale() == 2.5

    def test_garbage_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "a lot")
        with pytest.warns(UserWarning, match="REPRO_SCALE"):
            assert env_scale() == 1.0
