"""Integration tests: every paper artifact reproduces with the right shape.

These run the full stack (world → measurement → inference → analysis) on the
session-scoped small world and assert the *qualitative* results the paper
reports: who wins, what rises and falls, where the approaches differ.
"""

import pytest

from repro.core.baselines import (
    APPROACH_BANNER,
    APPROACH_CERT,
    APPROACH_MX_ONLY,
    APPROACH_PRIORITY,
)
from repro.experiments import fig4, fig5, fig6, fig7, fig8, tab1_2_3, tab4, tab5, tab6
from repro.world.entities import DatasetTag


@pytest.fixture(scope="module")
def fig4_result(ctx):
    return fig4.run(ctx)


class TestFigure4Shapes:
    def test_priority_at_least_95_percent_everywhere(self, fig4_result):
        for evaluation in fig4_result.evaluations.values():
            for cell in evaluation.cells:
                if cell.approach == APPROACH_PRIORITY:
                    assert cell.accuracy >= 0.95, cell

    def test_priority_beats_or_ties_every_baseline(self, fig4_result):
        for evaluation in fig4_result.evaluations.values():
            samples = {cell.sample_set for cell in evaluation.cells}
            for sample in samples:
                priority = evaluation.cell(sample, APPROACH_PRIORITY)
                for approach in (APPROACH_MX_ONLY, APPROACH_CERT, APPROACH_BANNER):
                    baseline = evaluation.cell(sample, approach)
                    assert priority.correct >= baseline.correct, (sample, approach)

    def test_mx_only_is_worst_in_aggregate(self, fig4_result):
        totals = {a: 0 for a in (APPROACH_MX_ONLY, APPROACH_CERT, APPROACH_BANNER)}
        for evaluation in fig4_result.evaluations.values():
            for cell in evaluation.cells:
                if cell.approach in totals:
                    totals[cell.approach] += cell.correct
        assert totals[APPROACH_MX_ONLY] < totals[APPROACH_CERT]
        assert totals[APPROACH_MX_ONLY] < totals[APPROACH_BANNER]

    def test_banner_at_least_cert_in_aggregate(self, fig4_result):
        """Section 3.3: banner-based outperforms cert-based (availability)."""
        cert = banner = 0
        for evaluation in fig4_result.evaluations.values():
            for cell in evaluation.cells:
                if cell.approach == APPROACH_CERT:
                    cert += cell.correct
                elif cell.approach == APPROACH_BANNER:
                    banner += cell.correct
        assert banner >= cert

    def test_mx_only_collapses_on_com_unique_mx(self, fig4_result):
        """The paper's headline: 40% accuracy on .com unique-MX domains."""
        evaluation = fig4_result.evaluations[DatasetTag.COM]
        cell = evaluation.cell(".com w/Unique MX", APPROACH_MX_ONLY)
        assert cell.accuracy <= 0.60

    def test_mx_only_better_on_alexa_and_gov_than_com(self, fig4_result):
        com = fig4_result.evaluations[DatasetTag.COM].cell(
            ".com w/Unique MX", APPROACH_MX_ONLY
        )
        alexa = fig4_result.evaluations[DatasetTag.ALEXA].cell(
            "Alexa w/Unique MX", APPROACH_MX_ONLY
        )
        gov = fig4_result.evaluations[DatasetTag.GOV].cell(
            ".gov w/Unique MX", APPROACH_MX_ONLY
        )
        assert alexa.accuracy > com.accuracy
        assert gov.accuracy > com.accuracy

    def test_step4_examined_counts_are_small(self, fig4_result):
        """The paper: manual-examination load is ~1.7% of sampled domains."""
        for evaluation in fig4_result.evaluations.values():
            for cell in evaluation.cells:
                if cell.approach == APPROACH_PRIORITY:
                    assert cell.examined <= cell.total * 0.15


class TestTable4Shapes:
    def test_partition_is_exhaustive(self, ctx):
        result = tab4.run(ctx)
        for dataset, breakdown in result.breakdowns.items():
            assert sum(breakdown.counts.values()) == breakdown.total
            assert breakdown.total == len(ctx.domains(dataset))

    def test_every_category_occupied_in_alexa(self, ctx):
        result = tab4.run(ctx)
        breakdown = result.breakdowns[DatasetTag.ALEXA]
        for category, count in breakdown.counts.items():
            assert count > 0, category

    def test_complete_data_is_majority(self, ctx):
        result = tab4.run(ctx)
        for breakdown in result.breakdowns.values():
            assert breakdown.fraction("No Missing Data") > 0.5

    def test_invalid_cert_is_largest_gap(self, ctx):
        """Paper: 'No Valid SSL Cert.' dominates the missing-data rows."""
        breakdown = tab4.run(ctx).breakdowns[DatasetTag.ALEXA]
        gaps = {
            category: count
            for category, count in breakdown.counts.items()
            if category != "No Missing Data"
        }
        assert max(gaps, key=gaps.get) == "No Valid SSL Cert."


class TestFigure5Shapes:
    @pytest.fixture(scope="class")
    def panels(self, ctx):
        return fig5.run(ctx).panels

    def test_google_tops_alexa(self, panels):
        assert panels["Alexa Top 1M"][0].label == "google"
        assert panels["Alexa Top 1M"][1].label == "microsoft"

    def test_yandex_third_in_full_alexa(self, panels):
        assert panels["Alexa Top 1M"][2].label == "yandex"

    def test_godaddy_dominates_com(self, panels):
        assert panels["COM"][0].label == "godaddy"
        assert panels["COM"][0].percent > 2 * panels["COM"][1].percent

    def test_microsoft_tops_gov(self, panels):
        for key in ("GOV (federal)", "GOV (non-federal)", "GOV (all)"):
            assert panels[key][0].label == "microsoft"

    def test_security_company_in_gov_top5(self, panels):
        labels = {row.label for row in panels["GOV (all)"]}
        assert labels & {"barracuda", "proofpoint", "mimecast"}

    def test_hosting_companies_in_com_top5(self, panels):
        labels = [row.label for row in panels["COM"]]
        assert "unitedinternet" in labels or "eig" in labels or "ovh" in labels


class TestFigure6Shapes:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig6.run(ctx)

    def test_google_and_microsoft_rise_in_alexa(self, result):
        panel = result.panel("alexa:top")
        assert panel.result["google"].delta_percent() > 0
        assert panel.result["microsoft"].delta_percent() > 0

    def test_self_hosting_falls_everywhere(self, result):
        for dataset in ("alexa", "com", "gov"):
            panel = result.panel(f"{dataset}:top")
            assert panel.result["SELF"].delta_percent() < 0, dataset

    def test_security_total_rises_everywhere(self, result):
        for dataset in ("alexa", "com", "gov"):
            panel = result.panel(f"{dataset}:security")
            total = panel.result.total_series(panel.labels)
            assert total.delta_percent() > 0, dataset

    def test_hosting_total_falls_in_alexa_and_com(self, result):
        for dataset in ("alexa", "com"):
            panel = result.panel(f"{dataset}:hosting")
            total = panel.result.total_series(panel.labels)
            assert total.delta_percent() < 0, dataset

    def test_godaddy_falls_in_com(self, result):
        panel = result.panel("com:hosting")
        assert panel.result["godaddy"].delta_percent() < 0

    def test_gov_microsoft_rises_strongly(self, result):
        panel = result.panel("gov:top")
        assert panel.result["microsoft"].delta_percent() > 5.0

    def test_gov_series_have_gap_before_2018(self, result):
        import math

        panel = result.panel("gov:top")
        series = panel.result["microsoft"]
        assert math.isnan(series.percents[0]) and math.isnan(series.percents[1])
        assert not math.isnan(series.percents[2])

    def test_top5_total_rises_in_alexa(self, result):
        panel = result.panel("alexa:top")
        total = panel.result.total_series(panel.labels)
        assert total.delta_percent() > 0


class TestFigure7Shapes:
    @pytest.fixture(scope="class")
    def matrix(self, ctx):
        return fig7.run(ctx).matrix

    def test_all_domains_accounted(self, ctx, matrix):
        assert matrix.total == len(ctx.domains(DatasetTag.ALEXA))

    def test_self_hosted_shrinks(self, matrix):
        assert matrix.outgoing("Self-Hosted") > matrix.incoming("Self-Hosted")

    def test_quarter_of_self_hosted_leavers_go_to_google_or_microsoft(self, matrix):
        """Section 5.3: more than a quarter switch to Google or Microsoft."""
        leavers = matrix.outgoing("Self-Hosted")
        to_big_two = matrix.flow("Self-Hosted", "Google") + matrix.flow(
            "Self-Hosted", "Microsoft"
        )
        assert leavers > 0
        assert to_big_two > leavers / 4

    def test_big_two_exceed_top100_remainder(self, matrix):
        """...a quantity larger than the sum switching to the rest of the
        top 100."""
        to_big_two = matrix.flow("Self-Hosted", "Google") + matrix.flow(
            "Self-Hosted", "Microsoft"
        )
        assert to_big_two > matrix.flow("Self-Hosted", "Top100")

    def test_google_gains_from_all_categories(self, matrix):
        sources = [
            source
            for source in matrix.categories
            if source != "Google" and matrix.flow(source, "Google") > 0
        ]
        assert len(sources) >= 3

    def test_churn_is_bidirectional(self, matrix):
        assert matrix.outgoing("Google") > 0
        assert matrix.incoming("Google") > matrix.outgoing("Google")


class TestFigure8Shapes:
    @pytest.fixture(scope="class")
    def prefs(self, ctx):
        return fig8.run(ctx).preferences

    def test_yandex_confined_to_ru(self, prefs):
        assert prefs.dominant_cctld("yandex") == "ru"
        assert prefs.percent("ru", "yandex") > 15
        for cctld in prefs.cctlds:
            if cctld != "ru":
                assert prefs.percent(cctld, "yandex") < 10

    def test_tencent_confined_to_cn(self, prefs):
        assert prefs.dominant_cctld("tencent") == "cn"
        assert prefs.percent("cn", "tencent") > 15
        for cctld in prefs.cctlds:
            if cctld != "cn":
                assert prefs.percent(cctld, "tencent") < 10

    def test_us_providers_broadly_used(self, prefs):
        """Google+Microsoft exceed 30% in most non-CN/RU ccTLDs."""
        broad = [
            cctld for cctld in prefs.cctlds
            if cctld not in ("cn", "ru") and prefs.us_share(cctld) > 30
        ]
        assert len(broad) >= 9

    def test_us_share_lowest_in_cn(self, prefs):
        assert prefs.us_share("cn") == min(
            prefs.us_share(cctld) for cctld in prefs.cctlds
        )

    def test_brazil_exceeds_alexa_baseline(self, ctx, prefs):
        """Section 5.4: .br's US-provider share exceeds the Alexa baseline."""
        from repro.analysis.market_share import compute_market_share

        inferences = ctx.priority(DatasetTag.ALEXA, 8)
        share = compute_market_share(
            inferences, ctx.domains(DatasetTag.ALEXA), ctx.company_map
        )
        baseline = 100 * (share.share_of("google") + share.share_of("microsoft"))
        assert prefs.us_share("br") > baseline


class TestTables:
    def test_table6_depth_and_totals(self, ctx):
        result = tab6.run(ctx)
        for dataset, rows in result.rankings.items():
            assert len(rows) == 15
            count, percent = result.totals[dataset]
            assert percent == pytest.approx(sum(row.percent for row in rows))
            assert 30 < percent < 90

    def test_table5_multi_id_structure(self, ctx):
        result = tab5.run(ctx)
        ms_ids, ms_asns = result.entries["microsoft"]
        pp_ids, pp_asns = result.entries["proofpoint"]
        assert len(ms_ids) >= 2 and "outlook.com" in ms_ids
        assert len(pp_ids) >= 2 and "pphosted.com" in pp_ids
        assert len(pp_asns) >= 2
        assert all(name == "ProofPoint" for _asn, name in pp_asns)

    def test_tables_1_2_3_worked_examples(self, ctx):
        result = tab1_2_3.run(ctx)
        rendered = result.render()
        # Table 1/2's key observations survive the simulation:
        assert "mailhost.gsipartners.com" in rendered  # MX hides the provider
        assert "mx.google.com" in rendered             # ...but the cert reveals it
        assert "ghs.google.com" in rendered            # the no-SMTP web host
        assert "inbound.mail.utexas.edu" in rendered   # customer cert at Ironport
        assert result.inferences["utexas.edu"].attributions == {"iphmx.com": 1.0}
        assert result.inferences["jeniustoto.net"].status.value == "no_smtp"

    def test_renders_are_nonempty_strings(self, ctx):
        for module in (tab4, fig5, fig7, fig8, tab5, tab6):
            text = module.run(ctx).render()
            assert isinstance(text, str) and len(text) > 100
