"""Failure injection: the pipeline degrades gracefully, never crashes.

Simulates the operational failures Section 4.2.2 warns about — scanning
outages, blocked address space, missing DNS coverage, broken zones — and
checks the inference stack's behaviour under each.
"""

import pytest

from repro.core import MXOnlyApproach, PriorityPipeline
from repro.core.types import DomainStatus, EvidenceSource
from repro.measure import CensysScanner, MeasurementGatherer, OpenINTELPlatform, Prefix2ASDataset
from repro.world.entities import DatasetTag

LAST = 8


@pytest.fixture(scope="module")
def blind_gatherer(ctx):
    """A gatherer whose Censys has a total outage (coverage 0 everywhere)."""
    scanner = CensysScanner(ctx.world.host_table, coverage_for=lambda _a: 0.0)
    return MeasurementGatherer(
        ctx.gatherer.openintel, scanner, ctx.gatherer.prefix2as
    )


class TestCensysOutage:
    def test_pipeline_survives_total_scan_outage(self, ctx, blind_gatherer):
        domains = ctx.domains(DatasetTag.GOV)
        measurements = blind_gatherer.gather(domains, LAST)
        pipeline = PriorityPipeline(ctx.world.trust_store, ctx.company_map, ctx.world.psl)
        result = pipeline.run(measurements)
        assert len(result) == len(measurements)
        # With no SMTP evidence every inference degrades to the MX source.
        for inference in result:
            for identity in inference.mx_identities:
                assert identity.source is EvidenceSource.MX

    def test_outage_degrades_to_mx_only_accuracy(self, ctx, blind_gatherer):
        """Under a scan blackout the priority approach *is* MX-only."""
        domains = ctx.domains(DatasetTag.GOV)
        measurements = blind_gatherer.gather(domains, LAST)
        priority = PriorityPipeline(
            ctx.world.trust_store, ctx.company_map, ctx.world.psl
        ).run(measurements)
        mx_only = MXOnlyApproach(psl=ctx.world.psl).run(measurements)
        for domain in measurements:
            if priority[domain].status is DomainStatus.INFERRED:
                assert priority[domain].attributions == mx_only[domain].attributions

    def test_no_step4_corrections_without_evidence(self, ctx, blind_gatherer):
        domains = ctx.domains(DatasetTag.GOV)
        measurements = blind_gatherer.gather(domains, LAST)
        result = PriorityPipeline(
            ctx.world.trust_store, ctx.company_map, ctx.world.psl
        ).run(measurements)
        assert result.correction_stats.corrected == 0


class TestDNSCoverageGaps:
    def test_missing_snapshot_returns_none(self, ctx):
        assert ctx.measurements(DatasetTag.GOV, 0) is None
        assert ctx.priority(DatasetTag.GOV, 1) is None

    def test_longitudinal_analysis_tolerates_gaps(self, ctx):
        import math

        from repro.analysis.longitudinal import market_share_over_time

        per_snapshot = [ctx.priority(DatasetTag.GOV, i) for i in range(9)]
        result = market_share_over_time(
            per_snapshot, ctx.domains(DatasetTag.GOV), ctx.company_map, ["microsoft"]
        )
        series = result["microsoft"]
        assert math.isnan(series.percents[0])
        assert series.delta_percent() > 0  # computed over measured points only

    def test_unknown_domains_in_target_list(self, ctx):
        measurements = ctx.gatherer.gather(
            ["never-registered-zxq.com", "also-missing.org"], LAST
        )
        for measurement in measurements.values():
            assert not measurement.has_mx
        result = PriorityPipeline(
            ctx.world.trust_store, ctx.company_map, ctx.world.psl
        ).run(measurements)
        for inference in result:
            assert inference.status is DomainStatus.NO_MX


class TestSelectiveBlocking:
    def test_blocked_provider_prefix(self, ctx):
        """One provider opts out of scanning; its customers fall back to MX
        and — being provider-named — are still attributed correctly."""
        google_blocks = [
            str(block.prefix)
            for block in ctx.world.registry.blocks()
            if block.asn == 15169
        ]

        def coverage(address: str) -> float:
            from repro.netsim.ip import IPv4Prefix

            for prefix_text in google_blocks:
                if address in IPv4Prefix.parse(prefix_text):
                    return 0.0
            return 1.0

        scanner = CensysScanner(ctx.world.host_table, coverage_for=coverage)
        gatherer = MeasurementGatherer(
            ctx.gatherer.openintel, scanner, ctx.gatherer.prefix2as
        )
        domains = ctx.domains(DatasetTag.ALEXA)[:300]
        measurements = gatherer.gather(domains, LAST)
        result = PriorityPipeline(
            ctx.world.trust_store, ctx.company_map, ctx.world.psl
        ).run(measurements)

        checked = 0
        for domain in domains:
            truth = ctx.ground_truth(domain, LAST)
            if truth == {"google": 1.0}:
                inference = result[domain]
                if inference.status is DomainStatus.INFERRED and any(
                    identity.source is EvidenceSource.MX
                    for identity in inference.mx_identities
                ):
                    resolved = ctx.company_map.resolve_attributions(
                        domain, inference.attributions
                    )
                    checked += 1
                    # provider-named customers still resolve to Google via
                    # the MX name; customer-named ones are the known loss.
                    assert set(resolved) <= {"google", "SELF"}
        assert checked > 0


class TestAnalysisRobustness:
    def test_market_share_with_empty_inferences(self, ctx):
        from repro.analysis.market_share import compute_market_share

        share = compute_market_share({}, ctx.domains(DatasetTag.GOV), ctx.company_map)
        assert share.top(5) == []

    def test_churn_with_disjoint_snapshots(self, ctx):
        from repro.analysis.churn import churn_matrix

        first = ctx.priority(DatasetTag.ALEXA, 0)
        matrix = churn_matrix(first, {}, ctx.domains(DatasetTag.ALEXA), ctx.company_map)
        # Everything flows to "No SMTP" when the last snapshot is empty.
        assert matrix.total_to("No SMTP") == matrix.total

    def test_accuracy_sampling_with_tiny_pool(self, ctx):
        from repro.analysis.accuracy import sample_with_smtp
        import random

        measurements = ctx.measurements(DatasetTag.GOV, LAST)
        pool = list(measurements)[:3]
        sample = sample_with_smtp(measurements, pool, 200, random.Random(1))
        assert len(sample) <= 3
