"""The engine's core guarantee: parallel/cached runs are bit-identical.

For every corpus and snapshot of a longitudinal sweep — including the GOV
corpus's partial snapshot coverage — a sharded, memoized engine run must
produce byte-identical :class:`PipelineResult` inferences (same domains,
same iteration order, same attributions, same step-4 bookkeeping) as the
serial, cache-free path, across seeds and ``jobs ∈ {1, 2, 4}``.
"""

import json

import pytest

from repro.core.serialize import results_to_dicts
from repro.engine import EngineOptions
from repro.experiments.common import StudyContext
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS

SEEDS = (7, 31)
JOBS = (1, 2, 4)

ALL_RUNS = [
    (dataset, index)
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV)
    for index in range(NUM_SNAPSHOTS)
]


def world_config(seed: int) -> WorldConfig:
    return WorldConfig(seed=seed, alexa_size=130, com_size=130, gov_size=70)


def sweep_bytes(ctx: StudyContext) -> dict[tuple, bytes | None]:
    """Canonical bytes of every (corpus, snapshot) run of a full sweep."""
    output: dict[tuple, bytes | None] = {}
    for dataset, index in ALL_RUNS:
        result = ctx.priority_result(dataset, index)
        if result is None:
            output[(dataset, index)] = None
            continue
        payload = {
            "order": list(result.inferences),
            "inferences": results_to_dicts(result.inferences),
            "examined": result.correction_stats.candidates_examined,
            "corrected": result.correction_stats.corrected,
        }
        output[(dataset, index)] = json.dumps(payload, sort_keys=True).encode()
    return output


@pytest.fixture(scope="module", params=SEEDS, ids=lambda seed: f"seed{seed}")
def reference(request):
    """The serial, cache-free sweep (the seed repo's execution path)."""
    ctx = StudyContext.create(
        world_config(request.param), engine=EngineOptions(jobs=1, memoize=False)
    )
    return request.param, sweep_bytes(ctx)


@pytest.mark.parametrize("jobs", JOBS)
def test_engine_sweep_is_bit_identical(reference, jobs):
    seed, expected = reference
    ctx = StudyContext.create(
        world_config(seed),
        engine=EngineOptions(jobs=jobs, memoize=True, executor="thread"),
    )
    actual = sweep_bytes(ctx)
    assert actual.keys() == expected.keys()
    for key in expected:
        assert actual[key] == expected[key], f"{key} diverged at jobs={jobs}"


def test_gov_partial_coverage_matches(reference):
    """Uncovered GOV snapshots stay None under the engine too."""
    _, expected = reference
    uncovered = [
        key for key, value in expected.items()
        if key[0] is DatasetTag.GOV and value is None
    ]
    assert uncovered, "expected the GOV corpus to miss early snapshots"


def test_process_executor_matches(reference):
    """The fork-based process pool produces the same bytes as serial."""
    seed, expected = reference
    ctx = StudyContext.create(
        world_config(seed),
        engine=EngineOptions(jobs=2, memoize=True, executor="process"),
    )
    assert sweep_bytes(ctx) == expected


def _measurement_shape(measurement):
    """Everything observable about a measurement except certificate serials.

    Serial numbers come from a process-global issue counter, so two
    separately *built* worlds differ on them by construction (the seed's
    determinism test makes the same exclusion).
    """
    return (
        measurement.domain,
        measurement.measured_on,
        measurement.txt,
        tuple(
            (
                mx.name,
                mx.preference,
                tuple(
                    (
                        ip.address,
                        ip.as_info,
                        None
                        if ip.scan is None
                        else (
                            ip.scan.state,
                            ip.scan.banner,
                            ip.scan.ehlo,
                            ip.scan.starttls,
                            None
                            if ip.scan.certificate is None
                            else ip.scan.certificate.names(),
                        ),
                    )
                    for ip in mx.ips
                ),
            )
            for mx in measurement.mx_set
        ),
    )


def test_measurements_identical_under_sharding():
    """Sharded gathering returns the same domains in the same order."""
    config = world_config(SEEDS[0])
    serial = StudyContext.create(config, engine=EngineOptions(jobs=1, memoize=False))
    sharded = StudyContext.create(
        config, engine=EngineOptions(jobs=4, memoize=True, executor="thread")
    )
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM):
        left = serial.measurements(dataset, 8)
        right = sharded.measurements(dataset, 8)
        assert list(left) == list(right)
        for domain in left:
            assert _measurement_shape(left[domain]) == _measurement_shape(right[domain])
