"""Focused coverage for `engine/stats.py`: edge cases, rendering, merging.

The process-pool test at the bottom is the regression lock for the
dropped-worker-stats bug: forked gather workers used to accumulate cache
counters in the child and never return them, so ``--perf`` hit rates
were wrong (near-zero counters) at ``--jobs > 1``.
"""

import pytest

from repro.engine import EngineOptions
from repro.engine.stats import STATS, EngineStats, format_bytes
from repro.experiments.common import StudyContext
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag


class TestHitRateEdges:
    def test_zero_totals(self):
        stats = EngineStats()
        stats.inc("x.hit", 0)
        stats.inc("x.miss", 0)
        assert stats.hit_rate("x") is None

    def test_missing_prefix(self):
        assert EngineStats().hit_rate("nope") is None

    def test_all_hits(self):
        stats = EngineStats()
        stats.inc("x.hit", 5)
        assert stats.hit_rate("x") == 1.0

    def test_all_misses(self):
        stats = EngineStats()
        stats.inc("x.miss", 5)
        assert stats.hit_rate("x") == 0.0

    def test_delta_missing_prefix(self):
        stats = EngineStats()
        assert stats.delta_hit_rate("nope", stats.snapshot()) is None

    def test_delta_zero_change(self):
        stats = EngineStats()
        stats.inc("x.hit", 7)
        stats.inc("x.miss", 3)
        snap = stats.snapshot()
        assert stats.delta_hit_rate("x", snap) is None

    def test_delta_against_empty_snapshot(self):
        stats = EngineStats()
        stats.inc("x.hit", 1)
        assert stats.delta_hit_rate("x", {}) == 1.0


class TestFormatBytes:
    @pytest.mark.parametrize(
        ("count", "expected"),
        [
            (0, "0 B"),
            (1, "1 B"),
            (1023, "1023 B"),
            (1024, "1.0 KiB"),
            (1536, "1.5 KiB"),
            (1024**2 - 1, "1024.0 KiB"),
            (1024**2, "1.0 MiB"),
            (1024**3, "1.0 GiB"),
            (5 * 1024**3, "5.0 GiB"),
            (5000 * 1024**3, "5000.0 GiB"),
        ],
    )
    def test_boundaries(self, count, expected):
        assert format_bytes(count) == expected


class TestRender:
    def test_no_activity(self):
        text = EngineStats().render()
        assert "(no activity recorded)" in text

    def test_with_activity_no_placeholder(self):
        stats = EngineStats()
        stats.inc("a.hit")
        assert "(no activity recorded)" not in stats.render()

    def test_timers_sorted_by_cumulative_time_descending(self):
        stats = EngineStats()
        stats.add_time("alpha.small", 0.25)
        stats.add_time("zeta.big", 10.0)
        stats.add_time("mid.dle", 2.0)
        text = stats.render()
        assert (
            text.index("zeta.big") < text.index("mid.dle") < text.index("alpha.small")
        )

    def test_bytes_counters_humanized(self):
        stats = EngineStats()
        stats.inc("store.read_bytes", 2048)
        assert "2.0 KiB" in stats.render()

    def test_shard_imbalance_visible(self):
        stats = EngineStats()
        stats.record_shards("gather.jobs4", [1.0, 1.0, 1.0, 3.0])
        text = stats.render()
        assert "mean=1.500s" in text
        assert "imbalance=2.00x" in text


class TestMergeAndDelta:
    def test_delta_since_reports_only_changes(self):
        stats = EngineStats()
        stats.inc("kept", 5)
        stats.add_time("t0", 1.0)
        snap = stats.snapshot()
        stats.inc("bumped", 2)
        stats.add_time("t1", 0.5)
        delta = stats.delta_since(snap)
        assert delta["counters"] == {"bumped": 2}
        assert list(delta["timers"]) == ["t1"]
        assert delta["timer_calls"] == {"t1": 1}

    def test_merge_folds_counters_timers_and_shards(self):
        parent = EngineStats()
        parent.inc("x.hit", 1)
        parent.add_time("phase", 1.0)
        parent.merge(
            {
                "counters": {"x.hit": 2, "x.miss": 1},
                "timers": {"phase": 0.5, "new": 0.25},
                "timer_calls": {"phase": 3, "new": 1},
                "shard_timings": {"gather.jobs2": [0.1, 0.2]},
            }
        )
        assert parent.counters["x.hit"] == 3
        assert parent.counters["x.miss"] == 1
        assert parent.timers["phase"] == pytest.approx(1.5)
        assert parent.timer_calls["phase"] == 4
        assert parent.timers["new"] == pytest.approx(0.25)
        assert parent.shard_timings["gather.jobs2"] == [0.1, 0.2]

    def test_merge_once_deduplicates_by_token(self):
        """A restarted worker's shard delta lands exactly once.

        Supervision can receive the same shard twice (a 'hung' worker
        finishing right as its replacement does); merge_once keyed on the
        (gather, shard) token keeps counters from double-counting.
        """
        stats = EngineStats()
        delta = {"counters": {"x.hit": 3}}
        assert stats.merge_once("g1:0", delta) is True
        assert stats.merge_once("g1:0", delta) is False
        assert stats.counters["x.hit"] == 3
        assert stats.merge_once("g1:1", delta) is True  # other shard merges
        assert stats.counters["x.hit"] == 6
        stats.reset()
        assert stats.merge_once("g1:0", delta) is True  # reset clears tokens

    def test_roundtrip_delta_then_merge(self):
        """merge(delta_since(snap)) reconstructs the child's contribution."""
        child = EngineStats()
        child.inc("inherited.hit", 9)  # pre-fork state the child copied
        snap = child.snapshot()
        child.inc("inherited.hit", 1)
        child.inc("fresh.miss", 4)
        parent = EngineStats()
        parent.inc("inherited.hit", 9)  # the parent still has the original
        parent.merge(child.delta_since(snap))
        assert parent.counters["inherited.hit"] == 10
        assert parent.counters["fresh.miss"] == 4


WORKER_CONFIG = WorldConfig(seed=7, alexa_size=200, com_size=60, gov_size=40)

# Counter pairs whose hit+miss total equals the number of lookups, which
# is identical however the target list is sharded.  (censys.scan totals
# legitimately differ: forked shards cannot share the observation cache
# that shields the scanner, so shared addresses are scanned per shard.)
SHARDING_INVARIANT_PREFIXES = ("gather.obs",)


def gather_counter_totals(executor: str | None, jobs: int) -> dict[str, int]:
    ctx = StudyContext.create(
        WORKER_CONFIG,
        engine=EngineOptions(jobs=jobs, executor=executor),
        store=None,
    )
    snap = STATS.snapshot()
    ctx.measurements(DatasetTag.ALEXA, 8)
    delta = STATS.delta_since(snap)["counters"]
    return {
        prefix: delta.get(f"{prefix}.hit", 0) + delta.get(f"{prefix}.miss", 0)
        for prefix in SHARDING_INVARIANT_PREFIXES
    }


class TestWorkerStatsShipping:
    def test_process_pool_counters_match_serial(self):
        """--jobs 4 over a fork pool merges worker counters into the parent.

        Before the fix, forked workers counted in their own copy of STATS
        and the parent saw (almost) nothing; now the merged totals equal
        the serial run's.
        """
        serial = gather_counter_totals(None, 1)
        merged = gather_counter_totals("process", 4)
        assert serial == merged
        assert all(total > 0 for total in serial.values())

    def test_thread_pool_counters_match_serial(self):
        assert gather_counter_totals("thread", 4) == gather_counter_totals(None, 1)
