"""Unit tests for the engine package: sharding, stats, env knobs, caches."""

import pytest

from repro.core.pipeline import PipelineConfig
from repro.engine import EngineOptions, env_jobs, merge_shard_results, split_shards
from repro.engine.stats import STATS, EngineStats
from repro.experiments.common import StudyContext, env_scale
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag

SMALL = WorldConfig(seed=7, alexa_size=130, com_size=130, gov_size=70)


class TestSharding:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7, 100])
    def test_split_preserves_order_and_content(self, num_shards):
        items = [f"d{i}.com" for i in range(23)]
        shards = split_shards(items, num_shards)
        assert [x for shard in shards for x in shard] == items
        assert all(shards)  # no empty shards
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_split_empty(self):
        assert split_shards([], 4) == []

    def test_split_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            split_shards([1], 0)

    def test_merge_preserves_shard_order(self):
        merged = merge_shard_results([{"a": 1}, {"b": 2}, {"c": 3}])
        assert list(merged) == ["a", "b", "c"]


class TestStats:
    def test_hit_rate(self):
        stats = EngineStats()
        assert stats.hit_rate("x") is None
        stats.inc("x.hit", 3)
        stats.inc("x.miss", 1)
        assert stats.hit_rate("x") == 0.75

    def test_delta_hit_rate(self):
        stats = EngineStats()
        stats.inc("x.hit", 10)
        snap = stats.snapshot()
        stats.inc("x.hit", 1)
        stats.inc("x.miss", 1)
        assert stats.delta_hit_rate("x", snap) == 0.5

    def test_timer_accumulates(self):
        stats = EngineStats()
        with stats.timer("t"):
            pass
        with stats.timer("t"):
            pass
        assert stats.timer_calls["t"] == 2
        assert stats.timers["t"] >= 0.0

    def test_render_mentions_caches_and_timers(self):
        stats = EngineStats()
        stats.inc("demo.hit")
        stats.inc("demo.miss")
        with stats.timer("phase"):
            pass
        text = stats.render()
        assert "demo" in text and "phase" in text and "50.0%" in text


class TestEnvKnobs:
    def test_jobs_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert env_jobs() == 1

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert env_jobs() == 4

    def test_jobs_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-3")
        assert env_jobs() == 1

    def test_jobs_garbage_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(UserWarning, match="REPRO_JOBS"):
            assert env_jobs() == 1

    def test_scale_garbage_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "a lot")
        with pytest.warns(UserWarning, match="REPRO_SCALE"):
            assert env_scale() == 1.0


@pytest.fixture(scope="module")
def engine_ctx():
    return StudyContext.create(SMALL, engine=EngineOptions(jobs=1, memoize=True))


class TestCrossRunCaches:
    def test_cert_groups_shared_across_configs(self, engine_ctx):
        """Ablation configs over one snapshot reuse the step-1 grouping."""
        engine_ctx.priority_result(DatasetTag.ALEXA, 8)
        snap = STATS.snapshot()
        engine_ctx.priority_result(
            DatasetTag.ALEXA, 8, config=PipelineConfig(check_misidentifications=False)
        )
        engine_ctx.priority_result(
            DatasetTag.ALEXA, 8, config=PipelineConfig(split_credit=False)
        )
        delta = STATS.delta_hit_rate("pipeline.groups", snap)
        assert delta == 1.0  # both ablation runs hit the hoisted grouping

    def test_mx_identities_reused_across_snapshots(self, engine_ctx):
        """The second snapshot of a corpus mostly hits the identity cache."""
        engine_ctx.priority_result(DatasetTag.COM, 7)
        snap = STATS.snapshot()
        engine_ctx.priority_result(DatasetTag.COM, 8)
        rate = STATS.delta_hit_rate("pipeline.mxident", snap)
        assert rate is not None and rate > 0.5

    def test_scan_cache_reused_across_corpora(self, engine_ctx):
        """Shared provider IPs make the second corpus hit the scan cache.

        The per-(address, date) interning cache fronts the Censys layer,
        so cross-corpus scan reuse is measured at ``gather.obs``.
        """
        engine_ctx.measurements(DatasetTag.ALEXA, 6)
        snap = STATS.snapshot()
        engine_ctx.measurements(DatasetTag.COM, 6)
        rate = STATS.delta_hit_rate("gather.obs", snap)
        assert rate is not None and rate > 0.5

    def test_memoize_off_has_no_identity_cache(self):
        ctx = StudyContext.create(SMALL, engine=EngineOptions(memoize=False))
        assert ctx.identity_cache is None
        assert ctx.cert_groups(DatasetTag.ALEXA, 8) is None
