"""Spiller behaviour: budget enforcement, restore, in-order merge."""

from datetime import date

import pytest

from repro.engine.stats import STATS, reset_stats
from repro.measure.dataset import DomainMeasurement
from repro.stream import BatchPlan, BatchSpiller
from repro.store import ArtifactStore
from repro.store.codec import decode_measurements, encode_measurements
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag


def measurement(domain: str) -> DomainMeasurement:
    return DomainMeasurement(
        domain=domain, measured_on=date(2017, 6, 8), mx_set=(), txt=(),
    )


def batch_dicts(plan: BatchPlan, domains: list[str]):
    return [
        (index, {domain: measurement(domain) for domain in chunk})
        for index, chunk in plan.split(domains)
    ]


DOMAINS = [f"d{i:03d}.example" for i in range(20)]
CONFIG = WorldConfig(seed=3, alexa_size=10, com_size=10, gov_size=5)


class TestStoreLess:
    def test_merge_restores_order_and_content(self):
        plan = BatchPlan(batch_domains=6)
        spiller = BatchSpiller(plan=plan, total=len(DOMAINS))
        for index, chunk in batch_dicts(plan, DOMAINS):
            spiller.add(index, chunk)
        merged = spiller.merge()
        assert list(merged) == DOMAINS
        assert all(merged[d].domain == d for d in DOMAINS)

    def test_never_spills_without_store(self):
        reset_stats()
        plan = BatchPlan(batch_domains=2)
        spiller = BatchSpiller(plan=plan, total=len(DOMAINS), budget_bytes=1)
        for index, chunk in batch_dicts(plan, DOMAINS):
            spiller.add(index, chunk)
        assert STATS.counters.get("stream.batch.spilled", 0) == 0
        assert len(spiller.held_payloads()) == plan.batch_count(len(DOMAINS))

    def test_held_payloads_decode_back(self):
        plan = BatchPlan(batch_domains=8)
        spiller = BatchSpiller(plan=plan, total=len(DOMAINS))
        for index, chunk in batch_dicts(plan, DOMAINS):
            spiller.add(index, chunk)
        rebuilt = []
        for payload in spiller.held_payloads():
            rebuilt.extend(decode_measurements(payload))
        assert rebuilt == DOMAINS


class TestWithStore:
    def test_budget_overflow_spills_oldest_first(self, tmp_path):
        reset_stats()
        store = ArtifactStore(tmp_path)
        plan = BatchPlan(batch_domains=4)
        spiller = BatchSpiller(
            plan=plan, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.ALEXA, snapshot_index=0, budget_bytes=1,
        )
        for index, chunk in batch_dicts(plan, DOMAINS):
            spiller.add(index, chunk)
        # Budget of one byte: every batch but the newest must have spilled.
        assert STATS.counters["stream.batch.spilled"] == (
            plan.batch_count(len(DOMAINS)) - 1
        )
        assert STATS.counters["stream.spill_bytes"] > 0
        merged = spiller.merge()
        assert list(merged) == DOMAINS

    def test_merge_discards_spill_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        plan = BatchPlan(batch_domains=4)
        spiller = BatchSpiller(
            plan=plan, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.ALEXA, snapshot_index=0, budget_bytes=1,
        )
        for index, chunk in batch_dicts(plan, DOMAINS):
            spiller.add(index, chunk)
        spiller.merge()
        # A fresh spiller sees no batch entries left to restore.
        fresh = BatchSpiller(
            plan=plan, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.ALEXA, snapshot_index=0,
        )
        assert not fresh.restore(0)

    def test_write_through_enables_restore(self, tmp_path):
        reset_stats()
        store = ArtifactStore(tmp_path)
        plan = BatchPlan(batch_domains=5)
        first = BatchSpiller(
            plan=plan, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.COM, snapshot_index=2, write_through=True,
        )
        for index, chunk in batch_dicts(plan, DOMAINS)[:2]:
            first.add(index, chunk)
        # Simulate a crash: a new spiller for the same (plan, snapshot)
        # restores completed batches instead of re-gathering them.
        resumed = BatchSpiller(
            plan=plan, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.COM, snapshot_index=2, write_through=True,
        )
        assert resumed.restore(0)
        assert resumed.restore(1)
        assert not resumed.restore(2)
        assert STATS.counters["stream.batch.restored"] == 2
        for index, chunk in batch_dicts(plan, DOMAINS)[2:]:
            resumed.add(index, chunk)
        assert list(resumed.merge()) == DOMAINS

    def test_batch_plan_keys_are_disjoint(self, tmp_path):
        """Payloads written under one batch plan are invisible to another."""
        store = ArtifactStore(tmp_path)
        plan7 = BatchPlan(batch_domains=7)
        writer = BatchSpiller(
            plan=plan7, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.GOV, snapshot_index=1, write_through=True,
        )
        for index, chunk in batch_dicts(plan7, DOMAINS):
            writer.add(index, chunk)
        plan5 = BatchPlan(batch_domains=5)
        reader = BatchSpiller(
            plan=plan5, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.GOV, snapshot_index=1,
        )
        assert not reader.restore(0)

    def test_missing_batch_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        plan = BatchPlan(batch_domains=4)
        spiller = BatchSpiller(
            plan=plan, total=len(DOMAINS), store=store, config=CONFIG,
            dataset=DatasetTag.ALEXA, snapshot_index=0,
        )
        with pytest.raises(KeyError, match="neither held nor spilled"):
            spiller.merge()
