"""Batch-plan arithmetic and environment knobs."""

import pytest

from repro.stream import BatchPlan, env_batch, env_stream_keep, resolve_batch
from repro.stream.batching import BATCH_ENV, STREAM_KEEP_ENV


class TestBatchPlan:
    def test_inactive_without_batch_size(self):
        plan = BatchPlan(batch_domains=None)
        assert not plan.active
        assert plan.batch_count(100) == 1
        assert plan.batch_sizes(100) == [100]

    def test_sizes_cover_total_in_order(self):
        plan = BatchPlan(batch_domains=7)
        sizes = plan.batch_sizes(23)
        assert sizes == [7, 7, 7, 2]
        assert sum(sizes) == 23

    def test_split_yields_contiguous_slices(self):
        plan = BatchPlan(batch_domains=3)
        targets = list("abcdefgh")
        rebuilt = []
        for index, chunk in plan.split(targets):
            assert chunk == targets[index * 3 : index * 3 + 3]
            rebuilt.extend(chunk)
        assert rebuilt == targets

    def test_split_inactive_is_one_batch(self):
        plan = BatchPlan(batch_domains=None)
        assert [chunk for _, chunk in plan.split(list("abc"))] == [["a", "b", "c"]]

    def test_key_identifies_batch_geometry(self):
        plan = BatchPlan(batch_domains=10)
        assert plan.key(1, 25) == (1, 3, 10)
        inactive = BatchPlan(batch_domains=None)
        assert inactive.key(0, 25) == (0, 1, 25)

    def test_zero_total(self):
        plan = BatchPlan(batch_domains=5)
        assert plan.batch_count(0) == 0
        assert plan.batch_sizes(0) == []
        assert list(plan.split([])) == []

    def test_nonpositive_batch_resolves_unbatched(self):
        assert resolve_batch(0) is None
        assert resolve_batch(-3) is None


class TestEnv:
    def test_env_batch_default(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert env_batch() is None

    @pytest.mark.parametrize("off", ["", "0", "off", "none", "unbatched", "OFF"])
    def test_env_batch_off_values(self, monkeypatch, off):
        monkeypatch.setenv(BATCH_ENV, off)
        assert env_batch() is None

    def test_env_batch_value(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "250")
        assert env_batch() == 250

    def test_env_batch_garbage_warns(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "a few")
        with pytest.warns(RuntimeWarning, match=BATCH_ENV):
            assert env_batch() is None

    def test_resolve_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "100")
        assert resolve_batch(25) == 25
        assert resolve_batch(None) == 100

    def test_env_stream_keep_floor(self, monkeypatch):
        monkeypatch.setenv(STREAM_KEEP_ENV, "0")
        assert env_stream_keep() == 1
        monkeypatch.setenv(STREAM_KEEP_ENV, "5")
        assert env_stream_keep() == 5
