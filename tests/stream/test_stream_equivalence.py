"""The streamed measure path's core guarantee: batching is invisible.

``--batch-domains`` (with its shared-memory snapshot tables, encoded
in-flight batches, and spill/merge machinery) is purely an engine knob.
Every output — inference bytes, artifact-store digests — must be
byte-identical to the serial, cache-free reference across batch sizes,
worker counts, and executors.

Inference identity is checked in-process (the ``sweep_bytes`` idiom from
``tests/engine/test_parallel_equivalence.py``).  Store-digest identity
must run each setting in its own subprocess: the certificate serial
counter is process-global, so two worlds built in one process get
different certificate serials and their encoded artifacts can never be
compared byte-for-byte.
"""

import hashlib
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.serialize import results_to_dicts
from repro.engine import EngineOptions
from repro.experiments.common import StudyContext
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS

ALL_RUNS = [
    (dataset, index)
    for dataset in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV)
    for index in range(NUM_SNAPSHOTS)
]

CONFIG = WorldConfig(seed=7, alexa_size=130, com_size=130, gov_size=70)

# (jobs, executor, batch_domains): the streamed settings whose sweeps
# must be byte-identical to the serial unbatched reference.  Batch sizes
# straddle the interesting shapes — one domain per batch, a mid-size
# batch, and one batch far larger than any corpus (degenerates to a
# single batch while still exercising the streamed machinery).
STREAM_SETTINGS = [
    (1, None, 1),
    (1, None, 7),
    (1, None, 1_000_000),
    (4, "thread", 7),
    (4, "process", 7),
    (4, "thread", 1),
]


def sweep_bytes(ctx: StudyContext) -> dict:
    output = {}
    for dataset, index in ALL_RUNS:
        result = ctx.priority_result(dataset, index)
        if result is None:
            output[(dataset, index)] = None
            continue
        payload = {
            "order": list(result.inferences),
            "inferences": results_to_dicts(result.inferences),
            "examined": result.correction_stats.candidates_examined,
            "corrected": result.correction_stats.corrected,
        }
        output[(dataset, index)] = json.dumps(payload, sort_keys=True).encode()
    return output


@pytest.fixture(scope="module")
def reference():
    """The serial, cache-free, unbatched sweep (the seed's path)."""
    ctx = StudyContext.create(
        CONFIG, engine=EngineOptions(jobs=1, memoize=False)
    )
    return sweep_bytes(ctx)


class TestInferenceIdentity:
    @pytest.mark.parametrize(
        "jobs,executor,batch", STREAM_SETTINGS,
        ids=[f"j{j}-{e or 'serial'}-b{b}" for j, e, b in STREAM_SETTINGS],
    )
    def test_streamed_sweep_matches_reference(
        self, reference, jobs, executor, batch
    ):
        ctx = StudyContext.create(
            CONFIG,
            engine=EngineOptions(
                jobs=jobs, memoize=True, executor=executor, batch_domains=batch
            ),
        )
        assert sweep_bytes(ctx) == reference

    def test_shared_tables_published_only_when_batched(self):
        unbatched = StudyContext.create(
            WorldConfig(seed=5, alexa_size=20, com_size=20, gov_size=10),
            engine=EngineOptions(jobs=1),
        )
        assert unbatched.stream_tables is None
        batched = StudyContext.create(
            WorldConfig(seed=5, alexa_size=20, com_size=20, gov_size=10),
            engine=EngineOptions(jobs=1, batch_domains=5),
        )
        assert batched.stream_tables is not None


# One world build + full store-backed sweep per *subprocess*, printing a
# digest of every store entry.  Settings share nothing but the world
# config and seed — byte-equal digests mean byte-equal artifacts.
_DIGEST_CHILD = textwrap.dedent(
    """
    import hashlib, json, sys
    from pathlib import Path
    from repro.engine import EngineOptions
    from repro.experiments.common import StudyContext
    from repro.store import ArtifactStore
    from repro.world.build import WorldConfig
    from repro.world.entities import DatasetTag
    from repro.world.population import NUM_SNAPSHOTS

    root, jobs, ex, batch = sys.argv[1:5]
    engine = EngineOptions(
        jobs=int(jobs), memoize=True,
        executor=ex if ex != "-" else None,
        batch_domains=int(batch) if batch != "-" else None,
    )
    config = WorldConfig(seed=13, alexa_size=60, com_size=60, gov_size=30)
    ctx = StudyContext.create(config, engine=engine, store=ArtifactStore(root))
    for ds in (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV):
        for i in range(NUM_SNAPSHOTS):
            ctx.priority_result(ds, i)
    entries = {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(Path(root).rglob("*.rsto"))
    }
    print(json.dumps(entries, sort_keys=True))
    """
)


def digest_run(tmp_path, tag: str, jobs: int, executor: str, batch: str) -> dict:
    store_dir = tmp_path / tag
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(src), env.get("PYTHONPATH")) if part
    )
    result = subprocess.run(
        [sys.executable, "-c", _DIGEST_CHILD, str(store_dir), str(jobs), executor, batch],
        env=env, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


class TestStoreDigestIdentity:
    def test_digests_identical_across_settings(self, tmp_path):
        reference = digest_run(tmp_path, "ref", 1, "-", "-")
        assert reference  # the sweep must actually persist artifacts
        for tag, jobs, executor, batch in (
            ("t7", 4, "thread", "7"),
            ("p1", 2, "process", "1"),
            ("inf", 1, "-", "1000000"),
        ):
            digests = digest_run(tmp_path, tag, jobs, executor, batch)
            assert digests == reference, f"setting {tag} diverged"
