"""Shared-memory snapshot tables: pack/attach/lookup fidelity and lifecycle.

The packed prefix→AS blob must answer every lookup exactly like the live
:class:`~repro.measure.caida.Prefix2ASDataset` it was packed from — same
ASN, same name/country — for announced space, sub-allocations, and
unrouted addresses alike.  Lifecycle-wise, a published segment must
disappear from the system when the owner closes (or drops) it, and the
inline fallback must behave identically when shared memory is absent.
"""

import random

import pytest

from repro.measure.caida import Prefix2ASDataset
from repro.netsim.ip import format_ipv4, parse_ipv4
from repro.stream import SharedBlob, SharedPrefix2AS, SharedWorldTables
from repro.stream.shm import pack_prefix2as
from repro.world.build import WorldConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(seed=11, alexa_size=40, com_size=40, gov_size=20))


@pytest.fixture(scope="module")
def dataset(world):
    return Prefix2ASDataset.from_table(world.prefix2as)


@pytest.fixture(scope="module")
def as_index(world):
    return {asys.number: asys for asys in world.prefix2as.autonomous_systems()}


def probe_addresses(dataset):
    """Edge and interior addresses of every announced prefix, plus noise."""
    addresses = []
    for prefix, _asn in dataset.rows():
        span = 1 << (32 - prefix.length)
        addresses.append(format_ipv4(prefix.network))
        addresses.append(format_ipv4(prefix.network + span - 1))
        addresses.append(format_ipv4(prefix.network + span // 2))
    rng = random.Random(99)
    addresses.extend(
        format_ipv4(rng.getrandbits(32)) for _ in range(500)
    )
    return addresses


class TestLookupFidelity:
    def test_matches_dataset_everywhere(self, dataset, as_index):
        tables = SharedWorldTables.publish(dataset, as_index)
        try:
            shared = tables.prefix2as
            assert len(shared) > 0
            for address in probe_addresses(dataset):
                assert shared.lookup_asn(address) == dataset.lookup_asn(address), address
                assert shared.lookup(address) == dataset.lookup(address), address
        finally:
            tables.close()

    def test_info_strings_roundtrip(self, dataset, as_index):
        tables = SharedWorldTables.publish(dataset, as_index)
        try:
            hits = 0
            for address in probe_addresses(dataset):
                info = tables.prefix2as.lookup(address)
                if info is None:
                    continue
                hits += 1
                asys = as_index[info.asn]
                assert info.name == asys.name
                assert info.country == asys.country
            assert hits > 0
        finally:
            tables.close()

    def test_bad_magic_rejected(self):
        blob = SharedBlob(20, inline=b"XXXX" + b"\0" * 16)
        with pytest.raises(ValueError, match="packed prefix2as"):
            SharedPrefix2AS(blob)


class TestInlineFallback:
    def test_fallback_when_shared_memory_unavailable(self, dataset, as_index, monkeypatch):
        import multiprocessing.shared_memory as shared_memory

        def refuse(*args, **kwargs):
            raise OSError("no /dev/shm here")

        monkeypatch.setattr(shared_memory, "SharedMemory", refuse)
        blob = SharedBlob.publish(pack_prefix2as(dataset, as_index))
        assert blob.name is None  # inline payload, nothing published
        shared = SharedPrefix2AS(blob)
        for address in probe_addresses(dataset)[:200]:
            assert shared.lookup_asn(address) == dataset.lookup_asn(address)
        blob.close()  # no-op for inline payloads


class TestLifecycle:
    def test_attach_sees_identical_bytes(self, dataset, as_index):
        payload = pack_prefix2as(dataset, as_index)
        blob = SharedBlob.publish(payload)
        if blob.name is None:
            pytest.skip("no shared memory on this platform")
        twin = SharedBlob.attach(blob.name, len(payload))
        try:
            assert bytes(twin.view()) == payload
        finally:
            twin.close()
            blob.close()

    def test_owner_close_unlinks_segment(self, dataset, as_index):
        from multiprocessing import shared_memory

        blob = SharedBlob.publish(pack_prefix2as(dataset, as_index))
        if blob.name is None:
            pytest.skip("no shared memory on this platform")
        name = blob.name
        shared = SharedPrefix2AS(blob)  # exports derived views
        assert shared.lookup_asn("127.0.0.1") is None
        blob.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_parse_error_propagates(self, dataset, as_index):
        from repro.netsim.ip import AddressError

        tables = SharedWorldTables.publish(dataset, as_index)
        try:
            with pytest.raises(AddressError):
                tables.prefix2as.lookup_asn("not-an-address")
        finally:
            tables.close()


class TestPackFormat:
    def test_duplicate_announcement_keeps_last(self, as_index):
        from repro.netsim.ip import IPv4Prefix

        number = next(iter(as_index))
        other = [n for n in as_index if n != number][0]
        prefix = IPv4Prefix(network=parse_ipv4("198.51.100.0"), length=24)
        rows = [(prefix, number), (prefix, other)]
        live = Prefix2ASDataset(rows=rows, as_index=as_index)
        blob = SharedBlob(0, inline=pack_prefix2as(live, as_index))
        shared = SharedPrefix2AS(blob)
        assert shared.lookup_asn("198.51.100.7") == other
        assert shared.lookup_asn("198.51.100.7") == live.lookup_asn("198.51.100.7")
