"""Regression: evidence from non-OPEN scans must never reach inference.

A host that timed out (or refused the connection) was never observed, so
a banner or certificate attached to such a record is a contradiction.
The happy path always built non-OPEN records bare, which let downstream
consumers skip the state check — until fault injection (and decoded
legacy artifacts) could produce records where the assumption breaks.
Two layers now enforce the invariant: the record constructor normalizes,
and the evidence collectors filter on ``has_smtp`` anyway.
"""

from datetime import date
from types import SimpleNamespace

import pytest

from repro.core.pipeline import PriorityPipeline
from repro.measure.censys import Port25State, PortScanRecord
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.tls.ca import CertificateAuthority

DAY = date(2021, 6, 8)


@pytest.fixture(scope="module")
def certificate():
    return CertificateAuthority("Simulated CA").issue("mx.example.com")


class TestRecordNormalization:
    @pytest.mark.parametrize("state", [Port25State.TIMEOUT, Port25State.CLOSED])
    def test_non_open_records_are_stripped(self, certificate, state):
        record = PortScanRecord(
            address="11.0.0.1",
            scanned_on=DAY,
            state=state,
            banner="partial banner from a dying session",
            ehlo="mx.example.com",
            starttls=True,
            certificate=certificate,
        )
        assert record.banner is None
        assert record.ehlo is None
        assert record.starttls is False
        assert record.certificate is None
        assert not record.has_smtp

    def test_open_records_keep_their_evidence(self, certificate):
        record = PortScanRecord(
            address="11.0.0.1",
            scanned_on=DAY,
            state=Port25State.OPEN,
            banner="220 mx.example.com ESMTP",
            starttls=True,
            certificate=certificate,
        )
        assert record.certificate is certificate
        assert record.banner is not None


def measurement_with(scan):
    return {
        "example.com": DomainMeasurement(
            domain="example.com",
            measured_on=DAY,
            mx_set=(MXData("mx.example.com", 10, (IPObservation("11.0.0.1", None, scan),)),),
        )
    }


class TestCollectorGuard:
    def test_collect_certificates_requires_open(self, certificate):
        # Bypass the constructor to emulate a record that violates the
        # invariant (e.g. decoded from a pre-normalization artifact).
        rogue = SimpleNamespace(
            state=Port25State.TIMEOUT,
            has_smtp=False,
            certificate=certificate,
        )
        assert PriorityPipeline.collect_certificates(measurement_with(rogue)) == []

    def test_collect_certificates_accepts_open(self, certificate):
        record = PortScanRecord(
            address="11.0.0.1",
            scanned_on=DAY,
            state=Port25State.OPEN,
            certificate=certificate,
        )
        collected = PriorityPipeline.collect_certificates(measurement_with(record))
        assert collected == [certificate]

    def test_timeout_scan_yields_no_certificates(self):
        record = PortScanRecord(
            address="11.0.0.1", scanned_on=DAY, state=Port25State.TIMEOUT
        )
        assert PriorityPipeline.collect_certificates(measurement_with(record)) == []
