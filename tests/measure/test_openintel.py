"""Unit tests for the OpenINTEL-style DNS measurement platform."""

from datetime import date

import pytest

from repro.dnscore import ZoneDB, a, cname, mx
from repro.measure.openintel import DNSSnapshotRecord, MXObservation, OpenINTELPlatform

DATES = (date(2020, 6, 8), date(2020, 12, 8))


@pytest.fixture
def platform():
    zones = []
    for snapshot in range(2):
        zdb = ZoneDB()
        zone = zdb.ensure_zone("example.com")
        zone.add(mx("example.com", "mx1.example.com", preference=10))
        zone.add(mx("example.com", "mx2.example.com", preference=20))
        zone.add(a("mx1.example.com", "11.0.0.1"))
        if snapshot == 1:  # second snapshot: backup MX gains an address
            zone.add(a("mx2.example.com", "11.0.0.2"))
        zone.add(cname("alias.example.com", "mx1.example.com"))
        zone.add(mx("aliased.example.com", "alias.example.com"))
        govzone = zdb.ensure_zone("agency.gov")
        govzone.add(mx("agency.gov", "mx.agency.gov"))
        govzone.add(a("mx.agency.gov", "11.0.0.9"))
        zdb.ensure_zone("nomail.example.com")
        zones.append(zdb)
    return OpenINTELPlatform(zones, DATES, tld_coverage_start={"gov": 1})


class TestMeasureDomain:
    def test_mx_and_addresses(self, platform):
        record = platform.measure_domain("example.com", 0)
        assert record is not None and record.has_mx
        assert record.mx[0] == MXObservation("mx1.example.com", 10, ("11.0.0.1",))
        assert record.mx[1].addresses == ()  # backup doesn't resolve yet

    def test_snapshot_evolution(self, platform):
        record = platform.measure_domain("example.com", 1)
        assert record.mx[1].addresses == ("11.0.0.2",)
        assert record.measured_on == DATES[1]

    def test_cname_chased_for_mx_target(self, platform):
        record = platform.measure_domain("aliased.example.com", 0)
        assert record.mx[0].addresses == ("11.0.0.1",)

    def test_domain_without_mx(self, platform):
        record = platform.measure_domain("nomail.example.com", 0)
        assert record is not None and not record.has_mx

    def test_unknown_domain(self, platform):
        record = platform.measure_domain("missing.example.com", 0)
        assert record is not None and not record.has_mx

    def test_coverage_gate(self, platform):
        assert platform.measure_domain("agency.gov", 0) is None
        assert platform.measure_domain("agency.gov", 1) is not None

    def test_bad_snapshot_index(self, platform):
        with pytest.raises(IndexError):
            platform.measure_domain("example.com", 5)


class TestBatchAndStability:
    def test_measure_batch_omits_uncovered(self, platform):
        results = platform.measure(["example.com", "agency.gov"], 0)
        assert set(results) == {"example.com"}

    def test_stable_domains(self, platform):
        stable = platform.stable_domains(
            ["example.com", "nomail.example.com", "agency.gov"]
        )
        assert stable == ["example.com", "agency.gov"]

    def test_most_preferred(self, platform):
        record = platform.measure_domain("example.com", 0)
        assert [mx.name for mx in record.most_preferred] == ["mx1.example.com"]

    def test_all_addresses_deduplicated(self):
        record = DNSSnapshotRecord(
            domain="x.com",
            measured_on=DATES[0],
            mx=(
                MXObservation("a.x.com", 10, ("1.1.1.1", "2.2.2.2")),
                MXObservation("b.x.com", 10, ("1.1.1.1",)),
            ),
        )
        assert record.all_addresses == ("1.1.1.1", "2.2.2.2")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            OpenINTELPlatform([ZoneDB()], DATES)
