"""Unit tests for JSONL dataset export/import."""

import io
from datetime import date

import pytest

from repro.measure.censys import Port25State, PortScanRecord
from repro.measure.export import (
    ExportError,
    certificate_from_dict,
    certificate_to_dict,
    dns_record_from_dict,
    dns_record_to_dict,
    read_dns_snapshot,
    read_scan_data,
    scan_record_from_dict,
    scan_record_to_dict,
    write_dns_snapshot,
    write_scan_data,
)
from repro.measure.openintel import DNSSnapshotRecord, MXObservation
from repro.tls.ca import CertificateAuthority, self_signed

CA = CertificateAuthority("Simulated CA")
DAY = date(2021, 6, 8)


class TestCertificateRoundTrip:
    def test_ca_issued(self):
        cert = CA.issue("mx1.provider.com", sans=["mx2.provider.com"])
        clone = certificate_from_dict(certificate_to_dict(cert))
        assert clone == cert
        assert clone.fingerprint() == cert.fingerprint()

    def test_self_signed(self):
        cert = self_signed("mx.myvps.com")
        clone = certificate_from_dict(certificate_to_dict(cert))
        assert clone.self_signed
        assert clone == cert

    def test_malformed(self):
        with pytest.raises(ExportError):
            certificate_from_dict({"subject_cn": "x"})


class TestDNSRecordRoundTrip:
    def _record(self):
        return DNSSnapshotRecord(
            domain="example.com",
            measured_on=DAY,
            mx=(
                MXObservation("mx1.example.com", 10, ("11.0.0.1", "11.0.0.2")),
                MXObservation("mx2.example.com", 20, ()),
            ),
            txt=("v=spf1 include:_spf.google.com ~all",),
        )

    def test_round_trip(self):
        record = self._record()
        assert dns_record_from_dict(dns_record_to_dict(record)) == record

    def test_jsonl_round_trip(self):
        records = [self._record()]
        buffer = io.StringIO()
        count = write_dns_snapshot(records, buffer)
        assert count == 1
        buffer.seek(0)
        assert list(read_dns_snapshot(buffer)) == records

    def test_blank_lines_skipped(self):
        buffer = io.StringIO()
        write_dns_snapshot([self._record()], buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert len(list(read_dns_snapshot(buffer))) == 1

    def test_invalid_json_rejected(self):
        with pytest.raises(ExportError):
            list(read_dns_snapshot(io.StringIO("not json\n")))

    def test_missing_fields_rejected(self):
        with pytest.raises(ExportError):
            dns_record_from_dict({"domain": "x.com"})


class TestScanRecordRoundTrip:
    def test_open_with_cert(self):
        cert = CA.issue("mx.example.com")
        record = PortScanRecord(
            address="11.0.0.1", scanned_on=DAY, state=Port25State.OPEN,
            banner="mx.example.com ESMTP", ehlo="mx.example.com",
            starttls=True, certificate=cert,
        )
        clone = scan_record_from_dict(scan_record_to_dict(record))
        assert clone == record

    def test_closed_has_minimal_payload(self):
        record = PortScanRecord(address="11.0.0.2", scanned_on=DAY, state=Port25State.CLOSED)
        payload = scan_record_to_dict(record)
        assert "banner" not in payload and "certificate" not in payload
        assert scan_record_from_dict(payload) == record

    def test_jsonl_round_trip(self):
        records = [
            PortScanRecord(address="11.0.0.1", scanned_on=DAY, state=Port25State.TIMEOUT),
            PortScanRecord(
                address="11.0.0.2", scanned_on=DAY, state=Port25State.OPEN,
                banner="b", ehlo="e", starttls=False,
            ),
        ]
        buffer = io.StringIO()
        assert write_scan_data(records, buffer) == 2
        buffer.seek(0)
        assert list(read_scan_data(buffer)) == records

    def test_bad_state_rejected(self):
        with pytest.raises(ExportError):
            scan_record_from_dict({"ip": "1.1.1.1", "date": "2021-06-08", "state": "weird"})


class TestWorldExport:
    def test_full_corpus_round_trip(self, ctx, last_snapshot):
        """Export a real OpenINTEL snapshot, reload it, identical records."""
        from repro.world.entities import DatasetTag

        domains = ctx.domains(DatasetTag.GOV)
        records = list(ctx.gatherer.openintel.measure(domains, last_snapshot).values())
        buffer = io.StringIO()
        write_dns_snapshot(records, buffer)
        buffer.seek(0)
        reloaded = list(read_dns_snapshot(buffer))
        assert reloaded == records
