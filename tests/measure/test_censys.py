"""Unit tests for the Censys-style scanner."""

from datetime import date

from repro.measure.censys import CensysScanner, Port25State
from repro.smtp.banner import BannerStyle
from repro.smtp.server import SMTPHostTable, SMTPServerConfig, SUBMISSION_PORT
from repro.tls.ca import CertificateAuthority

DAY = date(2021, 6, 8)


def make_table():
    ca = CertificateAuthority("Simulated CA")
    table = SMTPHostTable()
    table.bind(
        "11.0.0.1",
        SMTPServerConfig(identity="mx1.provider.com", certificate=ca.issue("mx1.provider.com")),
    )
    table.bind(
        "11.0.0.2",
        SMTPServerConfig(
            identity="mx2.provider.com",
            starttls=False,
            certificate=None,
            open_ports=(SUBMISSION_PORT,),
        ),
    )
    table.bind(
        "11.0.0.3",
        SMTPServerConfig(
            identity=None,
            banner_style=BannerStyle.LOCALHOST,
            starttls=False,
            certificate=None,
        ),
    )
    return table


class TestScanStates:
    def test_open_host_with_cert(self):
        scanner = CensysScanner(make_table())
        record = scanner.scan_address("11.0.0.1", DAY)
        assert record is not None
        assert record.state is Port25State.OPEN
        assert record.has_smtp
        assert "mx1.provider.com" in record.banner
        assert record.ehlo == "mx1.provider.com"
        assert record.starttls
        assert record.certificate is not None

    def test_port_closed(self):
        scanner = CensysScanner(make_table())
        record = scanner.scan_address("11.0.0.2", DAY)
        assert record.state is Port25State.CLOSED
        assert not record.has_smtp
        assert record.banner is None

    def test_timeout_on_empty_address(self):
        scanner = CensysScanner(make_table())
        record = scanner.scan_address("11.0.0.99", DAY)
        assert record.state is Port25State.TIMEOUT

    def test_localhost_banner_observed_verbatim(self):
        scanner = CensysScanner(make_table())
        record = scanner.scan_address("11.0.0.3", DAY)
        assert record.state is Port25State.OPEN
        assert "localhost" in record.banner
        assert not record.starttls
        assert record.certificate is None


class TestCoverage:
    def test_zero_coverage_yields_no_data(self):
        scanner = CensysScanner(make_table(), coverage_for=lambda _a: 0.0)
        assert scanner.scan_address("11.0.0.1", DAY) is None

    def test_full_coverage_always_has_data(self):
        scanner = CensysScanner(make_table(), coverage_for=lambda _a: 1.0)
        assert scanner.scan_address("11.0.0.1", DAY) is not None

    def test_partial_coverage_deterministic(self):
        scanner_a = CensysScanner(make_table(), coverage_for=lambda _a: 0.5)
        scanner_b = CensysScanner(make_table(), coverage_for=lambda _a: 0.5)
        addresses = [f"11.0.1.{i}" for i in range(50)]
        results_a = [scanner_a.scan_address(addr, DAY) is None for addr in addresses]
        results_b = [scanner_b.scan_address(addr, DAY) is None for addr in addresses]
        assert results_a == results_b
        assert any(results_a) and not all(results_a)

    def test_coverage_varies_by_date(self):
        scanner = CensysScanner(make_table(), coverage_for=lambda _a: 0.5)
        addresses = [f"11.0.1.{i}" for i in range(60)]
        day_one = [scanner.scan_address(a, date(2020, 6, 8)) is None for a in addresses]
        day_two = [scanner.scan_address(a, date(2021, 6, 8)) is None for a in addresses]
        assert day_one != day_two

    def test_scan_many_omits_uncovered(self):
        scanner = CensysScanner(make_table(), coverage_for=lambda a: 0.0 if a.endswith(".1") else 1.0)
        records = scanner.scan_many(["11.0.0.1", "11.0.0.2"], DAY)
        assert set(records) == {"11.0.0.2"}

    def test_cache_returns_same_object(self):
        scanner = CensysScanner(make_table())
        first = scanner.scan_address("11.0.0.1", DAY)
        second = scanner.scan_address("11.0.0.1", DAY)
        assert first is second
