"""Unit tests for prefix2as snapshots and the measurement joiner."""

from datetime import date

import pytest

from repro.dnscore import ZoneDB, a, mx
from repro.measure.caida import Prefix2ASDataset
from repro.measure.censys import CensysScanner
from repro.measure.dataset import MeasurementGatherer
from repro.measure.openintel import OpenINTELPlatform
from repro.netsim.asn import AutonomousSystem, PrefixToASTable
from repro.smtp.server import SMTPHostTable, SMTPServerConfig
from repro.tls.ca import CertificateAuthority

DAY = date(2021, 6, 8)


@pytest.fixture
def routing_table():
    table = PrefixToASTable()
    table.register_as(AutonomousSystem(15169, "Google", "US"))
    table.register_as(AutonomousSystem(8075, "Microsoft", "US"))
    table.announce("11.1.0.0/16", 15169)
    table.announce("11.2.0.0/16", 8075)
    return table


class TestPrefix2ASDataset:
    def test_snapshot_lookup(self, routing_table):
        dataset = Prefix2ASDataset.from_table(routing_table)
        info = dataset.lookup("11.1.2.3")
        assert info is not None and info.asn == 15169 and info.name == "Google"

    def test_snapshot_is_independent(self, routing_table):
        dataset = Prefix2ASDataset.from_table(routing_table)
        routing_table.announce("11.3.0.0/16", 8075)
        assert dataset.lookup("11.3.0.1") is None

    def test_lookup_miss(self, routing_table):
        dataset = Prefix2ASDataset.from_table(routing_table)
        assert dataset.lookup("12.0.0.1") is None
        assert dataset.lookup_asn("12.0.0.1") is None

    def test_rows_and_len(self, routing_table):
        dataset = Prefix2ASDataset.from_table(routing_table)
        assert len(dataset) == 2
        assert len(dataset.rows()) == 2

    def test_routeviews_export_format(self, routing_table):
        dataset = Prefix2ASDataset.from_table(routing_table)
        lines = dataset.to_lines()
        assert lines[0] == "11.1.0.0\t16\t15169"


@pytest.fixture
def gatherer(routing_table):
    zdb = ZoneDB()
    zone = zdb.ensure_zone("example.com")
    zone.add(mx("example.com", "mx1.example.com", preference=5))
    zone.add(mx("example.com", "mx2.example.com", preference=5))
    zone.add(mx("example.com", "backup.example.com", preference=50))
    zone.add(a("mx1.example.com", "11.1.0.1"))
    zone.add(a("mx2.example.com", "11.2.0.1"))
    zone.add(a("backup.example.com", "11.9.0.1"))

    ca = CertificateAuthority("Simulated CA")
    hosts = SMTPHostTable()
    hosts.bind(
        "11.1.0.1",
        SMTPServerConfig(identity="mx1.example.com", certificate=ca.issue("mx1.example.com")),
    )
    # 11.2.0.1 intentionally unbound (no SMTP), 11.9.0.1 not covered.

    openintel = OpenINTELPlatform([zdb], (DAY,))
    censys = CensysScanner(hosts, coverage_for=lambda addr: 0.0 if addr == "11.9.0.1" else 1.0)
    return MeasurementGatherer(openintel, censys, Prefix2ASDataset.from_table(routing_table))


class TestMeasurementGatherer:
    def test_join_shape(self, gatherer):
        measurement = gatherer.gather_domain("example.com", 0)
        assert measurement is not None
        assert len(measurement.mx_set) == 3
        assert len(measurement.primary_mx) == 2  # two MXs tied at pref 5

    def test_as_info_joined(self, gatherer):
        measurement = gatherer.gather_domain("example.com", 0)
        by_name = {mx.name: mx for mx in measurement.mx_set}
        assert by_name["mx1.example.com"].ips[0].as_info.asn == 15169
        assert by_name["mx2.example.com"].ips[0].as_info.asn == 8075
        assert by_name["backup.example.com"].ips[0].as_info is None

    def test_scan_joined(self, gatherer):
        measurement = gatherer.gather_domain("example.com", 0)
        by_name = {mx.name: mx for mx in measurement.mx_set}
        assert by_name["mx1.example.com"].ips[0].has_smtp
        assert not by_name["mx2.example.com"].ips[0].has_smtp
        assert by_name["backup.example.com"].ips[0].scan is None  # no Censys data

    def test_has_smtp_server(self, gatherer):
        measurement = gatherer.gather_domain("example.com", 0)
        assert measurement.has_smtp_server

    def test_all_ips_deduplicated(self, gatherer):
        measurement = gatherer.gather_domain("example.com", 0)
        addresses = [ip.address for ip in measurement.all_ips()]
        assert len(addresses) == len(set(addresses)) == 3

    def test_gather_batch(self, gatherer):
        results = gatherer.gather(["example.com", "missing.org"], 0)
        assert "example.com" in results
        # missing.org has no zone: measured with empty MX set.
        assert not results["missing.org"].has_mx
