"""Import-order regression tests.

Each subpackage must be importable *first* in a fresh interpreter —
circular imports between repro.core / repro.world / repro.analysis only
manifest for specific entry orders, which pytest's own import order can
mask (this exact bug shipped once: world.stats importing analysis.render
at module level broke ``import repro.core`` in scripts).
"""

import subprocess
import sys

import pytest

ENTRY_POINTS = [
    "repro",
    "repro.dnscore",
    "repro.netsim",
    "repro.smtp",
    "repro.tls",
    "repro.measure",
    "repro.world",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
    "repro.cli",
    "repro.dist",
]


@pytest.mark.parametrize("module", ENTRY_POINTS)
def test_fresh_interpreter_import(module):
    result = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr


def test_star_exports_resolve():
    """Every name in __all__ actually exists on its package."""
    import importlib

    for module_name in ENTRY_POINTS:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name}"
