"""Signal-handling tests: SIGINT mid-gather leaves a resumable run.

Subprocess-based — signal delivery and graceful-shutdown sequencing only
behave realistically across a process boundary.  Skipped on platforms
without POSIX signal support.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.schemas import MANIFEST_SCHEMA, validate
from repro.resilience import PARTIAL_MANIFEST_NAME, RunRecord

pytestmark = pytest.mark.skipif(
    os.name != "posix" or not hasattr(signal, "SIGINT"),
    reason="requires POSIX signals",
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def repro_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env.pop("REPRO_CACHE", None)
    env.pop("REPRO_JOBS", None)
    return env


def launch(run_dir, cache):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "tab4", "--scale", "0.2",
            "--jobs", "2", "--cache-dir", str(cache),
            "--run-dir", str(run_dir),
        ],
        env=repro_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_for_journal(run_dir, timeout=20.0):
    journal = run_dir / "journal.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.is_file():
            return True
        time.sleep(0.02)
    return False


class TestSigintMidGather:
    def test_partial_manifest_and_resume(self, tmp_path):
        run_dir = tmp_path / "run"
        cache = tmp_path / "cache"
        proc = launch(run_dir, cache)
        try:
            assert wait_for_journal(run_dir), "run never created its journal"
            time.sleep(0.1)  # let it get into gathering
            proc.send_signal(signal.SIGINT)
            _stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode == 0:
            pytest.skip("run finished before SIGINT landed; nothing to resume")
        assert proc.returncode == 130, stderr
        assert "resume" in stderr  # the printed resume command
        partial = run_dir / PARTIAL_MANIFEST_NAME
        assert partial.is_file(), "interrupted run left no partial manifest"
        manifest = json.loads(partial.read_text())
        assert validate(manifest, MANIFEST_SCHEMA) == []
        assert manifest["resilience"]["status"] == "interrupted"

        record = RunRecord.from_dir(run_dir)
        assert record.interrupted and not record.completed

        resumed = subprocess.run(
            [
                sys.executable, "-m", "repro", "resume",
                "--run-dir", str(run_dir),
            ],
            env=repro_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming run" in resumed.stderr
        assert "Table 4" in resumed.stdout
        record = RunRecord.from_dir(run_dir)
        assert record.completed
        assert not partial.exists()  # completion clears the stale partial
