"""Signal-handling tests: SIGINT mid-gather leaves a resumable run.

Subprocess-based — signal delivery and graceful-shutdown sequencing only
behave realistically across a process boundary.  Skipped on platforms
without POSIX signal support.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.schemas import MANIFEST_SCHEMA, validate
from repro.resilience import PARTIAL_MANIFEST_NAME, RunRecord

from conftest import wait_for

pytestmark = pytest.mark.skipif(
    os.name != "posix" or not hasattr(signal, "SIGINT"),
    reason="requires POSIX signals",
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def repro_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env.pop("REPRO_CACHE", None)
    env.pop("REPRO_JOBS", None)
    return env


def launch(run_dir, cache):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "tab4", "--scale", "0.2",
            "--jobs", "2", "--cache-dir", str(cache),
            "--run-dir", str(run_dir),
        ],
        env=repro_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def journal_has_event(run_dir, kind):
    """True once the run's journal contains an event of the given kind."""
    journal = run_dir / "journal.jsonl"

    def check():
        if not journal.is_file():
            return False
        for line in journal.read_text().splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write; keep polling
            if record.get("event") == kind:
                return True
        return False

    return check


class TestSigintMidGather:
    def test_partial_manifest_and_resume(self, tmp_path):
        run_dir = tmp_path / "run"
        cache = tmp_path / "cache"
        proc = launch(run_dir, cache)
        try:
            # Interrupt only once the run is provably mid-gather: the first
            # shard.start journal event replaces the old fixed sleep.
            wait_for(
                journal_has_event(run_dir, "shard.start"),
                message="first shard.start journal event",
            )
            proc.send_signal(signal.SIGINT)
            _stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode == 0:
            pytest.skip("run finished before SIGINT landed; nothing to resume")
        assert proc.returncode == 130, stderr
        assert "resume" in stderr  # the printed resume command
        partial = run_dir / PARTIAL_MANIFEST_NAME
        assert partial.is_file(), "interrupted run left no partial manifest"
        manifest = json.loads(partial.read_text())
        assert validate(manifest, MANIFEST_SCHEMA) == []
        assert manifest["resilience"]["status"] == "interrupted"

        record = RunRecord.from_dir(run_dir)
        assert record.interrupted and not record.completed

        resumed = subprocess.run(
            [
                sys.executable, "-m", "repro", "resume",
                "--run-dir", str(run_dir),
            ],
            env=repro_env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming run" in resumed.stderr
        assert "Table 4" in resumed.stdout
        record = RunRecord.from_dir(run_dir)
        assert record.completed
        assert not partial.exists()  # completion clears the stale partial
