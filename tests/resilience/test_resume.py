"""Resume CLI tests: journals, manifests, digests, and warm re-runs.

These run the CLI in-process (``main(argv)``): a resilient run completes
and journals, a resume of it reproduces identical stdout from the warm
store, and the guard rails (digest drift, occupied run dirs, missing
journals) fail with exit code 2 instead of tracebacks.  Kill-based
resume equivalence is covered by ``tests/resilience/test_signals.py``
and ``scripts/resilience_sweep.py``, which need real subprocesses.
"""

import json

import pytest

from repro.cli import main
from repro.engine.stats import reset_stats
from repro.obs.schemas import MANIFEST_SCHEMA, validate_file
from repro.resilience import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    RunRecord,
    read_events,
)

SCALE = "0.2"


def resilient_run(tmp_path, capsys, *extra):
    run_dir = tmp_path / "run"
    cache = tmp_path / "cache"
    reset_stats()
    code = main([
        "tab4", "--scale", SCALE, "--cache-dir", str(cache),
        "--run-dir", str(run_dir), *extra,
    ])
    captured = capsys.readouterr()
    return code, run_dir, captured


class TestResilientRun:
    def test_completes_with_journal_and_manifest(self, tmp_path, capsys):
        code, run_dir, captured = resilient_run(tmp_path, capsys)
        assert code == 0
        assert "resilient run" in captured.err
        events = read_events(run_dir / JOURNAL_NAME)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run.start"
        assert kinds[-1] == "run.complete"
        assert "snapshot.done" in kinds and "experiment.done" in kinds
        record = RunRecord.from_dir(run_dir)
        assert record.completed and record.experiments_done == ("tab4",)
        manifest_path = run_dir / MANIFEST_NAME
        assert validate_file(str(manifest_path), MANIFEST_SCHEMA) == []
        manifest = json.loads(manifest_path.read_text())
        assert manifest["resilience"]["status"] == "complete"
        assert manifest["resilience"]["run_id"] == record.run_id

    def test_stdout_matches_plain_run(self, tmp_path, capsys):
        """Journal/checkpoint plumbing must not perturb printed artifacts."""
        reset_stats()
        assert main(["tab4", "--scale", SCALE, "--no-cache"]) == 0
        plain = capsys.readouterr().out
        code, _run_dir, captured = resilient_run(tmp_path, capsys)
        assert code == 0
        assert captured.out == plain

    def test_occupied_run_dir_is_rejected(self, tmp_path, capsys):
        code, run_dir, _ = resilient_run(tmp_path, capsys)
        assert code == 0
        reset_stats()
        assert main([
            "tab4", "--scale", SCALE, "--no-cache", "--run-dir", str(run_dir),
        ]) == 2
        assert "journal" in capsys.readouterr().err


class TestResume:
    def test_warm_resume_reproduces_stdout(self, tmp_path, capsys):
        code, run_dir, first = resilient_run(tmp_path, capsys)
        assert code == 0
        reset_stats()
        assert main(["resume", "--run-dir", str(run_dir)]) == 0
        resumed = capsys.readouterr()
        assert resumed.out == first.out
        assert "already completed; re-running warm" in resumed.err
        record = RunRecord.from_dir(run_dir)
        assert record.completed
        assert record.resume_count == 1

    def test_batched_run_and_resume_keep_stdout(self, tmp_path, capsys):
        """Streamed gathers (--batch-domains) are invisible to resume.

        A batched resilient run must print exactly what the plain
        unbatched run prints, and resuming it must reproduce that byte
        stream again from batch-plan-keyed checkpoints.
        """
        reset_stats()
        assert main(["tab4", "--scale", SCALE, "--no-cache"]) == 0
        plain = capsys.readouterr().out
        code, run_dir, first = resilient_run(
            tmp_path, capsys, "--batch-domains", "7"
        )
        assert code == 0
        assert first.out == plain
        reset_stats()
        assert main([
            "resume", "--run-dir", str(run_dir), "--batch-domains", "7",
        ]) == 0
        assert capsys.readouterr().out == plain

    def test_jobs_override_keeps_stdout(self, tmp_path, capsys):
        code, run_dir, first = resilient_run(tmp_path, capsys)
        assert code == 0
        reset_stats()
        assert main(["resume", "--run-dir", str(run_dir), "--jobs", "2"]) == 0
        assert capsys.readouterr().out == first.out

    def test_digest_drift_is_rejected(self, tmp_path, capsys):
        code, run_dir, _ = resilient_run(tmp_path, capsys)
        assert code == 0
        journal_path = run_dir / JOURNAL_NAME
        events = read_events(journal_path)
        events[0]["config_digest"] = "0" * 64
        journal_path.write_text(
            "".join(json.dumps(event) + "\n" for event in events)
        )
        reset_stats()
        assert main(["resume", "--run-dir", str(run_dir)]) == 2
        assert "digest mismatch" in capsys.readouterr().err

    def test_missing_journal_is_rejected(self, tmp_path, capsys):
        assert main(["resume", "--run-dir", str(tmp_path / "nope")]) == 2
        assert "journal" in capsys.readouterr().err

    def test_run_id_requires_a_runs_root(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_RUNS", raising=False)
        assert main(["resume", "r20260101-000000-abcdef"]) == 2
        assert "--runs-root" in capsys.readouterr().err

    def test_resume_needs_an_argument(self, capsys):
        with pytest.raises(SystemExit):
            main(["resume"])


class TestRunsRoot:
    def test_runs_root_allocates_and_resumes_by_id(self, tmp_path, capsys):
        root = tmp_path / "runs"
        cache = tmp_path / "cache"
        reset_stats()
        assert main([
            "tab4", "--scale", SCALE, "--cache-dir", str(cache),
            "--runs-root", str(root),
        ]) == 0
        first = capsys.readouterr()
        run_dirs = [path for path in root.iterdir() if path.is_dir()]
        assert len(run_dirs) == 1
        run_id = run_dirs[0].name
        reset_stats()
        assert main(["resume", run_id, "--runs-root", str(root)]) == 0
        assert capsys.readouterr().out == first.out
