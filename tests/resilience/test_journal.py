"""Journal tests: append-only IO, torn-line tolerance, record parsing."""

import json

import pytest

from repro.resilience import (
    JOURNAL_NAME,
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    RunRecord,
    config_digest,
    new_run_id,
    read_events,
    runs_root,
)
from repro.world.build import WorldConfig


def make_journal(tmp_path, run_id="r20260101-000000-abcdef"):
    return RunJournal(tmp_path / "run", run_id)


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("run.start", args={"experiment": "tab4"})
        journal.append("shard.done", shard=2, attempt=1)
        journal.close()
        events = read_events(journal.path)
        assert [event["event"] for event in events] == ["run.start", "shard.done"]
        assert events[0]["schema"] == JOURNAL_SCHEMA_VERSION
        assert events[0]["run"] == journal.run_id
        assert events[1]["shard"] == 2

    def test_creates_run_dir(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("run.start")
        assert (tmp_path / "run" / JOURNAL_NAME).is_file()

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("run.start")
        journal.append("shard.done", shard=0)
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"event": "shard.do')  # killed mid-append
        events = read_events(journal.path)
        assert [event["event"] for event in events] == ["run.start", "shard.done"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("run.start")
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write("garbage\n")
            handle.write(json.dumps({"event": "run.complete"}) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line"):
            read_events(journal.path)

    def test_non_event_line_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("run.start")
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"no_event_member": 1}\n')
            handle.write(json.dumps({"event": "run.complete"}) + "\n")
        with pytest.raises(ValueError, match="not a journal event"):
            read_events(journal.path)


class TestRunRecord:
    def journaled_run(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(
            "run.start",
            args={"experiment": "tab4", "scale": 0.2},
            config_digest="d" * 64,
        )
        journal.append("shard.start", corpus="alexa", snapshot=8, shard=0, attempt=1)
        journal.append("shard.crash", corpus="alexa", snapshot=8, shard=0, attempt=1)
        journal.append("shard.done", corpus="alexa", snapshot=8, shard=0, attempt=2)
        journal.append("snapshot.done", corpus="alexa", snapshot=8, targets=120)
        journal.append("experiment.done", experiment="tab4")
        journal.close()
        return journal

    def test_counts_lifecycle_events(self, tmp_path):
        journal = self.journaled_run(tmp_path)
        record = RunRecord.from_dir(journal.run_dir)
        assert record.run_id == journal.run_id
        assert record.shards_done == 1
        assert record.restarts == 1
        assert record.snapshots_done == 1
        assert record.experiments_done == ("tab4",)
        assert not record.completed and not record.interrupted
        assert record.args == {"experiment": "tab4", "scale": 0.2}
        assert record.config_digest == "d" * 64

    def test_interrupt_then_resume_clears_interrupted(self, tmp_path):
        journal = self.journaled_run(tmp_path)
        journal.append("run.interrupted", signal="SIGINT")
        record = RunRecord.from_dir(journal.run_dir)
        assert record.interrupted
        journal.append("run.resume", resume=1)
        journal.append("run.complete")
        journal.close()
        record = RunRecord.from_dir(journal.run_dir)
        assert not record.interrupted
        assert record.completed
        assert record.resume_count == 1

    def test_quarantine_named_in_record(self, tmp_path):
        journal = self.journaled_run(tmp_path)
        journal.append(
            "shard.quarantined", corpus="com", snapshot=3, shard=2,
            attempts=3, reasons=["worker crashed (exit 113)"],
        )
        record = RunRecord.from_dir(journal.run_dir)
        assert record.quarantined == ("com[s3]#2",)
        assert record.describe()["quarantined"] == ["com[s3]#2"]

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunRecord.from_dir(tmp_path / "nope")

    def test_must_begin_with_run_start(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("shard.done", shard=0)
        journal.close()
        with pytest.raises(ValueError, match="run.start"):
            RunRecord.from_dir(journal.run_dir)


class TestConfigDigest:
    def test_stable(self):
        config = WorldConfig(seed=7)
        assert config_digest(config, None) == config_digest(config, None)

    def test_sensitive_to_world_and_faults(self):
        base = config_digest(WorldConfig(seed=7), None)
        assert base != config_digest(WorldConfig(seed=8), None)
        assert base != config_digest(WorldConfig(seed=7), "dns.timeout=0.1")


class TestIds:
    def test_run_ids_are_unique_and_sortable_shaped(self):
        first, second = new_run_id(), new_run_id()
        assert first != second
        assert first.startswith("r") and "-" in first

    def test_runs_root_prefers_explicit(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS", str(tmp_path / "env"))
        assert runs_root(str(tmp_path / "cli")) == tmp_path / "cli"
        assert runs_root(None) == tmp_path / "env"
        monkeypatch.delenv("REPRO_RUNS")
        assert runs_root(None) is None
