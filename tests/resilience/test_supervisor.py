"""Supervised gather tests: crashes, hangs, quarantine, checkpoints.

A stub gatherer stands in for the measurement engine — supervision only
cares that ``gather(shard, snapshot_index)`` returns a picklable value —
so these tests exercise restart/quarantine/checkpoint mechanics in
milliseconds, in both executor flavours (process tests fork, and are
skipped where fork is unavailable).
"""

import multiprocessing
import os

import pytest

from repro.engine.stats import STATS, reset_stats
from repro.faults import FaultPlan
from repro.resilience import (
    GatherSupervision,
    RunJournal,
    ShardQuarantined,
    ShutdownFlag,
    SupervisorOptions,
    read_events,
    supervised_gather,
)
from repro.resilience.signals import RunInterrupted

needs_fork = pytest.mark.skipif(
    os.name != "posix"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="process supervision requires fork",
)

SHARDS = [["a.example", "b.example"], ["c.example"], ["d.example", "e.example"]]


class StubGatherer:
    """Deterministic stand-in: 'gathers' a shard by tagging its targets."""

    def gather(self, shard, snapshot_index):
        return [(domain, snapshot_index) for domain in shard]


class ExplodingGatherer:
    def gather(self, shard, snapshot_index):
        raise ValueError("synthetic gather failure")


class DictCheckpoint:
    """In-memory checkpoint; the factory signature mirrors the store one."""

    def __init__(self):
        self.saved = {}

    def load(self, index):
        return self.saved.get(index)

    def save(self, index, result):
        self.saved[index] = result


def expected(snapshot_index=8):
    return [[(domain, snapshot_index) for domain in shard] for shard in SHARDS]


def supervise(**overrides):
    fields = dict(
        options=SupervisorOptions(poll_interval=0.005),
        scope=("alexa", 8),
    )
    fields.update(overrides)
    return GatherSupervision(**fields)


def run(executor, supervision, gatherer=None, shards=SHARDS):
    return supervised_gather(
        gatherer or StubGatherer(), shards, 8,
        executor=executor, supervision=supervision,
    )


class TestThreadSupervision:
    def test_results_in_shard_order(self):
        results, timings = run("thread", supervise())
        assert results == expected()
        assert len(timings) == len(SHARDS)

    def test_poison_shard_quarantined_with_diagnosis(self):
        plan = FaultPlan.parse("worker.crash=1.0", seed=7)
        with pytest.raises(ShardQuarantined) as info:
            run("thread", supervise(plan=plan))
        assert "poison shard quarantined" in str(info.value)
        assert "alexa[s8] shard #" in str(info.value)
        assert info.value.attempts == SupervisorOptions().max_attempts

    def test_partial_crash_rate_recovers(self):
        reset_stats()
        plan = FaultPlan.parse("worker.crash=0.4", seed=3)
        results, _ = run("thread", supervise(plan=plan))
        assert results == expected()
        assert STATS.counters["resilience.worker.restart"] > 0

    def test_hang_counts_against_the_same_budget(self):
        plan = FaultPlan.parse("worker.hang=1.0", seed=7)
        options = SupervisorOptions(deadline=0.01, poll_interval=0.005)
        with pytest.raises(ShardQuarantined) as info:
            run("thread", supervise(plan=plan, options=options))
        assert any("hung" in reason for reason in info.value.reasons)

    def test_real_exception_is_a_crash(self):
        with pytest.raises(ShardQuarantined) as info:
            run("thread", supervise(), gatherer=ExplodingGatherer())
        assert any("ValueError" in reason for reason in info.value.reasons)

    def test_checkpointed_shards_are_not_regathered(self):
        checkpoint = DictCheckpoint()
        checkpoint.saved[1] = [("restored", 8)]
        reset_stats()
        results, timings = run(
            "thread", supervise(checkpoint_factory=lambda count: checkpoint)
        )
        assert results[1] == [("restored", 8)]
        assert results[0] == expected()[0] and results[2] == expected()[2]
        assert len(timings) == 2  # restored shards do not skew timings
        assert STATS.counters["resilience.shard.restored"] == 1
        assert set(checkpoint.saved) == {0, 1, 2}  # new work checkpointed

    def test_shutdown_flag_interrupts(self):
        flag = ShutdownFlag()
        flag.trip("SIGINT")
        with pytest.raises(RunInterrupted):
            run("thread", supervise(shutdown=flag))


@needs_fork
class TestProcessSupervision:
    def test_results_match_thread_mode(self):
        results, timings = run("process", supervise())
        assert results == expected()
        assert len(timings) == len(SHARDS)

    def test_injected_crash_reports_exit_code(self, tmp_path):
        journal = RunJournal(tmp_path / "run", "rtest")
        plan = FaultPlan.parse("worker.crash=1.0", seed=7)
        with pytest.raises(ShardQuarantined) as info:
            run("process", supervise(plan=plan, journal=journal), shards=[["a"]])
        journal.close()
        assert "exit 113" in str(info.value)
        events = [event["event"] for event in read_events(journal.path)]
        assert events.count("shard.start") == SupervisorOptions().max_attempts
        assert events.count("shard.crash") == SupervisorOptions().max_attempts
        assert events[-1] == "shard.quarantined"

    def test_partial_crash_rate_recovers(self):
        plan = FaultPlan.parse("worker.crash=0.4", seed=3)
        results, _ = run("process", supervise(plan=plan))
        assert results == expected()

    def test_worker_exception_ships_traceback(self):
        with pytest.raises(ShardQuarantined) as info:
            run("process", supervise(), gatherer=ExplodingGatherer(), shards=[["a"]])
        assert any("ValueError" in reason for reason in info.value.reasons)

    def test_hung_worker_killed_by_deadline(self):
        plan = FaultPlan.parse("worker.hang=1.0", seed=7)
        options = SupervisorOptions(deadline=0.05, poll_interval=0.005)
        with pytest.raises(ShardQuarantined) as info:
            run("process", supervise(plan=plan, options=options), shards=[["a"]])
        assert any("deadline" in reason for reason in info.value.reasons)

    def test_journal_records_successful_lifecycle(self, tmp_path):
        journal = RunJournal(tmp_path / "run", "rtest")
        results, _ = run("process", supervise(journal=journal))
        journal.close()
        assert results == expected()
        events = read_events(journal.path)
        kinds = [event["event"] for event in events]
        assert kinds.count("shard.start") == len(SHARDS)
        assert kinds.count("shard.done") == len(SHARDS)
        assert all(event["corpus"] == "alexa" for event in events)


class TestStatsDedup:
    def test_duplicate_completion_merges_once(self):
        """A 'hung' worker finishing alongside its replacement must not
        double-count its stats delta (the EngineStats.merge_once lock)."""
        from repro.resilience.supervisor import _ShardLedger

        reset_stats()
        ledger = _ShardLedger(supervise(), shard_count=1, checkpoint=None)
        delta = {"counters": {"gather.obs.hit": 5}}
        assert ledger.accept(0, 1, ["r"], 0.1, stats_delta=delta)
        assert not ledger.accept(0, 2, ["r"], 0.1, stats_delta=delta)
        assert STATS.counters["gather.obs.hit"] == 5
        assert STATS.counters["resilience.shard.duplicate"] == 1
