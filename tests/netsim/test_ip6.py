"""Unit and property tests for IPv6 addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.asn import AutonomousSystem, PrefixToASTable
from repro.netsim.ip import AddressError
from repro.netsim.ip6 import IPv6Address, IPv6Prefix, format_ipv6, parse_ipv6


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("::", 0),
            ("::1", 1),
            ("2001:db8::", 0x20010DB8 << 96),
            ("2001:db8::1", (0x20010DB8 << 96) | 1),
            ("fe80::1", (0xFE80 << 112) | 1),
            ("1:2:3:4:5:6:7:8", 0x00010002000300040005000600070008),
            ("::ffff:1.2.3.4", 0xFFFF01020304),
            ("2001:DB8::A", (0x20010DB8 << 96) | 0xA),  # case-insensitive
        ],
    )
    def test_valid(self, text, expected):
        assert parse_ipv6(text) == expected

    @pytest.mark.parametrize(
        "bad",
        [
            "", ":::", "1::2::3", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9",
            "12345::", "g::1", "1.2.3.4::1", "::1.2.3.300",
        ],
    )
    def test_invalid(self, bad):
        with pytest.raises(AddressError):
            parse_ipv6(bad)


class TestFormat:
    @pytest.mark.parametrize(
        "text,canonical",
        [
            ("2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"),
            ("0:0:0:0:0:0:0:0", "::"),
            ("0:0:0:0:0:0:0:1", "::1"),
            ("2001:db8:0:1:1:1:1:1", "2001:db8:0:1:1:1:1:1"),  # single 0 not compressed
            ("2001:0:0:1:0:0:0:1", "2001:0:0:1::1"),           # longest run wins
            ("fe80:0:0:0:1:0:0:1", "fe80::1:0:0:1"),           # first-longest wins
        ],
    )
    def test_canonical(self, text, canonical):
        assert format_ipv6(parse_ipv6(text)) == canonical

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv6(-1)
        with pytest.raises(AddressError):
            format_ipv6(1 << 128)


class TestAddress:
    def test_classification(self):
        assert IPv6Address.parse("fe80::1").is_link_local()
        assert IPv6Address.parse("fd00::1").is_unique_local()
        assert IPv6Address.parse("2001:db8::1").is_documentation()
        assert not IPv6Address.parse("2a00::1").is_link_local()

    def test_arithmetic_and_ordering(self):
        a = IPv6Address.parse("2001:db8::1")
        assert str(a + 1) == "2001:db8::2"
        assert a < a + 1


class TestPrefix:
    def test_parse_and_containment(self):
        prefix = IPv6Prefix.parse("2001:db8::/32")
        assert IPv6Address.parse("2001:db8:ffff::1") in prefix
        assert IPv6Address.parse("2001:db9::1") not in prefix
        assert "2001:db8::5" in prefix

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            IPv6Prefix.parse("2001:db8::1/32")

    def test_of_masks(self):
        prefix = IPv6Prefix.of("2001:db8::1234", 64)
        assert str(prefix) == "2001:db8::/64"

    def test_nested_prefixes(self):
        outer = IPv6Prefix.parse("2001:db8::/32")
        inner = IPv6Prefix.parse("2001:db8:1::/48")
        assert inner in outer and outer not in inner

    def test_first_last(self):
        prefix = IPv6Prefix.parse("2001:db8::/126")
        assert str(prefix.first) == "2001:db8::"
        assert str(prefix.last) == "2001:db8::3"


class TestIPv6Routing:
    def test_announce_and_lookup(self):
        table = PrefixToASTable()
        table.register_as(AutonomousSystem(15169, "Google"))
        table.register_as(AutonomousSystem(8075, "Microsoft"))
        table.announce6("2a00:1450::/29", 15169)
        table.announce6("2a01:111::/32", 8075)
        assert table.lookup_asn6("2a00:1450:4001::1a") == 15169
        assert table.lookup6("2a01:111::25").name == "Microsoft"
        assert table.lookup_asn6("2400::1") is None

    def test_longest_prefix_wins(self):
        table = PrefixToASTable()
        table.register_as(AutonomousSystem(1, "Outer"))
        table.register_as(AutonomousSystem(2, "Inner"))
        table.announce6("2001:db8::/32", 1)
        table.announce6("2001:db8:dead::/48", 2)
        assert table.lookup_asn6("2001:db8:dead::1") == 2
        assert table.lookup_asn6("2001:db8:beef::1") == 1

    def test_v4_and_v6_tables_independent(self):
        table = PrefixToASTable()
        table.register_as(AutonomousSystem(1, "X"))
        table.announce("11.0.0.0/8", 1)
        assert table.lookup_asn("11.1.2.3") == 1
        assert table.lookup_asn6("::ffff:11.1.2.3") is None
        assert table.announcements6() == []


hex_value = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestProperties:
    @given(hex_value)
    def test_parse_format_roundtrip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value

    @given(hex_value)
    def test_canonical_form_is_fixed_point(self, value):
        text = format_ipv6(value)
        assert format_ipv6(parse_ipv6(text)) == text

    @given(hex_value, st.integers(min_value=0, max_value=128))
    def test_prefix_of_contains_address(self, value, length):
        prefix = IPv6Prefix.of(IPv6Address(value), length)
        assert IPv6Address(value) in prefix
