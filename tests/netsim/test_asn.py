"""Unit tests for AS objects and prefix-to-AS LPM."""

import pytest

from repro.netsim.asn import AutonomousSystem, PrefixToASTable
from repro.netsim.ip import IPv4Address, IPv4Prefix


@pytest.fixture
def table():
    table = PrefixToASTable()
    table.register_as(AutonomousSystem(15169, "Google"))
    table.register_as(AutonomousSystem(8075, "Microsoft"))
    table.register_as(AutonomousSystem(22843, "ProofPoint"))
    table.announce("11.1.0.0/16", 15169)
    table.announce("11.1.128.0/17", 8075)   # more specific inside Google's block
    table.announce("11.2.0.0/16", 22843)
    return table


class TestAutonomousSystem:
    def test_bad_number(self):
        with pytest.raises(ValueError):
            AutonomousSystem(0, "zero")

    def test_str(self):
        assert "15169" in str(AutonomousSystem(15169, "Google"))


class TestPrefixToASTable:
    def test_basic_lookup(self, table):
        assert table.lookup_asn("11.1.0.5") == 15169

    def test_longest_prefix_wins(self, table):
        assert table.lookup_asn("11.1.200.1") == 8075

    def test_boundary(self, table):
        assert table.lookup_asn("11.1.127.255") == 15169
        assert table.lookup_asn("11.1.128.0") == 8075

    def test_miss(self, table):
        assert table.lookup_asn("12.0.0.1") is None
        assert table.lookup("12.0.0.1") is None

    def test_lookup_returns_as_object(self, table):
        asys = table.lookup("11.2.3.4")
        assert asys is not None and asys.name == "ProofPoint"

    def test_lookup_accepts_address_types(self, table):
        assert table.lookup_asn(IPv4Address.parse("11.1.0.5")) == 15169
        assert table.lookup_asn(IPv4Address.parse("11.1.0.5").value) == 15169

    def test_announce_unregistered_as_fails(self, table):
        with pytest.raises(KeyError):
            table.announce("11.9.0.0/16", 99999)

    def test_reregister_same_as_ok(self, table):
        table.register_as(AutonomousSystem(15169, "Google"))

    def test_reregister_conflict_fails(self, table):
        with pytest.raises(ValueError):
            table.register_as(AutonomousSystem(15169, "Not Google"))

    def test_announce_accepts_prefix_object(self, table):
        table.announce(IPv4Prefix.parse("11.3.0.0/16"), 15169)
        assert table.lookup_asn("11.3.1.1") == 15169

    def test_trie_matches_linear_scan(self, table):
        for address in ("11.1.0.1", "11.1.129.1", "11.2.0.1", "11.9.9.9", "10.0.0.1"):
            assert table.lookup_asn(address) == table.lookup_linear(address)

    def test_announcements_order(self, table):
        prefixes = [str(p) for p, _ in table.announcements()]
        assert prefixes == ["11.1.0.0/16", "11.1.128.0/17", "11.2.0.0/16"]

    def test_autonomous_systems_sorted(self, table):
        numbers = [a.number for a in table.autonomous_systems()]
        assert numbers == sorted(numbers)

    def test_get_as(self, table):
        assert table.get_as(8075).name == "Microsoft"
        assert table.get_as(1) is None

    def test_default_route(self):
        table = PrefixToASTable()
        table.register_as(AutonomousSystem(1, "Everything"))
        table.announce("0.0.0.0/0", 1)
        assert table.lookup_asn("203.0.113.1") == 1
