"""Property-based tests for IPv4 arithmetic and LPM."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.asn import AutonomousSystem, PrefixToASTable
from repro.netsim.ip import IPv4Address, IPv4Prefix, format_ipv4, parse_ipv4

address_value = st.integers(min_value=0, max_value=0xFFFFFFFF)
prefix_length = st.integers(min_value=0, max_value=32)


class TestAddressProperties:
    @given(address_value)
    def test_parse_format_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value

    @given(address_value)
    def test_ordering_matches_integers(self, value):
        if value < 0xFFFFFFFF:
            assert IPv4Address(value) < IPv4Address(value + 1)


class TestPrefixProperties:
    @given(address_value, prefix_length)
    def test_of_contains_source_address(self, value, length):
        prefix = IPv4Prefix.of(IPv4Address(value), length)
        assert IPv4Address(value) in prefix

    @given(address_value, prefix_length)
    def test_parse_str_roundtrip(self, value, length):
        prefix = IPv4Prefix.of(IPv4Address(value), length)
        assert IPv4Prefix.parse(str(prefix)) == prefix

    @given(address_value, st.integers(min_value=0, max_value=30))
    def test_subdivision_partitions(self, value, length):
        prefix = IPv4Prefix.of(IPv4Address(value), length)
        children = list(prefix.subdivide(min(length + 2, 32)))
        assert sum(child.size for child in children) == prefix.size
        for left, right in zip(children, children[1:]):
            assert left.last.value + 1 == right.first.value
        for child in children:
            assert child in prefix

    @given(address_value, prefix_length, address_value, prefix_length)
    def test_containment_antisymmetry(self, v1, l1, v2, l2):
        a = IPv4Prefix.of(IPv4Address(v1), l1)
        b = IPv4Prefix.of(IPv4Address(v2), l2)
        if a in b and b in a:
            assert a == b


@st.composite
def routing_tables(draw):
    table = PrefixToASTable()
    n_as = draw(st.integers(min_value=1, max_value=5))
    for index in range(n_as):
        table.register_as(AutonomousSystem(64500 + index, f"AS{index}"))
    n_prefixes = draw(st.integers(min_value=1, max_value=20))
    for _ in range(n_prefixes):
        value = draw(address_value)
        length = draw(st.integers(min_value=4, max_value=28))
        asn = 64500 + draw(st.integers(min_value=0, max_value=n_as - 1))
        table.announce(IPv4Prefix.of(IPv4Address(value), length), asn)
    return table


class TestLPMProperties:
    @given(routing_tables(), st.lists(address_value, min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_trie_equals_linear_scan(self, table, addresses):
        for value in addresses:
            assert table.lookup_asn(value) == table.lookup_linear(value)

    @given(routing_tables())
    def test_announced_prefix_first_address_resolves(self, table):
        for prefix, asn in table.announcements():
            found = table.lookup_asn(prefix.network)
            assert found is not None
            # The found AS must originate some covering prefix at least as
            # specific as this one.
            covering = [
                (p, a) for p, a in table.announcements()
                if prefix.network in p and p.length >= prefix.length
            ]
            assert found in {a for _p, a in covering}
