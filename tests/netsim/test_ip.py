"""Unit tests for IPv4 arithmetic."""

import pytest

from repro.netsim.ip import (
    AddressError,
    IPv4Address,
    IPv4Prefix,
    format_ipv4,
    parse_ipv4,
)


class TestParseFormat:
    def test_round_trip(self):
        assert format_ipv4(parse_ipv4("172.217.222.26")) == "172.217.222.26"

    def test_zero_and_max(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_leading_zeros_accepted(self):
        assert parse_ipv4("010.0.0.1") == parse_ipv4("10.0.0.1")

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "1.2.3.-4", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            parse_ipv4(bad)

    def test_format_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(-1)
        with pytest.raises(AddressError):
            format_ipv4(2**32)


class TestIPv4Address:
    def test_parse_and_str(self):
        addr = IPv4Address.parse("11.0.0.1")
        assert str(addr) == "11.0.0.1"

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.1") < IPv4Address.parse("1.0.0.2")

    def test_addition(self):
        assert str(IPv4Address.parse("1.0.0.255") + 1) == "1.0.1.0"

    def test_private_detection(self):
        assert IPv4Address.parse("10.1.2.3").is_private()
        assert IPv4Address.parse("172.16.0.1").is_private()
        assert IPv4Address.parse("172.31.255.255").is_private()
        assert IPv4Address.parse("192.168.1.1").is_private()
        assert not IPv4Address.parse("172.32.0.1").is_private()
        assert not IPv4Address.parse("11.0.0.1").is_private()

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address(2**32)


class TestIPv4Prefix:
    def test_parse_and_str(self):
        prefix = IPv4Prefix.parse("11.0.16.0/20")
        assert str(prefix) == "11.0.16.0/20"
        assert prefix.size == 4096

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            IPv4Prefix.parse("11.0.16.1/20")

    def test_of_masks_host_bits(self):
        prefix = IPv4Prefix.of("11.0.16.77", 20)
        assert str(prefix) == "11.0.16.0/20"

    def test_containment_address(self):
        prefix = IPv4Prefix.parse("11.0.16.0/20")
        assert IPv4Address.parse("11.0.31.255") in prefix
        assert IPv4Address.parse("11.0.32.0") not in prefix
        assert "11.0.16.1" in prefix
        assert parse_ipv4("11.0.16.1") in prefix

    def test_containment_prefix(self):
        outer = IPv4Prefix.parse("11.0.0.0/8")
        inner = IPv4Prefix.parse("11.5.0.0/16")
        assert inner in outer
        assert outer not in inner

    def test_containment_other_type(self):
        assert object() not in IPv4Prefix.parse("11.0.0.0/8")

    def test_first_last(self):
        prefix = IPv4Prefix.parse("11.0.16.0/30")
        assert str(prefix.first) == "11.0.16.0"
        assert str(prefix.last) == "11.0.16.3"

    def test_addresses_iteration(self):
        addrs = list(IPv4Prefix.parse("11.0.16.0/30").addresses())
        assert [str(a) for a in addrs] == [
            "11.0.16.0", "11.0.16.1", "11.0.16.2", "11.0.16.3",
        ]

    def test_subdivide(self):
        children = list(IPv4Prefix.parse("11.0.16.0/22").subdivide(24))
        assert [str(c) for c in children] == [
            "11.0.16.0/24", "11.0.17.0/24", "11.0.18.0/24", "11.0.19.0/24",
        ]

    def test_subdivide_invalid(self):
        with pytest.raises(AddressError):
            list(IPv4Prefix.parse("11.0.16.0/22").subdivide(20))

    def test_overlaps(self):
        a = IPv4Prefix.parse("11.0.0.0/16")
        b = IPv4Prefix.parse("11.0.128.0/17")
        c = IPv4Prefix.parse("11.1.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_zero_length_prefix(self):
        everything = IPv4Prefix(0, 0)
        assert "255.255.255.255" in everything
        assert everything.mask() == 0

    @pytest.mark.parametrize("bad", ["11.0.0.0", "11.0.0.0/33", "11.0.0.0/x"])
    def test_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Prefix.parse(bad)
