"""Unit tests for the address registry."""

import pytest

from repro.netsim.ip import AddressError, IPv4Prefix
from repro.netsim.registry import AddressRegistry, ExhaustedError


@pytest.fixture
def registry():
    registry = AddressRegistry()
    registry.register_as(15169, "Google")
    registry.register_as(8075, "Microsoft")
    return registry


class TestAllocation:
    def test_blocks_do_not_overlap(self, registry):
        blocks = [registry.allocate_block(15169, 20) for _ in range(8)]
        for i, left in enumerate(blocks):
            for right in blocks[i + 1:]:
                assert not left.prefix.overlaps(right.prefix)

    def test_blocks_inside_supernet(self, registry):
        block = registry.allocate_block(15169, 20)
        assert block.prefix in registry.supernet

    def test_block_announced(self, registry):
        block = registry.allocate_block(15169, 20)
        assert registry.lookup_asn(str(block.prefix.first + 1)) == 15169

    def test_mixed_lengths_aligned(self, registry):
        small = registry.allocate_block(15169, 24)
        large = registry.allocate_block(8075, 16)
        assert not small.prefix.overlaps(large.prefix)
        assert large.prefix.network % large.prefix.size == 0

    def test_address_allocation_skips_network_and_broadcast(self, registry):
        block = registry.allocate_block(15169, 30)  # 4 addresses, 2 usable
        first = block.allocate_address()
        second = block.allocate_address()
        assert first == block.prefix.first + 1
        assert second == block.prefix.first + 2
        with pytest.raises(ExhaustedError):
            block.allocate_address()
        assert block.allocated_count == 2

    def test_unsupported_length(self, registry):
        with pytest.raises(AddressError):
            registry.allocate_block(15169, 31)
        with pytest.raises(AddressError):
            registry.allocate_block(15169, 4)

    def test_supernet_exhaustion(self):
        registry = AddressRegistry(supernet=IPv4Prefix.parse("11.0.0.0/22"))
        registry.register_as(1, "Tiny")
        registry.allocate_block(1, 23)
        registry.allocate_block(1, 23)
        with pytest.raises(ExhaustedError):
            registry.allocate_block(1, 23)

    def test_lookup_as_object(self, registry):
        block = registry.allocate_block(8075, 20)
        asys = registry.lookup_as(str(block.prefix.first + 5))
        assert asys.name == "Microsoft"

    def test_blocks_listing(self, registry):
        registry.allocate_block(15169, 20)
        registry.allocate_block(8075, 20)
        assert len(registry.blocks()) == 2

    def test_allocated_addresses_not_private(self, registry):
        block = registry.allocate_block(15169, 20)
        assert not block.allocate_address().is_private()
