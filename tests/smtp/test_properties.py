"""Property-based tests for SMTP reply wire format."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.smtp.replies import Reply, parse_reply

reply_line = st.text(
    alphabet=string.ascii_letters + string.digits + " .-_/:", max_size=60
)
replies = st.builds(
    Reply,
    code=st.integers(min_value=200, max_value=599),
    lines=st.lists(reply_line, min_size=1, max_size=6).map(tuple),
)


class TestReplyProperties:
    @given(replies)
    def test_render_parse_roundtrip(self, reply):
        assert parse_reply(reply.render()) == reply

    @given(replies)
    def test_render_line_structure(self, reply):
        rendered = reply.render()
        lines = rendered.split("\r\n")
        assert lines[-1] == ""  # trailing CRLF
        body = lines[:-1]
        assert len(body) == len(reply.lines)
        for line in body[:-1]:
            assert line[3] == "-"
        assert body[-1][3:4] in (" ", "")

    @given(replies)
    def test_text_preserves_content(self, reply):
        assert reply.text.split("\n") == list(reply.lines)
