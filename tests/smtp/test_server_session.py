"""Unit tests for simulated MTAs and probe sessions."""

import pytest

from repro.smtp.banner import BannerStyle
from repro.smtp.server import (
    SMTP_RELAY_PORT,
    SUBMISSION_PORT,
    SMTPHostTable,
    SMTPServerConfig,
)
from repro.smtp.session import SessionOutcome, SMTPClient
from repro.tls.ca import CertificateAuthority, self_signed


@pytest.fixture
def ca():
    return CertificateAuthority("Simulated CA")


def make_server(ca, identity="mx1.provider.com", **kwargs):
    defaults = dict(
        identity=identity,
        banner_style=BannerStyle.FQDN,
        starttls=True,
        certificate=ca.issue(identity),
    )
    defaults.update(kwargs)
    return SMTPServerConfig(**defaults)


class TestSMTPServerConfig:
    def test_starttls_requires_cert(self):
        with pytest.raises(ValueError):
            SMTPServerConfig(identity="mx.example.com", starttls=True, certificate=None)

    def test_fqdn_style_requires_identity(self, ca):
        with pytest.raises(ValueError):
            SMTPServerConfig(
                identity=None,
                banner_style=BannerStyle.FQDN,
                starttls=False,
            )

    def test_greeting_carries_identity(self, ca):
        server = make_server(ca)
        reply = server.greet("11.0.0.1")
        assert reply.code == 220
        assert "mx1.provider.com" in reply.text

    def test_ehlo_advertises_starttls(self, ca):
        server = make_server(ca)
        reply = server.respond_ehlo("11.0.0.1")
        assert reply.first_line == "mx1.provider.com"
        assert "STARTTLS" in reply.lines

    def test_ehlo_without_starttls(self, ca):
        server = make_server(ca, starttls=False, certificate=None)
        assert "STARTTLS" not in server.respond_ehlo("11.0.0.1").lines

    def test_listens_on(self, ca):
        server = make_server(ca, open_ports=(SMTP_RELAY_PORT,))
        assert server.listens_on(SMTP_RELAY_PORT)
        assert not server.listens_on(SUBMISSION_PORT)


class TestSMTPHostTable:
    def test_bind_and_get(self, ca):
        table = SMTPHostTable()
        server = make_server(ca)
        table.bind("11.0.0.1", server)
        assert table.get("11.0.0.1") is server
        assert "11.0.0.1" in table
        assert len(table) == 1

    def test_double_bind_rejected(self, ca):
        table = SMTPHostTable()
        table.bind("11.0.0.1", make_server(ca))
        with pytest.raises(ValueError):
            table.bind("11.0.0.1", make_server(ca, identity="mx2.provider.com"))

    def test_rebind_allowed(self, ca):
        table = SMTPHostTable()
        table.bind("11.0.0.1", make_server(ca))
        replacement = make_server(ca, identity="mx9.other.com")
        table.rebind("11.0.0.1", replacement)
        assert table.get("11.0.0.1") is replacement

    def test_unbind(self, ca):
        table = SMTPHostTable()
        table.bind("11.0.0.1", make_server(ca))
        table.unbind("11.0.0.1")
        assert table.get("11.0.0.1") is None
        table.unbind("11.0.0.1")  # idempotent


class TestSMTPClient:
    def test_full_probe(self, ca):
        table = SMTPHostTable()
        cert = ca.issue("mx1.provider.com", sans=["mx2.provider.com"])
        table.bind(
            "11.0.0.1",
            SMTPServerConfig(
                identity="mx1.provider.com",
                certificate=cert,
            ),
        )
        result = SMTPClient(table).probe("11.0.0.1")
        assert result.succeeded
        assert result.banner_text is not None and "mx1.provider.com" in result.banner_text
        assert result.ehlo_identity == "mx1.provider.com"
        assert result.starttls_offered
        assert result.certificate == cert

    def test_no_host_times_out(self, ca):
        result = SMTPClient(SMTPHostTable()).probe("11.0.0.99")
        assert result.outcome is SessionOutcome.TIMEOUT
        assert not result.succeeded
        assert result.banner_text is None
        assert result.ehlo_identity is None

    def test_closed_port_refused(self, ca):
        table = SMTPHostTable()
        table.bind("11.0.0.1", make_server(ca, open_ports=(SUBMISSION_PORT,)))
        result = SMTPClient(table).probe("11.0.0.1", port=SMTP_RELAY_PORT)
        assert result.outcome is SessionOutcome.CONNECTION_REFUSED

    def test_probe_without_starttls_has_no_cert(self, ca):
        table = SMTPHostTable()
        table.bind("11.0.0.1", make_server(ca, starttls=False, certificate=None))
        result = SMTPClient(table).probe("11.0.0.1")
        assert result.succeeded
        assert not result.starttls_offered
        assert result.certificate is None

    def test_self_signed_cert_still_observed(self, ca):
        table = SMTPHostTable()
        cert = self_signed("mx.myvps.com")
        table.bind("11.0.0.1", SMTPServerConfig(identity="mx.myvps.com", certificate=cert))
        result = SMTPClient(table).probe("11.0.0.1")
        assert result.certificate is cert
