"""Unit tests for banner/EHLO generation and interpretation."""

import pytest

from repro.smtp.banner import (
    BannerStyle,
    consistent_identity,
    identity_from_message,
    render_banner,
    render_ehlo_identity,
)


class TestRenderBanner:
    def test_fqdn(self):
        text = render_banner(BannerStyle.FQDN, "mx1.provider.com")
        assert text.startswith("mx1.provider.com")

    def test_spoofed_looks_like_fqdn(self):
        text = render_banner(BannerStyle.SPOOFED, "mx.google.com")
        assert "mx.google.com" in text

    def test_decorated_ip(self):
        text = render_banner(BannerStyle.DECORATED_IP, None, address="1.2.3.4")
        assert "IP-1-2-3-4" in text

    def test_localhost(self):
        assert "localhost" in render_banner(BannerStyle.LOCALHOST, None)

    def test_blank(self):
        text = render_banner(BannerStyle.BLANK, None)
        assert identity_from_message(text).fqdn is None

    def test_fqdn_requires_identity(self):
        with pytest.raises(ValueError):
            render_banner(BannerStyle.FQDN, None)

    def test_decorated_requires_address(self):
        with pytest.raises(ValueError):
            render_banner(BannerStyle.DECORATED_IP, None)


class TestRenderEhloIdentity:
    def test_fqdn(self):
        assert render_ehlo_identity(BannerStyle.FQDN, "mx.example.com", None) == "mx.example.com"

    def test_decorated_ip_bracketed(self):
        assert render_ehlo_identity(BannerStyle.DECORATED_IP, None, "1.2.3.4") == "[1.2.3.4]"

    def test_localhost(self):
        assert render_ehlo_identity(BannerStyle.LOCALHOST, None, None) == "localhost"

    def test_blank(self):
        assert render_ehlo_identity(BannerStyle.BLANK, None, None) == "smtp"


class TestIdentityFromMessage:
    def test_provider_banner(self):
        identity = identity_from_message("mx.google.com ESMTP ready")
        assert identity.fqdn == "mx.google.com"
        assert identity.registered_domain == "google.com"
        assert identity.usable

    def test_subdomain_reduced_to_registered(self):
        identity = identity_from_message("se26.mailspamprotection.com ESMTP")
        assert identity.registered_domain == "mailspamprotection.com"

    def test_decorated_ip_unusable(self):
        assert not identity_from_message("IP-1-2-3-4 ESMTP").usable

    def test_localhost_unusable(self):
        assert not identity_from_message("localhost.localdomain ESMTP Postfix").usable

    def test_plain_prose_unusable(self):
        assert not identity_from_message("ESMTP service ready").usable


class TestConsistentIdentity:
    def test_agreeing_messages(self):
        banner = "mx1.provider.com ESMTP service ready"
        ehlo = "mx1.provider.com"
        assert consistent_identity(banner, ehlo) == "provider.com"

    def test_different_hosts_same_registered_domain(self):
        banner = "mx1.provider.com ESMTP"
        ehlo = "mx2.provider.com"
        assert consistent_identity(banner, ehlo) == "provider.com"

    def test_disagreeing_messages(self):
        assert consistent_identity("mx.a-corp.com ESMTP", "mx.b-corp.com") is None

    def test_one_side_unusable(self):
        assert consistent_identity("IP-1-2-3-4", "mx1.provider.com") is None
        assert consistent_identity("mx1.provider.com ESMTP", "localhost") is None
