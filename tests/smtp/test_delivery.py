"""Unit tests for MX-based relay delivery."""

import pytest

from repro.dnscore import Resolver, ZoneDB, a, mx
from repro.smtp.delivery import DeliveryStatus, MailNetwork, SendingMTA
from repro.smtp.server import SMTPHostTable, SMTPServerConfig, SUBMISSION_PORT
from repro.tls.ca import CertificateAuthority

CA = CertificateAuthority("Simulated CA")


@pytest.fixture
def setting():
    zdb = ZoneDB()
    zone = zdb.ensure_zone("dest.com")
    zone.add(mx("dest.com", "mx1.dest.com", preference=10))
    zone.add(mx("dest.com", "mx2.dest.com", preference=20))
    zone.add(a("mx1.dest.com", "11.0.0.1"))
    zone.add(a("mx2.dest.com", "11.0.0.2"))

    implicit = zdb.ensure_zone("implicit.com")
    implicit.add(a("implicit.com", "11.0.0.3"))

    dead = zdb.ensure_zone("dead.com")
    dead.add(mx("dead.com", "mx.dead.com", preference=10))
    dead.add(a("mx.dead.com", "11.0.0.9"))  # nothing listens there

    zdb.ensure_zone("nxmail.com")  # no MX, no A

    hosts = SMTPHostTable()
    for address, identity in (
        ("11.0.0.1", "mx1.dest.com"),
        ("11.0.0.2", "mx2.dest.com"),
        ("11.0.0.3", "implicit.com"),
    ):
        hosts.bind(
            address,
            SMTPServerConfig(identity=identity, certificate=CA.issue(identity)),
        )

    network = MailNetwork(hosts=hosts)
    store = network.serve("11.0.0.1", {"dest.com"}, store_key="dest")
    network.serve("11.0.0.2", {"dest.com"}, store_key="dest")
    network.serve("11.0.0.3", {"implicit.com"})

    mta = SendingMTA(resolver=Resolver(db=zdb), network=network)
    return mta, store, network


class TestDelivery:
    def test_delivers_to_primary_mx(self, setting):
        mta, store, _ = setting
        results = mta.send("alice@sender.com", ["bob@dest.com"], "hello bob")
        result = results["dest.com"]
        assert result.succeeded
        assert result.delivered_via == "mx1.dest.com"
        messages = store.messages_for("bob@dest.com")
        assert len(messages) == 1
        assert messages[0].body == "hello bob"

    def test_shared_store_across_exchanges(self, setting):
        mta, store, network = setting
        assert network.store_at("11.0.0.2") is store

    def test_failover_to_backup_mx(self, setting):
        mta, store, network = setting
        network.hosts.unbind("11.0.0.1")  # primary goes dark
        results = mta.send("alice@sender.com", ["bob@dest.com"], "failover")
        result = results["dest.com"]
        assert result.succeeded
        assert result.delivered_via == "mx2.dest.com"
        assert any(attempt.outcome == "no-listener" for attempt in result.attempts)

    def test_implicit_mx_fallback(self, setting):
        mta, _, network = setting
        results = mta.send("alice@sender.com", ["x@implicit.com"], "implicit")
        assert results["implicit.com"].succeeded
        assert results["implicit.com"].delivered_via == "implicit.com"

    def test_no_mail_service(self, setting):
        mta, _, _ = setting
        results = mta.send("a@s.com", ["x@nxmail.com"], "void")
        assert results["nxmail.com"].status is DeliveryStatus.NO_MX

    def test_dead_server(self, setting):
        mta, _, _ = setting
        results = mta.send("a@s.com", ["x@dead.com"], "void")
        assert results["dead.com"].status is DeliveryStatus.NO_SERVER

    def test_relay_rejection(self, setting):
        mta, _, network = setting
        # dest.com's servers do not accept mail for other.com even if DNS
        # maliciously pointed there.
        zdb = mta.resolver.db
        zone = zdb.ensure_zone("other.com")
        zone.add(mx("other.com", "mx1.dest.com", preference=10))
        results = mta.send("a@s.com", ["x@other.com"], "spam")
        assert results["other.com"].status is DeliveryStatus.REJECTED

    def test_malformed_recipient(self, setting):
        mta, _, _ = setting
        results = mta.send("a@s.com", ["not-an-address"], "x")
        assert results["not-an-address"].status is DeliveryStatus.MALFORMED

    def test_multiple_domains_one_send(self, setting):
        mta, store, _ = setting
        results = mta.send(
            "a@s.com", ["bob@dest.com", "x@implicit.com", "y@nxmail.com"], "multi"
        )
        assert results["dest.com"].succeeded
        assert results["implicit.com"].succeeded
        assert not results["nxmail.com"].succeeded

    def test_dot_transparency_end_to_end(self, setting):
        mta, store, _ = setting
        body = "line one\n.hidden dot line\nlast"
        mta.send("a@s.com", ["bob@dest.com"], body)
        assert store.messages_for("bob@dest.com")[0].body == body


class TestMailNetwork:
    def test_serve_unbound_address_fails(self, setting):
        _, _, network = setting
        with pytest.raises(ValueError):
            network.serve("11.9.9.9", {"x.com"})

    def test_session_respects_port(self, setting):
        _, _, network = setting
        network.hosts.rebind(
            "11.0.0.1",
            SMTPServerConfig(
                identity="mx1.dest.com",
                starttls=False,
                certificate=None,
                open_ports=(SUBMISSION_PORT,),
            ),
        )
        assert network.open_session("11.0.0.1") is None


class TestWorldIntegration:
    def test_mail_flows_through_the_synthetic_internet(self, small_world):
        from repro.world.mailnet import sending_mta

        mta = sending_mta(small_world, snapshot_index=8)
        # Deliver to the showcase Google customer.
        results = mta.send("reporter@press.example", ["info@netflix.com"], "hi")
        assert results["netflix.com"].succeeded
        # The accepting exchange is Google infrastructure.
        assert "google" in results["netflix.com"].delivered_via

    def test_no_smtp_domain_bounces(self, small_world):
        from repro.smtp.delivery import DeliveryStatus
        from repro.world.mailnet import sending_mta

        mta = sending_mta(small_world, snapshot_index=8)
        results = mta.send("a@s.com", ["x@jeniustoto.net"], "void")
        assert results["jeniustoto.net"].status is DeliveryStatus.NO_SERVER

    def test_customer_named_mx_delivers_to_provider_store(self, small_world):
        from repro.world.mailnet import build_mail_network, sending_mta

        mta = sending_mta(small_world, snapshot_index=8)
        results = mta.send("a@s.com", ["ceo@gsipartners.com"], "deal")
        assert results["gsipartners.com"].succeeded
        # gsipartners' MX is under its own name but the mail lands on
        # Google's store — the exact situation the paper's methodology
        # uncovers from the outside.
        address = results["gsipartners.com"].attempts[-1].address
        assert small_world.registry.lookup_asn(address) == 15169
