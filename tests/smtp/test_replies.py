"""Unit tests for SMTP reply parsing and rendering."""

import pytest

from repro.smtp.replies import (
    Reply,
    ReplyParseError,
    ehlo_response,
    not_available,
    ok,
    parse_reply,
    service_ready,
)


class TestReply:
    def test_text_joins_lines(self):
        reply = Reply(code=250, lines=("a", "b"))
        assert reply.text == "a\nb"
        assert reply.first_line == "a"

    def test_positive(self):
        assert ok().is_positive
        assert not not_available().is_positive

    def test_implausible_code_rejected(self):
        with pytest.raises(ReplyParseError):
            Reply(code=600, lines=("x",))
        with pytest.raises(ReplyParseError):
            Reply(code=199, lines=("x",))

    def test_empty_lines_rejected(self):
        with pytest.raises(ReplyParseError):
            Reply(code=250, lines=())


class TestRender:
    def test_single_line(self):
        assert service_ready("mx.example.com ESMTP").render() == (
            "220 mx.example.com ESMTP\r\n"
        )

    def test_multi_line_continuation(self):
        rendered = ehlo_response("mx.example.com", ("PIPELINING", "STARTTLS")).render()
        assert rendered == (
            "250-mx.example.com\r\n250-PIPELINING\r\n250 STARTTLS\r\n"
        )


class TestParse:
    def test_round_trip_single(self):
        original = service_ready("mx.example.com ESMTP ready")
        assert parse_reply(original.render()) == original

    def test_round_trip_multi(self):
        original = ehlo_response("mx.example.com", ("PIPELINING", "SIZE 1000", "STARTTLS"))
        assert parse_reply(original.render()) == original

    def test_bare_lf_tolerated(self):
        reply = parse_reply("250-a\n250 b\n")
        assert reply.lines == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(ReplyParseError):
            parse_reply("")

    def test_non_numeric_rejected(self):
        with pytest.raises(ReplyParseError):
            parse_reply("hello world\r\n")

    def test_inconsistent_codes_rejected(self):
        with pytest.raises(ReplyParseError):
            parse_reply("250-a\r\n220 b\r\n")

    def test_trailing_continuation_rejected(self):
        with pytest.raises(ReplyParseError):
            parse_reply("250-a\r\n250-b\r\n")

    def test_code_only_line(self):
        reply = parse_reply("220\r\n")
        assert reply.code == 220
        assert reply.lines == ("",)
