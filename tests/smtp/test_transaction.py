"""Unit tests for the server-side SMTP transaction state machine."""

import pytest

from repro.smtp.server import SMTPServerConfig
from repro.smtp.transaction import (
    MailboxError,
    MailboxStore,
    RecipientPolicy,
    SMTPTransactionServer,
    TransactionState,
    parse_address,
)
from repro.tls.ca import CertificateAuthority

CA = CertificateAuthority("Simulated CA")


def make_server(accepted=("example.com",), starttls=True):
    config = SMTPServerConfig(
        identity="mx.example.com",
        starttls=starttls,
        certificate=CA.issue("mx.example.com") if starttls else None,
    )
    store = MailboxStore()
    server = SMTPTransactionServer(
        config=config,
        policy=RecipientPolicy(set(accepted)),
        store=store,
        address="11.0.0.1",
    )
    return server, store


def deliver(server, mail_from="alice@sender.com", rcpt="bob@example.com", body="hi"):
    assert server.handle("EHLO client.sender.com").is_positive
    assert server.handle(f"MAIL FROM:<{mail_from}>").is_positive
    assert server.handle(f"RCPT TO:<{rcpt}>").is_positive
    assert server.handle("DATA").code == 354
    for line in body.split("\n"):
        server.handle(line)
    return server.handle(".")


class TestParseAddress:
    def test_plain(self):
        assert parse_address("bob@example.com") == ("bob", "example.com")

    def test_angle_brackets(self):
        assert parse_address("<bob@Example.COM>") == ("bob", "example.com")

    @pytest.mark.parametrize("bad", ["nodomain", "@x.com", "a@", "a b@x.com", "a@@x.com"])
    def test_malformed(self, bad):
        with pytest.raises(MailboxError):
            parse_address(bad)


class TestHappyPath:
    def test_full_transaction_delivers(self):
        server, store = make_server()
        reply = deliver(server, body="line1\nline2")
        assert reply.code == 250
        messages = store.messages_for("bob@example.com")
        assert len(messages) == 1
        assert messages[0].mail_from == "alice@sender.com"
        assert messages[0].body == "line1\nline2"
        assert messages[0].received_by == "mx.example.com"

    def test_multiple_recipients(self):
        server, store = make_server()
        server.handle("EHLO c.com")
        server.handle("MAIL FROM:<a@s.com>")
        server.handle("RCPT TO:<bob@example.com>")
        server.handle("RCPT TO:<carol@example.com>")
        server.handle("DATA")
        server.handle("hello")
        assert server.handle(".").code == 250
        assert store.messages_for("bob@example.com")
        assert store.messages_for("carol@example.com")
        assert store.total_messages() == 2

    def test_dot_transparency(self):
        server, store = make_server()
        server.handle("EHLO c.com")
        server.handle("MAIL FROM:<a@s.com>")
        server.handle("RCPT TO:<bob@example.com>")
        server.handle("DATA")
        server.handle("..starts with a dot")
        server.handle(".")
        assert store.messages_for("bob@example.com")[0].body == ".starts with a dot"

    def test_consecutive_messages_in_one_session(self):
        server, store = make_server()
        deliver(server)
        # Session returns to GREETED; a second envelope works without EHLO.
        assert server.handle("MAIL FROM:<x@y.com>").is_positive
        assert server.handle("RCPT TO:<bob@example.com>").is_positive
        server.handle("DATA")
        server.handle("again")
        assert server.handle(".").code == 250
        assert store.total_messages() == 2


class TestSequencing:
    def test_mail_before_greeting_rejected(self):
        server, _ = make_server()
        assert server.handle("MAIL FROM:<a@b.com>").code == 503

    def test_rcpt_before_mail_rejected(self):
        server, _ = make_server()
        server.handle("EHLO c.com")
        assert server.handle("RCPT TO:<bob@example.com>").code == 503

    def test_data_before_rcpt_rejected(self):
        server, _ = make_server()
        server.handle("EHLO c.com")
        server.handle("MAIL FROM:<a@b.com>")
        assert server.handle("DATA").code == 503

    def test_nested_mail_rejected(self):
        server, _ = make_server()
        server.handle("EHLO c.com")
        server.handle("MAIL FROM:<a@b.com>")
        assert server.handle("MAIL FROM:<c@d.com>").code == 503

    def test_rset_clears_envelope(self):
        server, store = make_server()
        server.handle("EHLO c.com")
        server.handle("MAIL FROM:<a@b.com>")
        server.handle("RCPT TO:<bob@example.com>")
        assert server.handle("RSET").is_positive
        assert server.handle("RCPT TO:<bob@example.com>").code == 503  # no MAIL

    def test_quit_closes(self):
        server, _ = make_server()
        assert server.handle("QUIT").code == 221
        assert server.state is TransactionState.CLOSED
        assert server.handle("NOOP").code == 421

    def test_unknown_command(self):
        server, _ = make_server()
        assert server.handle("FROBNICATE now").code == 500


class TestPolicy:
    def test_relay_denied_for_foreign_domain(self):
        server, store = make_server(accepted=("example.com",))
        server.handle("EHLO c.com")
        server.handle("MAIL FROM:<a@b.com>")
        assert server.handle("RCPT TO:<bob@other.com>").code == 550
        assert store.total_messages() == 0

    def test_open_relay_policy(self):
        server, _ = make_server(accepted=())
        server.handle("EHLO c.com")
        server.handle("MAIL FROM:<a@b.com>")
        assert server.handle("RCPT TO:<anyone@anywhere.net>").is_positive

    def test_null_reverse_path_accepted(self):
        server, _ = make_server()
        server.handle("EHLO c.com")
        assert server.handle("MAIL FROM:<>").is_positive

    def test_malformed_sender_rejected(self):
        server, _ = make_server()
        server.handle("EHLO c.com")
        assert server.handle("MAIL FROM:<not-an-address>").code == 553

    def test_vrfy(self):
        server, _ = make_server()
        assert server.handle("VRFY bob@example.com").code == 252
        assert server.handle("VRFY bob@other.com").code == 550


class TestStartTLS:
    def test_starttls_resets_session(self):
        server, _ = make_server(starttls=True)
        server.handle("EHLO c.com")
        reply = server.handle("STARTTLS")
        assert reply.code == 220
        assert server.tls_active
        # RFC 3207: client must re-EHLO after TLS.
        assert server.handle("MAIL FROM:<a@b.com>").code == 503

    def test_starttls_unsupported(self):
        server, _ = make_server(starttls=False)
        server.handle("EHLO c.com")
        assert server.handle("STARTTLS").code == 502

    def test_double_starttls_rejected(self):
        server, _ = make_server(starttls=True)
        server.handle("EHLO c.com")
        server.handle("STARTTLS")
        server.handle("EHLO c.com")
        assert server.handle("STARTTLS").code == 503
