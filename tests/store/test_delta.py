"""Property tests for store-level delta iteration.

``SnapshotView.signatures()``/``diff`` drive the serve daemon's incremental
ingest, so exactness matters in both directions: every evidence change must
be flagged (missed changes silently serve stale inferences) and nothing
else may be (spurious changes erode the incremental speedup).  The
properties below mutate real measurement dicts and check the delta report
is *exactly* the mutation set, that date-only shifts are flagged only when
a certificate validity window is crossed, and that the embedded signature
columns agree with the from-columns fallback used for older payloads.
"""

import dataclasses
from datetime import timedelta

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import decode_measurements, encode_measurements
from repro.store.codec import CodecError
from repro.store.delta import SnapshotView, diff
from repro.world.entities import DatasetTag

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def base(ctx):
    """A slice of real measurements — big enough to share MX/cert rows."""
    full = ctx.measurements(DatasetTag.ALEXA, 0)
    return dict(list(full.items())[:150])


def _mutate_evidence(measurement):
    """A copy whose evidence (TXT set) genuinely differs."""
    return dataclasses.replace(
        measurement, txt=measurement.txt + ("v=spf1 include:delta.test -all",)
    )


def _shift_dates(measurement, delta):
    """Shift every date in the measurement by *delta*, evidence untouched."""
    mx_set = tuple(
        dataclasses.replace(
            mx,
            ips=tuple(
                dataclasses.replace(
                    ip,
                    scan=dataclasses.replace(
                        ip.scan, scanned_on=ip.scan.scanned_on + delta
                    )
                    if ip.scan is not None
                    else None,
                )
                for ip in mx.ips
            ),
        )
        for mx in measurement.mx_set
    )
    return dataclasses.replace(
        measurement, measured_on=measurement.measured_on + delta, mx_set=mx_set
    )


def _validity_flips(measurement, delta):
    """Does shifting scan dates by *delta* cross any cert validity window?"""
    for mx in measurement.mx_set:
        for ip in mx.ips:
            scan = ip.scan
            if scan is None or scan.certificate is None:
                continue
            cert = scan.certificate
            before = cert.not_before <= scan.scanned_on <= cert.not_after
            after = (
                cert.not_before <= scan.scanned_on + delta <= cert.not_after
            )
            if before != after:
                return True
    return False


class TestDiffExactness:
    @SETTINGS
    @given(data=st.data())
    def test_report_is_exactly_the_mutation_set(self, base, data):
        names = sorted(base)
        removed = set(
            data.draw(st.sets(st.sampled_from(names), max_size=8))
        )
        mutated = (
            set(data.draw(st.sets(st.sampled_from(names), max_size=8)))
            - removed
        )
        n_added = data.draw(st.integers(min_value=0, max_value=4))

        new = {}
        for domain, measurement in base.items():
            if domain in removed:
                continue
            new[domain] = (
                _mutate_evidence(measurement)
                if domain in mutated
                else measurement
            )
        template = next(iter(base.values()))
        added = [f"synth{i}.delta-test.example" for i in range(n_added)]
        for name in added:
            new[name] = dataclasses.replace(template, domain=name)

        report = diff(encode_measurements(base), encode_measurements(new))
        assert set(report.changed) == mutated
        assert set(report.added) == set(added)
        assert set(report.removed) == removed
        assert report.unchanged == len(base) - len(removed) - len(mutated)
        assert report.total == len(new)
        assert report.dirty == len(mutated) + len(added)

    def test_identical_payloads_diff_empty(self, base):
        payload = encode_measurements(base)
        report = diff(payload, encode_measurements(dict(base)))
        assert report.changed == report.added == report.removed == ()
        assert report.unchanged == len(base)
        assert report.churn == 0.0

    @SETTINGS
    @given(delta_days=st.integers(min_value=-500, max_value=500))
    def test_date_shifts_flag_only_validity_crossings(self, base, delta_days):
        delta = timedelta(days=delta_days)
        shifted = {
            domain: _shift_dates(measurement, delta)
            for domain, measurement in base.items()
        }
        expected = {
            domain
            for domain, measurement in base.items()
            if _validity_flips(measurement, delta)
        }
        report = diff(encode_measurements(base), encode_measurements(shifted))
        assert set(report.changed) == expected
        assert report.added == report.removed == ()


class TestMaterialize:
    def test_full_materialize_matches_decode(self, base):
        payload = encode_measurements(base)
        view = SnapshotView(payload)
        assert view.materialize() == decode_measurements(payload) == base

    @SETTINGS
    @given(data=st.data())
    def test_subset_materialize(self, base, data):
        payload = encode_measurements(base)
        view = SnapshotView(payload)
        wanted = data.draw(
            st.sets(st.sampled_from(sorted(base)), min_size=1, max_size=10)
        )
        assert view.materialize(wanted) == {
            domain: base[domain] for domain in wanted
        }

    def test_unknown_domain_raises_key_error(self, base):
        view = SnapshotView(encode_measurements(base))
        with pytest.raises(KeyError):
            view.materialize(["not-in-snapshot.example"])


class TestSignatureColumns:
    def test_embedded_matches_fallback(self, base):
        payload = encode_measurements(base)
        embedded = SnapshotView(payload)
        assert embedded._dom_sig is not None
        assert embedded._cert_sig is not None
        # Simulate a payload written before the signature columns existed:
        # the fallback must recompute identical values from the tables.
        legacy = SnapshotView(payload)
        legacy._dom_sig = None
        legacy._cert_sig = None
        assert legacy.signatures() == embedded.signatures()
        assert list(legacy.cert_sigs()) == list(embedded.cert_sigs())

    def test_cert_sigs_row_indexing(self, base):
        view = SnapshotView(encode_measurements(base))
        sigs = list(view.cert_sigs())
        certificates = view.certificates()
        assert len(sigs) == len(certificates)
        for row in (0, len(sigs) - 1):
            assert view.certificate(row) == certificates[row]
        with pytest.raises(IndexError):
            view.certificate(len(sigs))


class TestCorruption:
    def test_garbage_payload(self):
        with pytest.raises(CodecError):
            SnapshotView(b"this is not a snapshot payload")

    def test_signature_column_length_mismatch(self, base):
        payload = encode_measurements(base)
        view = SnapshotView(payload)
        view._dom_sig = view._dom_sig[:-1]
        with pytest.raises(CodecError):
            view.signatures()
        view = SnapshotView(payload)
        view._cert_sig = view._cert_sig[:-1]
        with pytest.raises(CodecError):
            view.cert_sigs()
