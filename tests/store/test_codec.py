"""Codec tests: exact round-trips, compactness, and corruption behavior."""

import pickle

import pytest

from repro.core.baselines import APPROACH_MX_ONLY
from repro.store import (
    CodecError,
    decode_inferences,
    decode_measurements,
    decode_result,
    encode_inferences,
    encode_measurements,
    encode_result,
)
from repro.world.entities import DatasetTag

SNAPSHOT = 4


@pytest.fixture(scope="module")
def measurements(ctx):
    return ctx.measurements(DatasetTag.COM, SNAPSHOT)


@pytest.fixture(scope="module")
def result(ctx):
    return ctx.priority_result(DatasetTag.COM, SNAPSHOT)


class TestMeasurementRoundTrip:
    def test_exact_equality(self, measurements):
        decoded = decode_measurements(encode_measurements(measurements))
        assert decoded == measurements

    def test_repr_identical(self, measurements):
        decoded = decode_measurements(encode_measurements(measurements))
        assert repr(decoded) == repr(measurements)

    def test_order_preserved(self, measurements):
        decoded = decode_measurements(encode_measurements(measurements))
        assert list(decoded) == list(measurements)

    def test_all_corpora(self, ctx):
        for dataset in DatasetTag:
            original = ctx.measurements(dataset, SNAPSHOT)
            assert decode_measurements(encode_measurements(original)) == original

    def test_empty_dict(self):
        assert decode_measurements(encode_measurements({})) == {}


class TestResultRoundTrip:
    def test_exact_equality(self, result):
        decoded = decode_result(encode_result(result))
        assert decoded.inferences == result.inferences
        assert decoded.mx_identities == result.mx_identities
        assert decoded.correction_stats == result.correction_stats

    def test_repr_identical(self, result):
        assert repr(decode_result(encode_result(result))) == repr(result)

    def test_baseline_inferences(self, ctx):
        baseline = ctx.baseline(APPROACH_MX_ONLY, DatasetTag.COM, SNAPSHOT)
        assert decode_inferences(encode_inferences(baseline)) == baseline


class TestCompactness:
    def test_smaller_than_naive_pickle(self, measurements):
        encoded = encode_measurements(measurements)
        pickled = pickle.dumps(measurements)
        assert len(encoded) < len(pickled) / 2

    def test_result_smaller_than_naive_pickle(self, result):
        assert len(encode_result(result)) < len(pickle.dumps(result)) / 2

    def test_deterministic_bytes(self, measurements):
        assert encode_measurements(measurements) == encode_measurements(
            measurements
        )


class TestCorruption:
    def test_garbage_raises_codec_error(self):
        with pytest.raises(CodecError):
            decode_measurements(b"this is not a payload")

    def test_empty_raises_codec_error(self):
        with pytest.raises(CodecError):
            decode_measurements(b"")

    def test_truncated_stream_raises_codec_error(self, measurements):
        encoded = encode_measurements(measurements)
        with pytest.raises(CodecError):
            decode_measurements(encoded[: len(encoded) // 2])

    def test_truncated_columns_raise_codec_error(self, measurements):
        # Re-compress a truncated uncompressed body: the zlib layer is
        # intact, so the bounds checks inside the reader must catch it.
        import zlib

        raw = zlib.decompress(encode_measurements(measurements))
        clipped = zlib.compress(raw[: len(raw) // 2], 1)
        with pytest.raises(CodecError):
            decode_measurements(clipped)

    def test_result_codec_rejects_measurement_garbage(self, measurements):
        with pytest.raises(CodecError):
            decode_result(b"\x00" * 64)
