"""Write-through integration: StudyContext over a persistent store.

The equivalence tests compare a warm context's loaded artifacts against
the cold context that populated the store.  (They deliberately do not
compare against a third independently built world: certificate serial
numbers come from a process-wide counter, so a second world built in the
same process differs in serials — across *processes* the build is fully
deterministic, which is the case the store actually serves.)
"""

import pytest

from repro.core.baselines import APPROACH_CERT, APPROACH_MX_ONLY
from repro.engine.stats import STATS, reset_stats
from repro.experiments.common import StudyContext
from repro.store import ArtifactStore
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import GOV_FIRST_SNAPSHOT

CONFIG = WorldConfig(seed=7, alexa_size=240, com_size=300, gov_size=60)
SNAPSHOT = 4


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("artifact-store")


@pytest.fixture(scope="module")
def cold(store_dir):
    """A cold context: computes everything and populates the store."""
    ctx = StudyContext.create(CONFIG, store=ArtifactStore(store_dir))
    ctx.measurements(DatasetTag.COM, SNAPSHOT)
    ctx.priority_result(DatasetTag.COM, SNAPSHOT)
    ctx.baseline(APPROACH_MX_ONLY, DatasetTag.COM, SNAPSHOT)
    return ctx


@pytest.fixture()
def warm(store_dir, cold):
    """A fresh context over the now-populated store."""
    return StudyContext.create(CONFIG, store=ArtifactStore(store_dir))


class TestWriteThrough:
    def test_cold_run_populates_store(self, cold, store_dir):
        store = ArtifactStore(store_dir)
        assert store.entry_count() >= 3  # measurements + result + baseline

    def test_warm_measurements_identical(self, cold, warm):
        reset_stats()
        loaded = warm.measurements(DatasetTag.COM, SNAPSHOT)
        original = cold.measurements(DatasetTag.COM, SNAPSHOT)
        assert loaded == original
        assert repr(loaded) == repr(original)
        assert STATS.counters["store.meas.hit"] == 1
        assert "context.gather" not in STATS.timers

    def test_warm_result_identical_and_short_circuits(self, cold, warm):
        reset_stats()
        loaded = warm.priority_result(DatasetTag.COM, SNAPSHOT)
        original = cold.priority_result(DatasetTag.COM, SNAPSHOT)
        assert loaded.inferences == original.inferences
        assert loaded.mx_identities == original.mx_identities
        assert loaded.correction_stats == original.correction_stats
        assert STATS.counters["store.result.hit"] == 1
        # The warm path must not have gathered or measured anything.
        assert STATS.counters.get("store.meas.hit", 0) == 0
        assert "context.gather" not in STATS.timers

    def test_warm_baseline_identical(self, cold, warm):
        reset_stats()
        loaded = warm.baseline(APPROACH_MX_ONLY, DatasetTag.COM, SNAPSHOT)
        assert loaded == cold.baseline(APPROACH_MX_ONLY, DatasetTag.COM, SNAPSHOT)
        assert STATS.counters["store.baseline.hit"] == 1

    def test_uncached_baseline_computes_from_loaded_measurements(
        self, cold, warm
    ):
        # CERT was never run cold, so the warm context must fall back to
        # the persisted measurements and still match a cold computation.
        loaded = warm.baseline(APPROACH_CERT, DatasetTag.COM, SNAPSHOT)
        original = cold.baseline(APPROACH_CERT, DatasetTag.COM, SNAPSHOT)
        assert loaded == original


class TestCoverage:
    def test_gov_before_first_snapshot_never_cached(self, store_dir):
        store = ArtifactStore(store_dir)
        before = store.entry_count()
        ctx = StudyContext.create(CONFIG, store=store)
        for index in range(GOV_FIRST_SNAPSHOT):
            assert ctx.measurements(DatasetTag.GOV, index) is None
            assert ctx.priority_result(DatasetTag.GOV, index) is None
        assert store.entry_count() == before

    def test_gov_covered_snapshot_round_trips(self, cold, store_dir):
        populate = StudyContext.create(CONFIG, store=ArtifactStore(store_dir))
        original = populate.priority_result(DatasetTag.GOV, GOV_FIRST_SNAPSHOT)
        fresh = StudyContext.create(CONFIG, store=ArtifactStore(store_dir))
        reset_stats()
        loaded = fresh.priority_result(DatasetTag.GOV, GOV_FIRST_SNAPSHOT)
        assert loaded.inferences == original.inferences
        assert STATS.counters["store.result.hit"] == 1


class TestDegradation:
    def test_corrupt_entries_recompute_and_rewrite(self, cold, store_dir):
        store = ArtifactStore(store_dir)
        count = store.entry_count()
        assert count > 0
        for path in store._entries():
            path.write_bytes(b"rotten")
        ctx = StudyContext.create(CONFIG, store=ArtifactStore(store_dir))
        with pytest.warns(UserWarning, match="bad magic"):
            result = ctx.priority_result(DatasetTag.COM, SNAPSHOT)
        # Serial numbers differ across same-process worlds, but the
        # attribution outcome is serial-independent and must match.
        original = cold.priority_result(DatasetTag.COM, SNAPSHOT)
        assert {
            domain: inference.attributions
            for domain, inference in result.inferences.items()
        } == {
            domain: inference.attributions
            for domain, inference in original.inferences.items()
        }
        # The recomputed artifacts were written back.
        fresh = ArtifactStore(store_dir)
        reset_stats()
        reloaded = StudyContext.create(CONFIG, store=fresh).priority_result(
            DatasetTag.COM, SNAPSHOT
        )
        assert STATS.counters["store.result.hit"] == 1
        assert reloaded.inferences == result.inferences

    def test_store_none_still_works(self):
        ctx = StudyContext.create(CONFIG, store=None)
        assert ctx.priority_result(DatasetTag.COM, SNAPSHOT) is not None
