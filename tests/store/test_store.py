"""ArtifactStore tests: entry IO, failure paths, GC, and env config."""

import os

import pytest

from repro.engine.stats import STATS, reset_stats
from repro.store import (
    CACHE_ENV,
    CACHE_MAX_ENV,
    DEFAULT_MAX_BYTES,
    SCHEMA_VERSION,
    ArtifactStore,
    cache_key,
)
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


class TestEntryIO:
    def test_write_read_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write(KEY_A, b"payload bytes")
        assert store.read(KEY_A) == b"payload bytes"

    def test_missing_entry_is_none(self, tmp_path):
        assert ArtifactStore(tmp_path).read(KEY_A) is None

    def test_entries_are_sharded_by_prefix(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write(KEY_A, b"x")
        assert (tmp_path / "aa" / f"{KEY_A}.rsto").is_file()

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write(KEY_A, b"x")
        store.write(KEY_B, b"y")
        assert store.entry_count() == 2
        assert store.clear() == 2
        assert store.entry_count() == 0
        assert store.read(KEY_A) is None

    def test_describe_mentions_root_and_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write(KEY_A, b"x")
        text = store.describe()
        assert str(tmp_path) in text and "1 entries" in text


class TestFailurePaths:
    def test_truncated_entry_warns_and_recovers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write(KEY_A, b"some payload that will be cut short")
        path = tmp_path / "aa" / f"{KEY_A}.rsto"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        reset_stats()
        with pytest.warns(UserWarning, match="truncated"):
            assert store.read(KEY_A) is None
        assert not path.exists()  # discarded so the rewrite starts clean
        assert STATS.counters["store.rejected"] == 1

    def test_garbage_entry_warns_and_recovers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = tmp_path / "aa" / f"{KEY_A}.rsto"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"complete nonsense")
        with pytest.warns(UserWarning, match="bad magic"):
            assert store.read(KEY_A) is None
        assert not path.exists()

    def test_wrong_schema_version_warns_and_recovers(self, tmp_path):
        import zlib

        store = ArtifactStore(tmp_path)
        payload = b"old-schema payload"
        stale = (
            b"RSTO"
            + (SCHEMA_VERSION + 1).to_bytes(2, "little")
            + zlib.crc32(payload).to_bytes(4, "little")
            + len(payload).to_bytes(8, "little")
            + payload
        )
        path = tmp_path / "aa" / f"{KEY_A}.rsto"
        path.parent.mkdir(parents=True)
        path.write_bytes(stale)
        with pytest.warns(UserWarning, match="schema"):
            assert store.read(KEY_A) is None

    def test_checksum_mismatch_warns_and_recovers(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write(KEY_A, b"payload whose bits will rot away")
        path = tmp_path / "aa" / f"{KEY_A}.rsto"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.warns(UserWarning, match="checksum"):
            assert store.read(KEY_A) is None

    def test_unwritable_root_disables_writes_once(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_bytes(b"")
        store = ArtifactStore(blocker)
        with pytest.warns(UserWarning, match="unwritable"):
            store.write(KEY_A, b"x")
        # Degraded, not broken: later writes are silent no-ops and reads
        # warn-and-miss through the unreadable root.
        store.write(KEY_B, b"y")
        with pytest.warns(UserWarning, match="unreadable"):
            assert store.read(KEY_A) is None

    def test_undecodable_typed_entry_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = WorldConfig()
        key = cache_key(config, DatasetTag.COM, 0, "measurements")
        store.write(key, b"valid envelope, garbage payload")
        with pytest.warns(UserWarning, match="undecodable"):
            assert store.load_measurements(config, DatasetTag.COM, 0) is None
        assert store.read(key) is None  # discarded for the rewrite


class TestGC:
    def _write_aged(self, store, key, payload, age):
        store.write(key, payload)
        path = store._path(key)
        stat = path.stat()
        os.utime(path, (stat.st_atime - age, stat.st_mtime - age))

    def test_lru_eviction_order(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=None)
        self._write_aged(store, KEY_A, b"a" * 100, age=300)
        self._write_aged(store, KEY_B, b"b" * 100, age=200)
        self._write_aged(store, KEY_C, b"c" * 100, age=100)
        store.max_bytes = 2 * (100 + 18)  # room for two wrapped entries
        assert store.gc() == 1
        assert store.read(KEY_A) is None  # oldest went first
        assert store.read(KEY_B) is not None
        assert store.read(KEY_C) is not None

    def test_read_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=None)
        self._write_aged(store, KEY_A, b"a" * 100, age=300)
        self._write_aged(store, KEY_B, b"b" * 100, age=200)
        assert store.read(KEY_A) is not None  # touch: A becomes newest
        store.max_bytes = 100 + 18
        store.gc()
        assert store.read(KEY_B) is None
        assert store.read(KEY_A) is not None

    def test_writes_trigger_gc_automatically(self, tmp_path):
        reset_stats()
        store = ArtifactStore(tmp_path, max_bytes=150)
        for index in range(5):
            store.write(f"{index:02d}" + "0" * 62, bytes(100))
        assert store.total_bytes() <= 150
        assert STATS.counters["store.evicted"] > 0

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=None)
        for index in range(5):
            store.write(f"{index:02d}" + "0" * 62, bytes(100))
        assert store.gc() == 0
        assert store.entry_count() == 5


class TestGCConcurrency:
    """Two resumed runs sharing a cache dir must not corrupt GC."""

    def test_advisory_lock_makes_second_collector_skip(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        store = ArtifactStore(tmp_path, max_bytes=None)
        store.write(KEY_A, b"a" * 100)
        store.max_bytes = 50  # over budget, but written before the cap
        handle = open(tmp_path / ".gc.lock", "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            reset_stats()
            assert store.gc() == 0  # another "run" is collecting
            assert STATS.counters["store.gc_skipped"] == 1
            assert store.read(KEY_A) is not None
        finally:
            handle.close()
        assert store.gc() == 1  # lock released: eviction proceeds

    def test_gc_tolerates_entries_vanishing_mid_sweep(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path, max_bytes=None)
        store.write(KEY_A, b"a" * 100)
        store.write(KEY_B, b"b" * 100)
        store.max_bytes = 150
        ghost = tmp_path / "zz" / ("zz" + "0" * 62 + ".rsto")
        real_entries = store._entries()
        monkeypatch.setattr(
            store, "_entries", lambda: real_entries + [ghost]
        )
        assert store.gc() == 1  # ghost skipped, oldest real entry evicted

    def test_gc_sweeps_stale_tmp_files(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=10_000)
        store.write(KEY_A, b"payload")
        stale = tmp_path / "aa" / ".tmp-dead"
        stale.write_bytes(b"orphaned by a killed writer")
        os.utime(stale, (1.0, 1.0))
        fresh = tmp_path / "aa" / ".tmp-live"
        fresh.write_bytes(b"still being written")
        store.gc()
        assert not stale.exists()
        assert fresh.exists()  # young tmp files belong to live writers


class TestCacheKey:
    CONFIG = WorldConfig()

    def test_stable(self):
        assert cache_key(self.CONFIG, DatasetTag.COM, 3, "measurements") == (
            cache_key(self.CONFIG, DatasetTag.COM, 3, "measurements")
        )

    def test_distinct_per_dimension(self):
        base = cache_key(self.CONFIG, DatasetTag.COM, 3, "measurements")
        assert base != cache_key(self.CONFIG, DatasetTag.ALEXA, 3, "measurements")
        assert base != cache_key(self.CONFIG, DatasetTag.COM, 4, "measurements")
        assert base != cache_key(self.CONFIG, DatasetTag.COM, 3, "result:priority")
        assert base != cache_key(
            WorldConfig(seed=8), DatasetTag.COM, 3, "measurements"
        )

    def test_shard_keys_distinct_per_index_and_count(self):
        from repro.store.artifacts import shard_kind

        base = cache_key(self.CONFIG, DatasetTag.COM, 3, shard_kind(0, 4))
        assert base != cache_key(self.CONFIG, DatasetTag.COM, 3, shard_kind(1, 4))
        # The shard count is part of the kind: a resume with a different
        # --jobs must never be served another sharding's checkpoints.
        assert base != cache_key(self.CONFIG, DatasetTag.COM, 3, shard_kind(0, 2))
        assert base != cache_key(self.CONFIG, DatasetTag.COM, 3, "measurements")


class TestFromEnv:
    def test_unset_means_no_store(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert ArtifactStore.from_env() is None

    @pytest.mark.parametrize("value", ["0", "off", "none", "NO", " Off "])
    def test_off_values_mean_no_store(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_ENV, value)
        assert ArtifactStore.from_env() is None

    def test_directory_and_default_cap(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        monkeypatch.delenv(CACHE_MAX_ENV, raising=False)
        store = ArtifactStore.from_env()
        assert store.root == tmp_path
        assert store.max_bytes == DEFAULT_MAX_BYTES

    def test_max_mb_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        monkeypatch.setenv(CACHE_MAX_ENV, "64")
        assert ArtifactStore.from_env().max_bytes == 64 * 1024 * 1024

    def test_max_mb_zero_means_unbounded(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        monkeypatch.setenv(CACHE_MAX_ENV, "0")
        assert ArtifactStore.from_env().max_bytes is None

    def test_max_mb_garbage_warns_and_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        monkeypatch.setenv(CACHE_MAX_ENV, "lots")
        with pytest.warns(UserWarning, match="unparseable"):
            store = ArtifactStore.from_env()
        assert store.max_bytes == DEFAULT_MAX_BYTES
