"""Unit tests for step 4 — misidentification detection and correction."""

import pytest

from repro.core.companies import CompanyMap
from repro.core.misident import MisidentificationChecker, PopularityCounters
from repro.core.types import EvidenceSource, IPIdentity, MXIdentity
from repro.measure.caida import ASInfo
from repro.measure.dataset import IPObservation, MXData
from repro.world.catalog import CATALOG


@pytest.fixture
def checker():
    return MisidentificationChecker(
        company_map=CompanyMap.from_specs(CATALOG), confidence_threshold=3
    )


def mxdata(name, address, asn, as_name="AS"):
    ip = IPObservation(
        address=address,
        as_info=ASInfo(asn, as_name, "US") if asn else None,
        scan=None,
    )
    return MXData(name=name, preference=10, ips=(ip,))


def identity(mx_name, provider_id, source, ips=()):
    return MXIdentity(
        mx_name=mx_name, provider_id=provider_id, source=source,
        ip_identities=tuple(ips),
    )


class TestCandidateFilter:
    def test_popular_identity_not_examined(self, checker):
        counters = PopularityCounters()
        counters.num_ip["11.0.0.1"] = 500
        ident = identity(
            "aspmx.l.google.com", "google.com", EvidenceSource.CERT,
            [IPIdentity(address="11.0.0.1", cert_id="google.com")],
        )
        result = checker.check(
            "customer.com", mxdata("aspmx.l.google.com", "11.0.0.1", 15169),
            ident, counters,
        )
        assert not result.examined and not result.corrected
        assert checker.stats.candidates_examined == 0

    def test_small_provider_identity_not_examined(self, checker):
        counters = PopularityCounters()  # zero counts: unpopular
        ident = identity(
            "mx.tinyhost.net", "tinyhost.net", EvidenceSource.BANNER,
            [IPIdentity(address="11.0.0.1", banner_id="tinyhost.net")],
        )
        result = checker.check(
            "customer.com", mxdata("mx.tinyhost.net", "11.0.0.1", 64512),
            ident, counters,
        )
        assert not result.examined

    def test_mx_source_never_examined(self, checker):
        ident = identity("mx.customer.com", "customer.com", EvidenceSource.MX)
        result = checker.check(
            "customer.com", mxdata("mx.customer.com", "11.0.0.1", 64512),
            ident, PopularityCounters(),
        )
        assert result is ident

    def test_confidence_uses_cert_counter(self, checker):
        counters = PopularityCounters()
        counters.num_cert["fp1"] = 100
        ident = identity(
            "mx.x.com", "google.com", EvidenceSource.CERT,
            [IPIdentity(address="11.0.0.1", cert_id="google.com", cert_fingerprint="fp1")],
        )
        assert counters.confidence(ident) == 100


class TestVPSHeuristic:
    def test_godaddy_vps_corrected_to_self(self, checker):
        counters = PopularityCounters()
        counters.num_ip["11.0.0.1"] = 1
        ident = identity(
            "mx.myvps.com", "secureserver.net", EvidenceSource.CERT,
            [IPIdentity(
                address="11.0.0.1",
                cert_id="secureserver.net",
                cert_names=("s1-2-3.secureserver.net",),
            )],
        )
        result = checker.check(
            "myvps.com", mxdata("mx.myvps.com", "11.0.0.1", 26496),
            ident, counters,
        )
        assert result.corrected
        assert result.provider_id == "myvps.com"
        assert "VPS" in result.correction_reason

    def test_godaddy_dedicated_store_stands(self, checker):
        counters = PopularityCounters()
        counters.num_ip["11.0.0.1"] = 1
        ident = identity(
            "mailstore1.secureserver.net", "secureserver.net", EvidenceSource.CERT,
            [IPIdentity(
                address="11.0.0.1",
                cert_id="secureserver.net",
                cert_names=("mailstore1.secureserver.net",),
            )],
        )
        result = checker.check(
            "customer.com", mxdata("mailstore1.secureserver.net", "11.0.0.1", 26496),
            ident, counters,
        )
        assert not result.corrected
        assert result.provider_id == "secureserver.net"


class TestASHeuristic:
    def test_spoofed_google_banner_corrected(self, checker):
        counters = PopularityCounters()
        counters.num_ip["11.0.0.1"] = 1
        ident = identity(
            "mx.liar.com", "google.com", EvidenceSource.BANNER,
            [IPIdentity(address="11.0.0.1", banner_id="google.com",
                        banner_fqdn="mx.google.com")],
        )
        result = checker.check(
            "liar.com", mxdata("mx.liar.com", "11.0.0.1", 64512, "Random ISP"),
            ident, counters,
        )
        assert result.corrected
        assert result.provider_id == "liar.com"
        assert "claims google" in result.correction_reason

    def test_genuine_google_inside_as_stands(self, checker):
        counters = PopularityCounters()
        counters.num_ip["11.0.0.1"] = 1
        ident = identity(
            "mailhost.customer.com", "google.com", EvidenceSource.BANNER,
            [IPIdentity(address="11.0.0.1", banner_id="google.com",
                        banner_fqdn="mx.google.com")],
        )
        result = checker.check(
            "customer.com", mxdata("mailhost.customer.com", "11.0.0.1", 15169),
            ident, counters,
        )
        assert not result.corrected
        assert result.examined  # it was a candidate, but the AS matched


class TestCustomerCertHeuristic:
    def test_customer_cert_on_provider_infra_corrected(self, checker):
        """The utexas.edu situation: cert = customer, banner + AS = Ironport."""
        counters = PopularityCounters()
        counters.num_ip["11.0.0.1"] = 1
        ident = identity(
            "mx1.utexas.iphmx.com", "utexas.edu", EvidenceSource.CERT,
            [IPIdentity(
                address="11.0.0.1",
                cert_id="utexas.edu",
                banner_id="iphmx.com",
                cert_names=("inbound.mail.utexas.edu",),
            )],
        )
        result = checker.check(
            "utexas.edu", mxdata("mx1.utexas.iphmx.com", "11.0.0.1", 109, "Cisco"),
            ident, counters,
        )
        assert result.corrected
        assert result.provider_id == "iphmx.com"

    def test_true_self_hosting_not_corrected(self, checker):
        """cert = own domain and banner = own domain: genuine self-hosting."""
        counters = PopularityCounters()
        ident = identity(
            "mx.selfhosted.com", "selfhosted.com", EvidenceSource.CERT,
            [IPIdentity(
                address="11.0.0.1",
                cert_id="selfhosted.com",
                banner_id="selfhosted.com",
            )],
        )
        result = checker.check(
            "selfhosted.com", mxdata("mx.selfhosted.com", "11.0.0.1", 64512),
            ident, counters,
        )
        assert not result.corrected
        assert result.provider_id == "selfhosted.com"

    def test_customer_cert_without_as_corroboration_stands(self, checker):
        counters = PopularityCounters()
        ident = identity(
            "mx.someone.com", "someone.com", EvidenceSource.CERT,
            [IPIdentity(
                address="11.0.0.1", cert_id="someone.com", banner_id="iphmx.com",
            )],
        )
        result = checker.check(
            "someone.com", mxdata("mx.someone.com", "11.0.0.1", 64512),
            ident, counters,
        )
        assert not result.corrected


class TestCounters:
    def test_observe_domain_counts_primary_only(self):
        from datetime import date

        from repro.measure.censys import Port25State, PortScanRecord
        from repro.measure.dataset import DomainMeasurement
        from repro.tls.ca import CertificateAuthority

        ca = CertificateAuthority("Simulated CA")
        cert = ca.issue("mx.shared.com")
        scan = PortScanRecord(
            address="11.0.0.1", scanned_on=date(2021, 6, 8),
            state=Port25State.OPEN, certificate=cert,
        )
        primary_ip = IPObservation(address="11.0.0.1", as_info=None, scan=scan)
        backup_ip = IPObservation(address="11.0.0.2", as_info=None, scan=None)
        measurement = DomainMeasurement(
            domain="x.com",
            measured_on=date(2021, 6, 8),
            mx_set=(
                MXData(name="mx.shared.com", preference=10, ips=(primary_ip,)),
                MXData(name="backup.shared.com", preference=20, ips=(backup_ip,)),
            ),
        )
        counters = PopularityCounters()
        counters.observe_domain(measurement)
        counters.observe_domain(measurement)
        assert counters.num_ip["11.0.0.1"] == 2
        assert counters.num_ip["11.0.0.2"] == 0  # backup MX not counted
        assert counters.num_cert[cert.fingerprint()] == 2
