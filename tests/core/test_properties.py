"""Property-based tests for core-methodology invariants."""

import string
from datetime import date

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certgroup import CertificatePreprocessor
from repro.core.domainident import DomainIdentifier
from repro.core.types import DomainStatus, EvidenceSource, MXIdentity
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.tls.cert import Certificate
from repro.world.evolve import apportion

DAY = date(2021, 6, 8)

label = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)
hostname = st.lists(label, min_size=2, max_size=4).map(".".join)

certificates = st.builds(
    lambda cn, sans, serial: Certificate(
        subject_cn=cn, sans=tuple(sans), serial=serial
    ),
    cn=hostname,
    sans=st.lists(hostname, max_size=3),
    serial=st.integers(min_value=1, max_value=10_000),
)


class TestCertGroupProperties:
    @given(st.lists(certificates, max_size=25))
    @settings(max_examples=60)
    def test_groups_partition_certs(self, certs):
        groups = CertificatePreprocessor().build(certs)
        fingerprints = {cert.fingerprint() for cert in certs}
        grouped = set()
        for group in groups.groups:
            assert not (group.fingerprints & grouped), "groups must be disjoint"
            grouped |= group.fingerprints
        assert grouped == fingerprints

    @given(st.lists(certificates, max_size=25))
    @settings(max_examples=60)
    def test_shared_fqdn_implies_same_group(self, certs):
        groups = CertificatePreprocessor().build(certs)
        for left in certs:
            for right in certs:
                if set(left.names()) & set(right.names()):
                    assert groups.group_of(left) is groups.group_of(right)

    @given(st.lists(certificates, min_size=1, max_size=25))
    @settings(max_examples=60)
    def test_every_cert_has_representative(self, certs):
        groups = CertificatePreprocessor().build(certs)
        for cert in certs:
            assert groups.representative_for(cert)


class TestApportionProperties:
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.dictionaries(
            label,
            st.floats(min_value=0, max_value=0.2, allow_nan=False),
            min_size=1, max_size=8,
        ).filter(lambda shares: sum(shares.values()) <= 1.0),
    )
    def test_total_conserved_and_nonnegative(self, total, shares):
        counts = apportion(total, shares)
        assert sum(counts.values()) == total
        assert all(count >= 0 for count in counts.values())

    @given(
        st.integers(min_value=1, max_value=5_000),
        st.dictionaries(
            label,
            st.floats(min_value=0, max_value=0.15, allow_nan=False),
            min_size=1, max_size=6,
        ),
    )
    def test_counts_within_one_of_quota(self, total, shares):
        counts = apportion(total, shares)
        for name, share in shares.items():
            assert abs(counts[name] - total * share) <= 1.0


@st.composite
def tied_mx_measurements(draw):
    n_mx = draw(st.integers(min_value=1, max_value=5))
    mx_set = []
    identities = {}
    for index in range(n_mx):
        name = f"mx{index}.{draw(label)}.com"
        ip = IPObservation(address=f"11.0.0.{index + 1}", as_info=None, scan=None)
        mx_set.append(MXData(name=name, preference=10, ips=(ip,)))
        identities[name] = MXIdentity(
            mx_name=name,
            provider_id=draw(st.sampled_from(["a.com", "b.com", "c.com"])),
            source=EvidenceSource.MX,
        )
    measurement = DomainMeasurement(
        domain="domain.com", measured_on=DAY, mx_set=tuple(mx_set)
    )
    return measurement, identities


class TestCreditSplittingProperties:
    @given(tied_mx_measurements())
    @settings(max_examples=100)
    def test_weights_always_sum_to_one(self, case):
        measurement, identities = case
        inference = DomainIdentifier().identify(measurement, identities)
        assert inference.status is DomainStatus.INFERRED
        assert abs(sum(inference.attributions.values()) - 1.0) < 1e-9

    @given(tied_mx_measurements())
    @settings(max_examples=100)
    def test_equal_split_across_distinct_ids(self, case):
        measurement, identities = case
        inference = DomainIdentifier().identify(measurement, identities)
        distinct = {identity.provider_id for identity in identities.values()}
        assert set(inference.attributions) == distinct
        expected = 1.0 / len(distinct)
        for weight in inference.attributions.values():
            assert abs(weight - expected) < 1e-9
