"""Unit tests for the provider-ID → company map."""

import pytest

from repro.core.companies import NONE_LABEL, SELF_LABEL, CompanyMap
from repro.world.catalog import CATALOG
from repro.world.entities import ASNSpec, CompanyKind, CompanySpec


@pytest.fixture(scope="module")
def company_map():
    return CompanyMap.from_specs(CATALOG)


class TestResolution:
    def test_known_provider_id(self, company_map):
        assert company_map.resolve("netflix.com", "google.com") == "google"
        assert company_map.resolve("x.com", "googlemail.com") == "google"

    def test_all_microsoft_ids_merge(self, company_map):
        for provider_id in ("outlook.com", "office365.us", "hotmail.com", "outlook.de"):
            assert company_map.resolve("x.com", provider_id) == "microsoft"

    def test_self_detection(self, company_map):
        assert company_map.resolve("example.com", "example.com") == SELF_LABEL

    def test_self_detection_uses_registered_domain(self, company_map):
        # a subdomain-owning domain whose provider ID is its registered domain
        assert company_map.resolve("mail.example.co.uk", "example.co.uk") == SELF_LABEL

    def test_unknown_id_passes_through(self, company_map):
        assert company_map.resolve("x.com", "tinyhost.net") == "tinyhost.net"

    def test_own_domain_beats_company_match(self, company_map):
        # google.com's own mail is SELF, not "google the provider".
        assert company_map.resolve("google.com", "google.com") == SELF_LABEL

    def test_resolve_attributions_merges(self, company_map):
        resolved = company_map.resolve_attributions(
            "x.com", {"outlook.com": 0.5, "office365.us": 0.25, "google.com": 0.25}
        )
        assert resolved == {"microsoft": 0.75, "google": 0.25}


class TestMetadata:
    def test_display_names(self, company_map):
        assert company_map.display("google") == "Google"
        assert company_map.display("unknown-label") == "unknown-label"

    def test_kinds(self, company_map):
        assert company_map.kind("proofpoint") is CompanyKind.SECURITY
        assert company_map.kind("godaddy") is CompanyKind.HOSTING
        assert company_map.kind("nope") is None

    def test_countries(self, company_map):
        assert company_map.country("yandex") == "RU"
        assert company_map.country("tencent") == "CN"

    def test_company_asns(self, company_map):
        assert 15169 in company_map.company_asns("google")
        assert company_map.company_asns("missing") == frozenset()

    def test_large_provider_ids(self, company_map):
        assert company_map.is_large_provider_id("google.com")
        assert company_map.is_large_provider_id("secureserver.net")
        assert not company_map.is_large_provider_id("tinyhost.net")

    def test_vps_patterns_registered(self, company_map):
        assert "godaddy" in company_map.vps_patterns
        assert company_map.vps_patterns["godaddy"].match("s1-2-3.secureserver.net")
        assert "godaddy" in company_map.dedicated_patterns


class TestConstruction:
    def test_other_kind_not_large(self):
        spec = CompanySpec(
            slug="tiny",
            display_name="Tiny",
            kind=CompanyKind.OTHER,
            country="US",
            asns=(ASNSpec(64512, "Tiny"),),
            provider_ids=("tiny.net",),
        )
        company_map = CompanyMap.from_specs([spec])
        assert company_map.resolve("x.com", "tiny.net") == "tiny"
        assert not company_map.is_large_provider_id("tiny.net")

    def test_first_company_claims_shared_id(self):
        a = CompanySpec(
            slug="first", display_name="First", kind=CompanyKind.MAILBOX,
            country="US", asns=(ASNSpec(64512, "A"),), provider_ids=("shared.net",),
        )
        b = CompanySpec(
            slug="second", display_name="Second", kind=CompanyKind.MAILBOX,
            country="US", asns=(ASNSpec(64513, "B"),), provider_ids=("shared.net",),
        )
        company_map = CompanyMap.from_specs([a, b])
        assert company_map.resolve("x.com", "shared.net") == "first"

    def test_labels(self):
        assert SELF_LABEL == "SELF"
        assert NONE_LABEL == "NONE"
