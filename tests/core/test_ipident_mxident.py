"""Unit tests for steps 2 and 3 — IP and MX identification."""

from datetime import date

import pytest

from repro.core.certgroup import CertificatePreprocessor
from repro.core.ipident import IPIdentifier
from repro.core.mxident import MXIdentifier, mx_fallback_id
from repro.core.types import EvidenceSource, IPIdentity
from repro.dnscore.psl import default_psl
from repro.measure.caida import ASInfo
from repro.measure.censys import Port25State, PortScanRecord
from repro.measure.dataset import IPObservation, MXData
from repro.tls.ca import CertificateAuthority, TrustStore, self_signed

CA = CertificateAuthority("Simulated CA")
DAY = date(2021, 6, 8)


def observation(address="11.0.0.1", banner=None, ehlo=None, cert=None, state=Port25State.OPEN):
    scan = PortScanRecord(
        address=address,
        scanned_on=DAY,
        state=state,
        banner=banner,
        ehlo=ehlo,
        starttls=cert is not None,
        certificate=cert,
    )
    return IPObservation(address=address, as_info=ASInfo(1, "Test", "US"), scan=scan)


def identifier(certs=(), require_valid_cert=True):
    groups = CertificatePreprocessor().build(list(certs))
    return IPIdentifier(
        groups=groups, trust_store=TrustStore(), require_valid_cert=require_valid_cert
    )


class TestIPIdentifier:
    def test_cert_and_banner_ids(self):
        cert = CA.issue("mx1.provider.com", sans=["mx2.provider.com"])
        ident = identifier([cert]).identify(
            observation(banner="mx1.provider.com ESMTP", ehlo="mx1.provider.com", cert=cert)
        )
        assert ident.cert_id == "provider.com"
        assert ident.banner_id == "provider.com"
        assert ident.banner_fqdn == "mx1.provider.com"
        assert "mx1.provider.com" in ident.cert_names

    def test_self_signed_cert_rejected(self):
        cert = self_signed("mx.myvps.com")
        ident = identifier([cert]).identify(observation(banner="x", ehlo="y", cert=cert))
        assert ident.cert_id is None
        assert ident.cert_fingerprint == cert.fingerprint()

    def test_self_signed_accepted_when_relaxed(self):
        cert = self_signed("mx.myvps.com")
        ident = identifier([cert], require_valid_cert=False).identify(
            observation(cert=cert)
        )
        assert ident.cert_id == "myvps.com"

    def test_banner_requires_agreement(self):
        ident = identifier().identify(
            observation(banner="mx.a-corp.com ESMTP", ehlo="mx.b-corp.com")
        )
        assert ident.banner_id is None

    def test_banner_one_sided(self):
        ident = identifier().identify(
            observation(banner="IP-1-2-3-4 ESMTP", ehlo="mx.provider.com")
        )
        assert ident.banner_id == "provider.com"

    def test_no_smtp_yields_empty_identity(self):
        ident = identifier().identify(observation(state=Port25State.CLOSED))
        assert ident.cert_id is None and ident.banner_id is None

    def test_no_scan_data(self):
        ip = IPObservation(address="11.0.0.1", as_info=None, scan=None)
        ident = identifier().identify(ip)
        assert ident.best_id is None

    def test_localhost_banner_unusable(self):
        ident = identifier().identify(
            observation(banner="localhost.localdomain ESMTP Postfix", ehlo="localhost")
        )
        assert ident.banner_id is None


def mxdata(name="mx.customer.com", n_ips=2):
    ips = tuple(
        IPObservation(address=f"11.0.0.{i+1}", as_info=None, scan=None)
        for i in range(n_ips)
    )
    return MXData(name=name, preference=10, ips=ips)


def ip_identity(address, cert_id=None, banner_id=None):
    return IPIdentity(address=address, cert_id=cert_id, banner_id=banner_id)


class TestMXIdentifier:
    def test_cert_agreement_wins(self):
        identity = MXIdentifier().identify(
            mxdata(),
            [
                ip_identity("11.0.0.1", cert_id="provider.com", banner_id="other.com"),
                ip_identity("11.0.0.2", cert_id="provider.com", banner_id="mismatch.com"),
            ],
        )
        assert identity.provider_id == "provider.com"
        assert identity.source is EvidenceSource.CERT

    def test_cert_disagreement_falls_to_banner(self):
        identity = MXIdentifier().identify(
            mxdata(),
            [
                ip_identity("11.0.0.1", cert_id="a.com", banner_id="shared.com"),
                ip_identity("11.0.0.2", cert_id="b.com", banner_id="shared.com"),
            ],
        )
        assert identity.provider_id == "shared.com"
        assert identity.source is EvidenceSource.BANNER

    def test_partial_cert_coverage_falls_to_banner(self):
        identity = MXIdentifier().identify(
            mxdata(),
            [
                ip_identity("11.0.0.1", cert_id="a.com", banner_id="shared.com"),
                ip_identity("11.0.0.2", cert_id=None, banner_id="shared.com"),
            ],
        )
        assert identity.source is EvidenceSource.BANNER

    def test_all_sources_fail_falls_to_mx(self):
        identity = MXIdentifier().identify(
            mxdata("mx.customer.com"),
            [ip_identity("11.0.0.1"), ip_identity("11.0.0.2")],
        )
        assert identity.provider_id == "customer.com"
        assert identity.source is EvidenceSource.MX

    def test_no_ips_falls_to_mx(self):
        identity = MXIdentifier().identify(mxdata(n_ips=0), [])
        assert identity.source is EvidenceSource.MX

    def test_certs_disabled(self):
        identity = MXIdentifier(use_certs=False).identify(
            mxdata(),
            [
                ip_identity("11.0.0.1", cert_id="cert.com", banner_id="banner.com"),
                ip_identity("11.0.0.2", cert_id="cert.com", banner_id="banner.com"),
            ],
        )
        assert identity.provider_id == "banner.com"

    def test_banners_disabled(self):
        identity = MXIdentifier(use_banners=False).identify(
            mxdata("mx.customer.com"),
            [ip_identity("11.0.0.1", banner_id="banner.com")],
        )
        assert identity.provider_id == "customer.com"


class TestMXFallback:
    def test_registered_domain(self):
        assert mx_fallback_id("aspmx.l.google.com", default_psl()) == "google.com"

    def test_public_suffix_mx_uses_name(self):
        assert mx_fallback_id("co.uk", default_psl()) == "co.uk"
