"""Unit tests for the inference data model."""

import pytest

from repro.core.types import (
    DomainInference,
    DomainStatus,
    EvidenceSource,
    IPIdentity,
    MXIdentity,
)


class TestEvidenceSource:
    def test_priority_ordering(self):
        assert EvidenceSource.CERT.priority < EvidenceSource.BANNER.priority
        assert EvidenceSource.BANNER.priority < EvidenceSource.MX.priority


class TestIPIdentity:
    def test_best_id_prefers_cert(self):
        identity = IPIdentity(address="1.1.1.1", cert_id="a.com", banner_id="b.com")
        assert identity.best_id == "a.com"

    def test_best_id_falls_to_banner(self):
        identity = IPIdentity(address="1.1.1.1", banner_id="b.com")
        assert identity.best_id == "b.com"

    def test_best_id_none(self):
        assert IPIdentity(address="1.1.1.1").best_id is None


class TestMXIdentity:
    def test_with_correction(self):
        identity = MXIdentity(
            mx_name="mx.x.com", provider_id="wrong.com", source=EvidenceSource.BANNER
        )
        corrected = identity.with_correction("right.com", "AS mismatch")
        assert corrected.provider_id == "right.com"
        assert corrected.corrected and corrected.examined
        assert corrected.correction_reason == "AS mismatch"
        assert corrected.source is EvidenceSource.BANNER  # evidence preserved
        assert not identity.corrected  # original untouched

    def test_as_examined_idempotent(self):
        identity = MXIdentity(
            mx_name="mx.x.com", provider_id="p.com", source=EvidenceSource.CERT
        )
        examined = identity.as_examined()
        assert examined.examined and not examined.corrected
        assert examined.as_examined() is examined


class TestDomainInference:
    def test_sole_provider(self):
        inference = DomainInference(
            domain="x.com", status=DomainStatus.INFERRED,
            attributions={"p.com": 1.0},
        )
        assert inference.sole_provider_id == "p.com"

    def test_split_has_no_sole_provider(self):
        inference = DomainInference(
            domain="x.com", status=DomainStatus.INFERRED,
            attributions={"a.com": 0.5, "b.com": 0.5},
        )
        assert inference.sole_provider_id is None

    def test_examined_and_corrected_aggregate(self):
        clean = MXIdentity(
            mx_name="a", provider_id="p.com", source=EvidenceSource.MX
        )
        fixed = clean.with_correction("q.com", "reason")
        inference = DomainInference(
            domain="x.com", status=DomainStatus.INFERRED,
            attributions={"q.com": 1.0}, mx_identities=(clean, fixed),
        )
        assert inference.examined and inference.corrected

    def test_empty_inference(self):
        inference = DomainInference(domain="x.com", status=DomainStatus.NO_MX)
        assert not inference.examined and not inference.corrected
        assert inference.sole_provider_id is None
