"""Unit tests for inference-result serialization."""

import json

import pytest

from repro.core.serialize import (
    SerializeError,
    inference_from_dict,
    inference_to_dict,
    results_from_dicts,
    results_to_dicts,
)
from repro.core.types import DomainInference, DomainStatus, EvidenceSource, MXIdentity


def sample_inference():
    identity = MXIdentity(
        mx_name="mx.myvps.com",
        provider_id="myvps.com",
        source=EvidenceSource.CERT,
        corrected=True,
        correction_reason="VPS hostname pattern of godaddy",
        examined=True,
    )
    return DomainInference(
        domain="myvps.com",
        status=DomainStatus.INFERRED,
        attributions={"myvps.com": 1.0},
        mx_identities=(identity,),
    )


class TestRoundTrip:
    def test_inference_round_trip(self):
        original = sample_inference()
        clone = inference_from_dict(inference_to_dict(original))
        assert clone.domain == original.domain
        assert clone.status == original.status
        assert clone.attributions == original.attributions
        assert clone.mx_identities[0].corrected
        assert clone.mx_identities[0].correction_reason == (
            original.mx_identities[0].correction_reason
        )

    def test_status_only_inference(self):
        original = DomainInference(domain="dead.com", status=DomainStatus.NO_SMTP)
        payload = inference_to_dict(original)
        assert "attributions" not in payload
        clone = inference_from_dict(payload)
        assert clone.status is DomainStatus.NO_SMTP

    def test_json_compatible(self):
        payload = inference_to_dict(sample_inference())
        assert json.loads(json.dumps(payload)) == payload

    def test_results_round_trip_sorted(self):
        inferences = {
            "b.com": DomainInference(domain="b.com", status=DomainStatus.NO_MX),
            "a.com": sample_inference(),
        }
        # rename to match keys
        inferences["a.com"] = DomainInference(
            domain="a.com", status=DomainStatus.INFERRED, attributions={"x.com": 1.0}
        )
        payloads = results_to_dicts(inferences)
        assert [payload["domain"] for payload in payloads] == ["a.com", "b.com"]
        assert set(results_from_dicts(payloads)) == {"a.com", "b.com"}

    @pytest.mark.parametrize(
        "bad",
        [
            {"domain": "x.com"},
            {"domain": "x.com", "status": "weird"},
            {"domain": "x.com", "status": "inferred", "mx": [{"mx": "m"}]},
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SerializeError):
            inference_from_dict(bad)


class TestPipelineRoundTrip:
    def test_full_run_round_trips(self, ctx, last_snapshot):
        from repro.world.entities import DatasetTag

        inferences = ctx.priority(DatasetTag.GOV, last_snapshot)
        payloads = results_to_dicts(inferences)
        reloaded = results_from_dicts(payloads)
        for domain, inference in inferences.items():
            assert reloaded[domain].attributions == inference.attributions
            assert reloaded[domain].status == inference.status
            assert reloaded[domain].corrected == inference.corrected
