"""Unit tests for the MX-only / cert-based / banner-based baselines."""

from datetime import date

import pytest

from repro.core.baselines import (
    MXOnlyApproach,
    SingleSourceApproach,
    banner_based,
    cert_based,
)
from repro.core.types import DomainStatus, EvidenceSource
from repro.measure.caida import ASInfo
from repro.measure.censys import Port25State, PortScanRecord
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.tls.ca import CertificateAuthority, TrustStore

DAY = date(2021, 6, 8)
CA = CertificateAuthority("Simulated CA")


def scanned_ip(address, banner=None, ehlo=None, cert=None):
    record = PortScanRecord(
        address=address, scanned_on=DAY, state=Port25State.OPEN,
        banner=banner, ehlo=ehlo, starttls=cert is not None, certificate=cert,
    )
    return IPObservation(address=address, as_info=ASInfo(1, "X", "US"), scan=record)


@pytest.fixture(scope="module")
def measurements():
    cert = CA.issue("mx.provider.com")
    hidden = DomainMeasurement(
        domain="hidden.com",
        measured_on=DAY,
        mx_set=(
            MXData(
                "mailhost.hidden.com", 10,
                (scanned_ip(
                    "11.0.0.1",
                    banner="mx.provider.com ESMTP", ehlo="mx.provider.com", cert=cert,
                ),),
            ),
        ),
    )
    explicit = DomainMeasurement(
        domain="explicit.com",
        measured_on=DAY,
        mx_set=(MXData("mx.provider.com", 10, (scanned_ip("11.0.0.1", cert=cert),)),),
    )
    bannerless = DomainMeasurement(
        domain="bannerless.com",
        measured_on=DAY,
        mx_set=(
            MXData(
                "mx.bannerless.com", 10,
                (scanned_ip("11.0.0.9", banner="IP-11-0-0-9 ESMTP", ehlo="[11.0.0.9]"),),
            ),
        ),
    )
    return {
        "hidden.com": hidden,
        "explicit.com": explicit,
        "bannerless.com": bannerless,
    }


class TestMXOnly:
    def test_uses_only_mx_names(self, measurements):
        inferences = MXOnlyApproach().run(measurements)
        assert inferences["hidden.com"].attributions == {"hidden.com": 1.0}
        assert inferences["explicit.com"].attributions == {"provider.com": 1.0}

    def test_oblivious_to_smtp_presence(self):
        no_server = DomainMeasurement(
            domain="dead.com",
            measured_on=DAY,
            mx_set=(MXData("mx.dead.com", 10, ()),),
        )
        inferences = MXOnlyApproach().run({"dead.com": no_server})
        assert inferences["dead.com"].status is DomainStatus.INFERRED

    def test_no_mx(self):
        empty = DomainMeasurement(domain="nomx.com", measured_on=DAY, mx_set=())
        inferences = MXOnlyApproach().run({"nomx.com": empty})
        assert inferences["nomx.com"].status is DomainStatus.NO_MX

    def test_split_credit(self):
        tied = DomainMeasurement(
            domain="tied.com",
            measured_on=DAY,
            mx_set=(
                MXData("mx.a-provider.com", 10, ()),
                MXData("mx.b-provider.com", 10, ()),
            ),
        )
        inferences = MXOnlyApproach().run({"tied.com": tied})
        assert inferences["tied.com"].attributions == {
            "a-provider.com": 0.5, "b-provider.com": 0.5,
        }


class TestCertBased:
    def test_cert_reveals_provider(self, measurements):
        inferences = cert_based(TrustStore()).run(measurements)
        assert inferences["hidden.com"].attributions == {"provider.com": 1.0}

    def test_falls_back_to_mx_without_cert(self, measurements):
        inferences = cert_based(TrustStore()).run(measurements)
        assert inferences["bannerless.com"].attributions == {"bannerless.com": 1.0}

    def test_source_marked(self, measurements):
        inferences = cert_based(TrustStore()).run(measurements)
        assert inferences["hidden.com"].mx_identities[0].source is EvidenceSource.CERT


class TestBannerBased:
    def test_banner_reveals_provider(self, measurements):
        inferences = banner_based(TrustStore()).run(measurements)
        assert inferences["hidden.com"].attributions == {"provider.com": 1.0}

    def test_decorated_ip_banner_falls_back(self, measurements):
        inferences = banner_based(TrustStore()).run(measurements)
        assert inferences["bannerless.com"].attributions == {"bannerless.com": 1.0}

    def test_ignores_certificates(self, measurements):
        inferences = banner_based(TrustStore()).run(measurements)
        assert inferences["explicit.com"].mx_identities[0].source in (
            EvidenceSource.BANNER, EvidenceSource.MX,
        )


class TestConstruction:
    def test_mx_source_rejected(self):
        with pytest.raises(ValueError):
            SingleSourceApproach(trust_store=TrustStore(), source=EvidenceSource.MX)
