"""Unit tests for the learned misidentification detector."""

import numpy as np
import pytest

from repro.core.autocorrect import (
    FEATURE_NAMES,
    EvaluationMetrics,
    LogisticModel,
    MisidentificationLearner,
    extract_features,
)
from repro.core.companies import CompanyMap
from repro.core.misident import PopularityCounters
from repro.core.types import EvidenceSource, IPIdentity, MXIdentity
from repro.measure.caida import ASInfo
from repro.measure.dataset import IPObservation, MXData
from repro.world.catalog import CATALOG


@pytest.fixture(scope="module")
def company_map():
    return CompanyMap.from_specs(CATALOG)


def make_case(
    provider_id="google.com",
    source=EvidenceSource.CERT,
    asn=15169,
    banner_fqdn="mx.google.com",
    cert_names=("mx.google.com",),
    num_ip=100,
):
    ip = IPObservation(
        address="11.0.0.1",
        as_info=ASInfo(asn, "AS", "US") if asn else None,
        scan=None,
    )
    mx = MXData(name="aspmx.l.google.com", preference=10, ips=(ip,))
    identity = MXIdentity(
        mx_name="aspmx.l.google.com",
        provider_id=provider_id,
        source=source,
        ip_identities=(
            IPIdentity(
                address="11.0.0.1",
                cert_id=provider_id if source is EvidenceSource.CERT else None,
                banner_id=provider_id,
                banner_fqdn=banner_fqdn,
                cert_names=cert_names,
            ),
        ),
    )
    counters = PopularityCounters()
    counters.num_ip["11.0.0.1"] = num_ip
    return "customer.com", mx, identity, counters


class TestExtractFeatures:
    def test_shape_and_names(self, company_map):
        domain, mx, identity, counters = make_case()
        vector = extract_features(domain, mx, identity, counters, company_map)
        assert vector.shape == (len(FEATURE_NAMES),)

    def test_as_match_feature(self, company_map):
        domain, mx, identity, counters = make_case(asn=15169)
        vector = extract_features(domain, mx, identity, counters, company_map)
        index = FEATURE_NAMES.index("as_matches_claimed_company")
        assert vector[index] == 1.0
        domain, mx, identity, counters = make_case(asn=64512)
        vector = extract_features(domain, mx, identity, counters, company_map)
        assert vector[index] == 0.0

    def test_vps_shape_feature(self, company_map):
        domain, mx, identity, counters = make_case(
            provider_id="secureserver.net",
            cert_names=("s1-22-3.secureserver.net",),
            banner_fqdn="s1-22-3.secureserver.net",
        )
        vector = extract_features(domain, mx, identity, counters, company_map)
        index = FEATURE_NAMES.index("hostname_matches_vps_shape")
        assert vector[index] == 1.0

    def test_popularity_feature_monotone(self, company_map):
        low = make_case(num_ip=1)
        high = make_case(num_ip=10_000)
        index = FEATURE_NAMES.index("log_confidence")
        low_v = extract_features(low[0], low[1], low[2], low[3], company_map)[index]
        high_v = extract_features(high[0], high[1], high[2], high[3], company_map)[index]
        assert high_v > low_v


class TestLogisticModel:
    def _separable_data(self, n=400, seed=3):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 4))
        y = (X[:, 0] + 2 * X[:, 1] > 0).astype(np.int64)
        return X, y

    def test_learns_separable_problem(self):
        X, y = self._separable_data()
        model = LogisticModel().fit(X, y, epochs=300)
        accuracy = (model.predict(X) == y).mean()
        assert accuracy > 0.95

    def test_probabilities_in_range(self):
        X, y = self._separable_data()
        model = LogisticModel().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticModel().predict(np.zeros((1, 4)))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            LogisticModel().fit(np.zeros((10, 3)), np.zeros(5))

    def test_class_weighting_helps_rare_positives(self):
        rng = np.random.default_rng(5)
        n = 600
        X = rng.normal(size=(n, 3))
        y = np.zeros(n, dtype=np.int64)
        positives = X[:, 0] > 1.8  # ~3.5% positive
        y[positives] = 1
        weighted = LogisticModel().fit(X, y, class_weighted=True)
        recall = ((weighted.predict(X) == 1) & (y == 1)).sum() / max(y.sum(), 1)
        assert recall > 0.6

    def test_feature_importance_named(self):
        X = np.zeros((10, len(FEATURE_NAMES)))
        y = np.zeros(10, dtype=np.int64)
        model = LogisticModel().fit(X, y, epochs=5)
        importance = model.feature_importance()
        assert set(importance) == set(FEATURE_NAMES)


class TestEvaluationMetrics:
    def test_perfect(self):
        metrics = EvaluationMetrics(10, 0, 0, 90)
        assert metrics.precision == metrics.recall == metrics.f1 == 1.0
        assert metrics.total == 100

    def test_degenerate(self):
        metrics = EvaluationMetrics(0, 0, 0, 100)
        assert metrics.precision == 0.0 and metrics.recall == 0.0 and metrics.f1 == 0.0


class TestEndToEnd:
    def test_cross_world_generalization(self, ctx):
        """Train on the shared ctx world, evaluate on a fresh one: the
        learned detector must beat the rule-based step 4 on recall."""
        from repro.experiments import ext_ml

        result = ext_ml.run(ctx)
        assert result.eval_cases > 100
        assert 0.01 < result.eval_positive_rate < 0.30
        assert result.learned.recall > result.rule_based.recall
        assert result.learned.f1 > 0.5

    def test_learner_empty_input(self, company_map):
        learner = MisidentificationLearner(company_map)
        cases = learner.build_cases({}, {}, lambda domain: {})
        assert len(cases.labels) == 0
