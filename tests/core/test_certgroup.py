"""Unit tests for step 1 — certificate preprocessing and grouping."""

from repro.core.certgroup import CertificatePreprocessor
from repro.tls.ca import CertificateAuthority

CA = CertificateAuthority("Simulated CA")


def build(certs):
    return CertificatePreprocessor().build(certs)


class TestGrouping:
    def test_paper_worked_example(self):
        """Table 3: two provider certs sharing FQDNs group together; the
        VPS cert stands alone; both groups get provider.com as name."""
        cert_a = CA.issue("mx1.provider.com", sans=["mx2.provider.com"])
        cert_b = CA.issue("mx2.provider.com", sans=["mx1.provider.com"])
        cert_vps = CA.issue("myvps.provider.com")
        groups = build([cert_a, cert_b, cert_vps])
        assert len(groups) == 2
        assert groups.representative_for(cert_a) == "provider.com"
        assert groups.representative_for(cert_b) == "provider.com"
        assert groups.representative_for(cert_vps) == "provider.com"
        assert groups.group_of(cert_a) is groups.group_of(cert_b)
        assert groups.group_of(cert_a) is not groups.group_of(cert_vps)

    def test_registered_domain_counts(self):
        cert_a = CA.issue("mx1.provider.com", sans=["mx2.provider.com"])
        cert_b = CA.issue("mx2.provider.com", sans=["mx1.provider.com"])
        cert_vps = CA.issue("myvps.provider.com")
        groups = build([cert_a, cert_b, cert_vps])
        # Paper: "the count for provider.com will be 5".
        assert groups.registered_domain_counts["provider.com"] == 5

    def test_transitive_grouping(self):
        """A—B share one name, B—C share another: all three group."""
        cert_a = CA.issue("a.x.com", sans=["b.x.com"])
        cert_b = CA.issue("b.x.com", sans=["c.y.com"])
        cert_c = CA.issue("c.y.com")
        groups = build([cert_a, cert_b, cert_c])
        assert len(groups) == 1
        group = groups.group_of(cert_a)
        assert group.size == 3

    def test_representative_majority_wins(self):
        cert = CA.issue("mx.majority.com", sans=["mx2.majority.com", "mx.minority.net"])
        groups = build([cert])
        assert groups.representative_for(cert) == "majority.com"

    def test_wildcard_participates_via_base(self):
        cert_wild = CA.issue("*.mailspamprotection.com")
        cert_host = CA.issue("se26.mailspamprotection.com", sans=["*.mailspamprotection.com"])
        groups = build([cert_wild, cert_host])
        assert len(groups) == 1
        assert groups.representative_for(cert_wild) == "mailspamprotection.com"

    def test_duplicate_certificates_counted_once(self):
        cert = CA.issue("mx.provider.com")
        groups = build([cert, cert, cert])
        assert len(groups) == 1
        assert groups.group_of(cert).size == 1
        assert groups.registered_domain_counts["provider.com"] == 1

    def test_unknown_cert_has_no_group(self):
        known = CA.issue("mx.provider.com")
        stranger = CA.issue("mx.other.com")
        groups = build([known])
        assert groups.representative_for(stranger) is None

    def test_disjoint_providers_stay_separate(self):
        google = CA.issue("mx.google.com", sans=["aspmx.l.google.com"])
        microsoft = CA.issue("mail.protection.outlook.com")
        groups = build([google, microsoft])
        assert len(groups) == 2
        assert groups.representative_for(google) == "google.com"
        assert groups.representative_for(microsoft) == "outlook.com"

    def test_empty_input(self):
        groups = build([])
        assert len(groups) == 0

    def test_group_without_registrable_names(self):
        cert = CA.issue("localhost")
        groups = build([cert])
        assert len(groups) == 1
        # Falls back to an FQDN-ish name rather than crashing.
        assert groups.group_of(cert).representative
