"""Unit tests for step 5 and the end-to-end pipeline."""

from datetime import date

import pytest

from repro.core.companies import CompanyMap
from repro.core.domainident import DomainIdentifier
from repro.core.pipeline import PipelineConfig, PriorityPipeline
from repro.core.types import DomainStatus, EvidenceSource, MXIdentity
from repro.measure.caida import ASInfo
from repro.measure.censys import Port25State, PortScanRecord
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.tls.ca import CertificateAuthority, TrustStore
from repro.world.catalog import CATALOG

DAY = date(2021, 6, 8)
CA = CertificateAuthority("Simulated CA")


def scan(address, banner=None, ehlo=None, cert=None, state=Port25State.OPEN):
    return PortScanRecord(
        address=address, scanned_on=DAY, state=state,
        banner=banner, ehlo=ehlo, starttls=cert is not None, certificate=cert,
    )


def ip(address, asn=64512, scan_record=None):
    return IPObservation(
        address=address,
        as_info=ASInfo(asn, f"AS{asn}", "US") if asn else None,
        scan=scan_record,
    )


def measurement(domain, mx_set):
    return DomainMeasurement(domain=domain, measured_on=DAY, mx_set=tuple(mx_set))


def mk_identity(name, provider_id):
    return MXIdentity(mx_name=name, provider_id=provider_id, source=EvidenceSource.MX)


class TestDomainIdentifier:
    def test_no_mx(self):
        inference = DomainIdentifier().identify(measurement("x.com", []), {})
        assert inference.status is DomainStatus.NO_MX

    def test_no_mx_ip(self):
        mx = MXData(name="mx.x.com", preference=10, ips=())
        inference = DomainIdentifier().identify(measurement("x.com", [mx]), {})
        assert inference.status is DomainStatus.NO_MX_IP

    def test_no_smtp_when_all_scanned_closed(self):
        mx = MXData(
            name="mx.x.com", preference=10,
            ips=(ip("11.0.0.1", scan_record=scan("11.0.0.1", state=Port25State.TIMEOUT)),),
        )
        inference = DomainIdentifier().identify(
            measurement("x.com", [mx]), {"mx.x.com": mk_identity("mx.x.com", "x.com")}
        )
        assert inference.status is DomainStatus.NO_SMTP

    def test_unscanned_ip_keeps_inference_open(self):
        mx = MXData(name="mx.x.com", preference=10, ips=(ip("11.0.0.1"),))
        inference = DomainIdentifier().identify(
            measurement("x.com", [mx]), {"mx.x.com": mk_identity("mx.x.com", "x.com")}
        )
        assert inference.status is DomainStatus.INFERRED
        assert inference.attributions == {"x.com": 1.0}

    def test_split_credit_on_tied_preferences(self):
        mx_a = MXData(name="mx.a.com", preference=10, ips=(ip("11.0.0.1"),))
        mx_b = MXData(name="mx.b.com", preference=10, ips=(ip("11.0.0.2"),))
        identities = {
            "mx.a.com": mk_identity("mx.a.com", "a.com"),
            "mx.b.com": mk_identity("mx.b.com", "b.com"),
        }
        inference = DomainIdentifier().identify(
            measurement("x.com", [mx_a, mx_b]), identities
        )
        assert inference.attributions == {"a.com": 0.5, "b.com": 0.5}

    def test_same_provider_not_split(self):
        mx_a = MXData(name="mx1.p.com", preference=10, ips=(ip("11.0.0.1"),))
        mx_b = MXData(name="mx2.p.com", preference=10, ips=(ip("11.0.0.2"),))
        identities = {
            "mx1.p.com": mk_identity("mx1.p.com", "p.com"),
            "mx2.p.com": mk_identity("mx2.p.com", "p.com"),
        }
        inference = DomainIdentifier().identify(
            measurement("x.com", [mx_a, mx_b]), identities
        )
        assert inference.attributions == {"p.com": 1.0}

    def test_backup_mx_ignored(self):
        primary = MXData(name="mx.p.com", preference=5, ips=(ip("11.0.0.1"),))
        backup = MXData(name="mx.backup.com", preference=50, ips=(ip("11.0.0.2"),))
        identities = {"mx.p.com": mk_identity("mx.p.com", "p.com")}
        inference = DomainIdentifier().identify(
            measurement("x.com", [primary, backup]), identities
        )
        assert inference.attributions == {"p.com": 1.0}

    def test_first_wins_without_split_credit(self):
        mx_a = MXData(name="mx.a.com", preference=10, ips=(ip("11.0.0.1"),))
        mx_b = MXData(name="mx.b.com", preference=10, ips=(ip("11.0.0.2"),))
        identities = {
            "mx.a.com": mk_identity("mx.a.com", "a.com"),
            "mx.b.com": mk_identity("mx.b.com", "b.com"),
        }
        inference = DomainIdentifier(split_credit=False).identify(
            measurement("x.com", [mx_a, mx_b]), identities
        )
        assert inference.attributions == {"a.com": 1.0}


@pytest.fixture(scope="module")
def company_map():
    return CompanyMap.from_specs(CATALOG)


class TestPriorityPipeline:
    def _measurements(self):
        google_cert = CA.issue("mx.google.com", sans=["aspmx.l.google.com"])
        google_scan = scan(
            "11.1.0.1",
            banner="mx.google.com ESMTP", ehlo="mx.google.com", cert=google_cert,
        )
        provider_named = measurement(
            "netflix-like.com",
            [MXData("aspmx.l.google.com", 10, (ip("11.1.0.1", 15169, google_scan),))],
        )
        customer_named = measurement(
            "gsipartners-like.com",
            [MXData("mailhost.gsipartners-like.com", 10, (ip("11.1.0.1", 15169, google_scan),))],
        )
        plain_self = measurement(
            "selfhosted.com",
            [MXData(
                "mx.selfhosted.com", 10,
                (ip("11.5.0.1", 64512, scan(
                    "11.5.0.1", banner="mx.selfhosted.com ESMTP", ehlo="mx.selfhosted.com",
                )),),
            )],
        )
        return {
            "netflix-like.com": provider_named,
            "gsipartners-like.com": customer_named,
            "selfhosted.com": plain_self,
        }

    def test_end_to_end(self, company_map):
        pipeline = PriorityPipeline(TrustStore(), company_map)
        result = pipeline.run(self._measurements())
        assert result["netflix-like.com"].attributions == {"google.com": 1.0}
        assert result["gsipartners-like.com"].attributions == {"google.com": 1.0}
        assert result["selfhosted.com"].attributions == {"selfhosted.com": 1.0}

    def test_evidence_sources(self, company_map):
        pipeline = PriorityPipeline(TrustStore(), company_map)
        result = pipeline.run(self._measurements())
        google_identity = result["netflix-like.com"].mx_identities[0]
        assert google_identity.source is EvidenceSource.CERT
        self_identity = result["selfhosted.com"].mx_identities[0]
        assert self_identity.source is EvidenceSource.BANNER

    def test_config_disables_certs(self, company_map):
        pipeline = PriorityPipeline(
            TrustStore(), company_map, config=PipelineConfig(use_certs=False)
        )
        result = pipeline.run(self._measurements())
        identity = result["netflix-like.com"].mx_identities[0]
        assert identity.source is EvidenceSource.BANNER

    def test_config_disables_both_smtp_sources(self, company_map):
        pipeline = PriorityPipeline(
            TrustStore(), company_map,
            config=PipelineConfig(use_certs=False, use_banners=False),
        )
        result = pipeline.run(self._measurements())
        # Degenerates to the MX-only approach.
        assert result["gsipartners-like.com"].attributions == {
            "gsipartners-like.com": 1.0
        }

    def test_result_container(self, company_map):
        pipeline = PriorityPipeline(TrustStore(), company_map)
        result = pipeline.run(self._measurements())
        assert len(result) == 3
        assert {inference.domain for inference in result} == set(self._measurements())
