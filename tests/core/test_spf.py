"""Unit tests for SPF parsing and eventual-provider inference."""

import pytest

from repro.core.companies import CompanyMap
from repro.core.spf import (
    EventualProviderAnalyzer,
    SPFMechanism,
    parse_spf,
)
from repro.world.catalog import CATALOG


class TestParseSPF:
    def test_simple_include(self):
        record = parse_spf("v=spf1 include:_spf.google.com ~all")
        assert record is not None
        assert record.includes() == ["_spf.google.com"]
        assert not record.authorizes_self()

    def test_self_authorizing(self):
        record = parse_spf("v=spf1 a mx ip4:11.0.0.1 -all")
        assert record.authorizes_self()
        assert record.includes() == []

    def test_qualifiers(self):
        record = parse_spf("v=spf1 +include:a.com -include:b.com ~include:c.com")
        assert record.includes() == ["a.com", "c.com"]  # '-' excluded

    def test_not_spf(self):
        assert parse_spf("google-site-verification=abc") is None
        assert parse_spf("") is None
        assert parse_spf("v=DKIM1; k=rsa") is None

    def test_modifiers_skipped(self):
        record = parse_spf("v=spf1 redirect=_spf.example.com exp=explain.example.com all")
        assert record.includes() == []
        assert record.mechanisms == (SPFMechanism("+", "all"),)

    def test_unknown_mechanisms_skipped(self):
        record = parse_spf("v=spf1 frobnicate:xyz include:real.com all")
        assert record.includes() == ["real.com"]

    def test_cidr_suffix_on_bare_mechanism(self):
        record = parse_spf("v=spf1 a/24 mx/28 ~all")
        assert record.authorizes_self()

    def test_case_insensitive_version(self):
        assert parse_spf("V=SPF1 INCLUDE:a.com ALL") is not None

    def test_mechanism_str(self):
        assert str(SPFMechanism("+", "include", "a.com")) == "include:a.com"
        assert str(SPFMechanism("~", "all")) == "~all"


@pytest.fixture(scope="module")
def analyzer():
    return EventualProviderAnalyzer(company_map=CompanyMap.from_specs(CATALOG))


class TestEventualProviderAnalyzer:
    def test_include_resolution(self, analyzer):
        assert analyzer.provider_of_include("_spf.google.com") == "google"
        assert analyzer.provider_of_include("spf.protection.outlook.com") == "microsoft"
        assert analyzer.provider_of_include("_spf.unknownhost.net") is None
        assert analyzer.provider_of_include("_spf") is None

    def test_filter_front_with_mailbox_behind(self, analyzer):
        result = analyzer.analyze(
            "ge-like.com",
            ("v=spf1 include:_spf.outlook.com include:_spf.pphosted.com ~all",),
            front_slug="proofpoint",
        )
        assert result.hides_mailbox_provider
        assert result.eventual_slug == "microsoft"
        assert set(result.spf_provider_slugs) == {"microsoft", "proofpoint"}

    def test_filter_front_without_spf(self, analyzer):
        result = analyzer.analyze("x.com", (), front_slug="proofpoint")
        assert not result.hides_mailbox_provider

    def test_mailbox_front_reports_nothing(self, analyzer):
        result = analyzer.analyze(
            "y.com", ("v=spf1 include:_spf.google.com ~all",), front_slug="google"
        )
        assert result.eventual_slug is None

    def test_filter_only_spf(self, analyzer):
        result = analyzer.analyze(
            "z.com", ("v=spf1 include:_spf.pphosted.com ~all",), front_slug="proofpoint"
        )
        assert result.eventual_slug is None

    def test_hosting_include_not_mailbox(self, analyzer):
        result = analyzer.analyze(
            "w.com",
            ("v=spf1 include:_spf.secureserver.net include:_spf.mimecast.com ~all",),
            front_slug="mimecast",
        )
        # GoDaddy is a hosting company, not a mailbox provider.
        assert result.eventual_slug is None


class TestWorldIntegration:
    def test_spf_published_and_revealing(self, ctx, last_snapshot):
        from repro.analysis.eventual import eventual_provider_report
        from repro.world.entities import DatasetTag

        measurements = ctx.measurements(DatasetTag.GOV, last_snapshot)
        inferences = ctx.priority(DatasetTag.GOV, last_snapshot)
        report = eventual_provider_report(measurements, inferences, ctx.company_map)
        assert report.filtered_total > 0
        assert 0.2 < report.reveal_rate < 0.9
        # Revealed eventual providers are mailbox companies only.
        assert set(report.eventual_counts) <= {"google", "microsoft"}

    def test_reveals_match_ground_truth(self, ctx, last_snapshot):
        from repro.analysis.eventual import eventual_provider_report
        from repro.world.entities import DatasetTag

        measurements = ctx.measurements(DatasetTag.GOV, last_snapshot)
        inferences = ctx.priority(DatasetTag.GOV, last_snapshot)
        report = eventual_provider_report(measurements, inferences, ctx.company_map)
        for domain, result in report.inferences.items():
            truth = ctx.world.entity(domain).assignment_at(last_snapshot)
            if result.eventual_slug is not None:
                assert result.eventual_slug == truth.eventual_slug
