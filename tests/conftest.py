"""Shared fixtures: a small world and study context, built once per session."""

import pytest

from repro.experiments.common import StudyContext
from repro.world.build import WorldConfig, build_world

SMALL_CONFIG = WorldConfig(seed=7, alexa_size=600, com_size=700, gov_size=200)


@pytest.fixture(scope="session")
def small_world():
    """A small but fully featured world (session-scoped: ~0.5 s to build)."""
    return build_world(SMALL_CONFIG)


@pytest.fixture(scope="session")
def ctx():
    """A study context over the small world, with memoized inference runs."""
    return StudyContext.create(SMALL_CONFIG)


@pytest.fixture(scope="session")
def last_snapshot(ctx):
    return len(ctx.world.snapshot_dates) - 1
