"""Shared fixtures: a small world and study context, built once per session."""

import time

import pytest

from repro.experiments.common import StudyContext
from repro.world.build import WorldConfig, build_world

SMALL_CONFIG = WorldConfig(seed=7, alexa_size=600, com_size=700, gov_size=200)


def wait_for(predicate, timeout=20.0, interval=0.02, message="condition"):
    """Poll ``predicate`` until it returns truthy; no bare wall-clock sleeps.

    Returns the predicate's (truthy) value.  Raises ``TimeoutError`` with
    ``message`` if the deadline passes — so tests fail with a reason, not
    a downstream assertion on whatever half-state a fixed sleep left.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out after {timeout}s waiting for {message}")
        time.sleep(interval)


@pytest.fixture(scope="session")
def small_world():
    """A small but fully featured world (session-scoped: ~0.5 s to build)."""
    return build_world(SMALL_CONFIG)


@pytest.fixture(scope="session")
def ctx():
    """A study context over the small world, with memoized inference runs."""
    return StudyContext.create(SMALL_CONFIG)


@pytest.fixture(scope="session")
def last_snapshot(ctx):
    return len(ctx.world.snapshot_dates) - 1
