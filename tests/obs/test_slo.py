"""SLO spec parsing and burn-rate evaluation."""

import pytest

from repro.obs.sketch import WindowStats
from repro.obs.slo import Objective, SLOError, SLOSet, parse_slo


def _stats(*, p99=0.001, errors=0, requests=100):
    return WindowStats(
        span=60, requests=requests, errors=errors,
        p50=p99 / 2, p95=p99 * 0.9, p99=p99,
    )


class TestParse:
    def test_full_spec(self):
        slo = parse_slo("p99=5ms,err=0.1%")
        assert [o.name for o in slo.objectives] == ["p99", "err"]
        assert slo.objectives[0].threshold == pytest.approx(0.005)
        assert slo.objectives[1].threshold == pytest.approx(0.001)

    def test_duration_units(self):
        assert parse_slo("p50=500us").objectives[0].threshold == pytest.approx(5e-4)
        assert parse_slo("p95=1s").objectives[0].threshold == pytest.approx(1.0)
        # Bare numbers default to milliseconds.
        assert parse_slo("p99=5").objectives[0].threshold == pytest.approx(0.005)

    def test_err_as_fraction(self):
        assert parse_slo("err=0.02").objectives[0].threshold == pytest.approx(0.02)

    def test_empty_spec_is_off(self):
        assert not parse_slo(None)
        assert not parse_slo("  ")
        assert parse_slo("").spec() == ""

    def test_spec_round_trips(self):
        raw = "p99=5ms,err=0.1%"
        assert parse_slo(parse_slo(raw).spec()).spec() == parse_slo(raw).spec()

    @pytest.mark.parametrize("bad", [
        "p99", "p99=fast", "p42=5ms", "err=120%", "err=nope",
        "p99=5ms,p99=6ms", "p99=0ms",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(SLOError):
            parse_slo(bad)


class TestEvaluate:
    def test_within_budget(self):
        slo = parse_slo("p99=5ms,err=1%")
        report = slo.evaluate(_stats(p99=0.001, errors=0))
        assert report["degraded"] is False
        assert all(entry["ok"] for entry in report["objectives"])
        burn = {e["name"]: e["burn_rate"] for e in report["objectives"]}
        assert burn["p99"] == pytest.approx(0.2)

    def test_latency_burn_degrades(self):
        slo = parse_slo("p99=5ms")
        report = slo.evaluate(_stats(p99=0.02))
        assert report["degraded"] is True
        assert report["objectives"][0]["burn_rate"] == pytest.approx(4.0)

    def test_error_burn_degrades(self):
        slo = parse_slo("err=1%")
        report = slo.evaluate(_stats(errors=5, requests=100))
        assert report["degraded"] is True
        assert report["objectives"][0]["burn_rate"] == pytest.approx(5.0)

    def test_idle_window_stays_healthy(self):
        slo = parse_slo("p99=5ms,err=0.1%")
        idle = WindowStats(span=60, requests=0, errors=0, p50=0, p95=0, p99=0)
        assert slo.evaluate(idle)["degraded"] is False

    def test_objective_observed_dispatch(self):
        stats = _stats(p99=0.008, errors=2, requests=10)
        assert Objective("p99", 0.005).observed(stats) == pytest.approx(0.008)
        assert Objective("err", 0.01).observed(stats) == pytest.approx(0.2)

    def test_empty_set_evaluates_clean(self):
        report = SLOSet().evaluate(_stats())
        assert report["objectives"] == [] and report["degraded"] is False
