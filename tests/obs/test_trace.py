"""Span tracer: recording, nesting, fork shipping, export formats."""

import json
import threading

import pytest

from repro.obs import trace
from repro.obs.schemas import (
    TRACE_EVENT_SCHEMA,
    TRACE_SCHEMA,
    validate,
    validate_file,
    validate_jsonl_file,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with tracing disabled."""
    trace.disable()
    yield
    trace.disable()


class TestDisabledTracer:
    def test_span_is_shared_noop(self):
        assert trace.active() is None
        first = trace.span("a", cat="x", anything=1)
        second = trace.span("b")
        assert first is second  # one shared null context, no allocation
        with first:
            pass

    def test_worker_helpers_are_noops(self):
        assert trace.mark() == 0
        assert trace.drain_new(0) == []
        trace.adopt([{"name": "ghost"}])  # silently dropped
        trace.instant("ghost")
        assert trace.active() is None


class TestRecording:
    def test_span_records_duration_event(self):
        tracer = trace.enable()
        with trace.span("work", cat="gather", targets=7):
            pass
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["cat"] == "gather"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"targets": 7}
        assert validate(event, TRACE_EVENT_SCHEMA) == []

    def test_nested_spans_are_contained(self):
        tracer = trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = tracer.events()  # inner finishes (and appends) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_instant_event(self):
        tracer = trace.enable()
        trace.instant("marker", cat="run", detail="x")
        (event,) = tracer.events()
        assert event["ph"] == "i"

    def test_exception_still_closes_span(self):
        tracer = trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        assert [event["name"] for event in tracer.events()] == ["doomed"]

    def test_threaded_spans_all_recorded(self):
        tracer = trace.enable()

        def work(index):
            with trace.span(f"shard{index}", cat="shard"):
                pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = tracer.events()
        assert len(events) == 8
        assert len({event["tid"] for event in events}) > 1


class TestWorkerShipping:
    def test_mark_drain_adopt(self):
        tracer = trace.enable()
        with trace.span("before"):
            pass
        mark = trace.mark()
        with trace.span("shipped"):
            pass
        events = trace.drain_new(mark)
        assert [event["name"] for event in events] == ["shipped"]
        # A fresh tracer (the "parent") adopts the shipped events.
        parent = trace.enable()
        trace.adopt(events)
        assert [event["name"] for event in parent.events()] == ["shipped"]


class TestExport:
    def test_chrome_file_validates(self, tmp_path):
        tracer = trace.enable()
        with trace.span("run", cat="run"):
            with trace.span("alexa[s8].gather", cat="snapshot"):
                pass
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)
        assert validate_file(str(path), TRACE_SCHEMA) == []
        document = json.loads(path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert {"run", "alexa[s8].gather", "process_name"} <= names

    def test_jsonl_stream_written_live(self, tmp_path):
        stream = tmp_path / "trace.jsonl"
        trace.enable(stream_path=stream)
        with trace.span("one"):
            pass
        with trace.span("two"):
            pass
        assert validate_jsonl_file(str(stream), TRACE_EVENT_SCHEMA) == []
        lines = [json.loads(line) for line in stream.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["one", "two"]

    def test_jsonl_path_pairing(self):
        assert trace.jsonl_path("trace.json") == "trace.jsonl"
        assert trace.jsonl_path("trace.jsonl") == "trace.jsonl"
        assert trace.jsonl_path("spans.out") == "spans.out.jsonl"


class TestEnv:
    def test_from_env_disabled(self, monkeypatch):
        monkeypatch.delenv(trace.TRACE_ENV, raising=False)
        assert trace.from_env() is None
        monkeypatch.setenv(trace.TRACE_ENV, "off")
        assert trace.from_env() is None

    def test_from_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(trace.TRACE_ENV, str(tmp_path / "trace.json"))
        tracer = trace.from_env()
        assert tracer is trace.active() is not None
