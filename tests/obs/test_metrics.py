"""Metrics export: collection structure, Prometheus rendering, dispatch."""

import json

import pytest

from repro.engine.stats import EngineStats
from repro.obs import metrics
from repro.obs.schemas import METRICS_SCHEMA, validate, validate_file


@pytest.fixture
def busy_stats() -> EngineStats:
    stats = EngineStats()
    stats.inc("gather.obs.hit", 96)
    stats.inc("gather.obs.miss", 4)
    stats.inc("store.read_bytes", 4096)
    stats.add_time("context.gather", 1.5)
    stats.add_time("context.pipeline", 0.5)
    stats.record_shards("gather.jobs4", [1.0, 1.0, 2.0])
    return stats


class TestCollect:
    def test_document_validates(self, busy_stats):
        document = metrics.collect(busy_stats)
        assert validate(document, METRICS_SCHEMA) == []

    def test_cache_rates_derived(self, busy_stats):
        document = metrics.collect(busy_stats)
        assert document["caches"]["gather.obs"] == {
            "hits": 96,
            "misses": 4,
            "rate": 0.96,
        }

    def test_timers_with_calls(self, busy_stats):
        document = metrics.collect(busy_stats)
        assert document["timers"]["context.gather"] == {"seconds": 1.5, "calls": 1}

    def test_shard_summary(self, busy_stats):
        shards = metrics.collect(busy_stats)["shards"]["gather.jobs4"]
        assert shards["count"] == 3
        assert shards["mean_seconds"] == pytest.approx(4.0 / 3)
        assert shards["imbalance"] == pytest.approx(1.5)

    def test_empty_stats(self):
        document = metrics.collect(EngineStats())
        assert validate(document, METRICS_SCHEMA) == []
        assert document["counters"] == {} and document["shards"] == {}

    def test_default_is_process_stats(self):
        from repro.engine.stats import STATS

        STATS.inc("obs.test.marker", 1)
        try:
            assert "obs.test.marker" in metrics.collect()["counters"]
        finally:
            del STATS.counters["obs.test.marker"]


class TestPrometheus:
    def test_rendering(self, busy_stats):
        text = metrics.render_prometheus(metrics.collect(busy_stats))
        assert 'repro_counter_total{name="gather.obs.hit"} 96' in text
        assert 'repro_cache_hit_ratio{cache="gather.obs"} 0.960000' in text
        assert 'repro_timer_seconds_total{timer="context.gather"} 1.500000' in text
        assert 'repro_shard_imbalance{shards="gather.jobs4"} 1.500000' in text
        # Textfile hygiene: every exposition line is comment or sample.
        for line in text.strip().splitlines():
            assert line.startswith("#") or " " in line

    def test_no_rate_lines_for_idle_caches(self):
        stats = EngineStats()
        stats.inc("only.counter", 1)
        text = metrics.render_prometheus(metrics.collect(stats))
        assert "repro_cache_hit_ratio{" not in text


class TestWriteDispatch:
    def test_json_by_default(self, tmp_path, busy_stats):
        path = tmp_path / "metrics.json"
        metrics.write_metrics(path, busy_stats)
        assert validate_file(str(path), METRICS_SCHEMA) == []

    def test_prometheus_by_extension(self, tmp_path, busy_stats):
        path = tmp_path / "metrics.prom"
        metrics.write_metrics(path, busy_stats)
        assert "repro_counter_total" in path.read_text()
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_explicit_format_wins(self, tmp_path, busy_stats):
        path = tmp_path / "metrics.json"
        metrics.write_metrics(path, busy_stats, fmt="prometheus")
        assert "repro_counter_total" in path.read_text()
