"""The cross-run perf timeline: history, rolling-median deltas, CI gate."""

import json

import pytest

from repro.obs import timeline
from repro.obs.cli import main as obs_main
from repro.obs.schemas import HISTORY_EVENT_SCHEMA, bench_document, validate


def serve_doc(p99_ms=1.5, qps=500.0):
    return bench_document(
        "serve-sweep",
        [
            {"phase": "seed", "seconds": 2.0},
            {
                "phase": "daemon",
                "warm_start_s": 0.05,
                "p50_ms": p99_ms / 3,
                "p99_ms": p99_ms,
                "qps": qps,
                "requests": 400,
            },
            {"phase": "ingest", "churn": 0.1, "speedup": 4.0,
             "ingest_seconds": 0.4},
        ],
        seed=7,
    )


class TestExtraction:
    def test_serve_sweep_metrics(self):
        metrics = timeline.extract_metrics(serve_doc())
        assert metrics["daemon.p99_ms"] == 1.5
        assert metrics["daemon.qps"] == 500.0
        assert metrics["ingest.speedup@0.1"] == 4.0

    def test_generic_fallback(self):
        document = bench_document("custom", [{"wall_s": 2.5, "label": "x"}])
        metrics = timeline.extract_metrics(document)
        assert metrics == {"row0.wall_s": 2.5}

    def test_non_bench_document_rejected(self):
        with pytest.raises(timeline.TimelineError):
            timeline.extract_metrics({"rows": []})

    def test_polarity_inference(self):
        assert timeline.higher_is_better("daemon.qps")
        assert timeline.higher_is_better("ingest.speedup@0.1")
        assert timeline.higher_is_better("accuracy@0.2")
        assert not timeline.higher_is_better("daemon.p99_ms")
        assert not timeline.higher_is_better("seed.seconds")


class TestHistory:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        entry = timeline.history_entry(serve_doc(), source="a.json", run="r1")
        assert validate(entry, HISTORY_EVENT_SCHEMA) == []
        timeline.append_history(path, entry)
        timeline.append_history(
            path, timeline.history_entry(serve_doc(), run="r2")
        )
        entries = timeline.read_history(path)
        assert [e["run"] for e in entries] == ["r1", "r2"]

    def test_missing_file_is_empty(self, tmp_path):
        assert timeline.read_history(tmp_path / "nope.jsonl") == []

    def test_bad_json_line_rejected(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(timeline.TimelineError):
            timeline.read_history(path)


class TestCompare:
    def _entries(self, *p99s, qps=500.0):
        return [
            timeline.history_entry(serve_doc(p99_ms=p99, qps=qps), run=f"r{i}")
            for i, p99 in enumerate(p99s)
        ]

    def test_two_runs_produce_delta_table(self):
        rows = timeline.compare(self._entries(1.5, 1.6))
        table = timeline.render_table(rows)
        assert "daemon.p99_ms" in table and "| ok |" in table
        assert not timeline.regressions(rows)

    def test_injected_2x_latency_regression_trips(self):
        rows = timeline.compare(self._entries(1.5, 1.5, 1.5, 3.0))
        bad = timeline.regressions(rows)
        assert any(row["metric"] == "daemon.p99_ms" for row in bad)
        assert "**REGRESSED**" in timeline.render_table(rows)

    def test_throughput_drop_regresses_upward_metric(self):
        entries = [
            timeline.history_entry(serve_doc(qps=600.0), run="r0"),
            timeline.history_entry(serve_doc(qps=600.0), run="r1"),
            timeline.history_entry(serve_doc(qps=200.0), run="r2"),
        ]
        bad = timeline.regressions(timeline.compare(entries))
        assert any(row["metric"] == "daemon.qps" for row in bad)

    def test_first_run_never_regresses(self):
        rows = timeline.compare(self._entries(99.0))
        assert all(row["median"] is None for row in rows)
        assert not timeline.regressions(rows)

    def test_rolling_median_window(self):
        # Median of the last 5 priors (1.5) — not the ancient 9.0 outlier.
        rows = timeline.compare(
            self._entries(9.0, 1.5, 1.5, 1.5, 1.5, 1.5, 1.6), window=5
        )
        p99 = next(r for r in rows if r["metric"] == "daemon.p99_ms")
        assert p99["median"] == pytest.approx(1.5)
        assert not p99["regressed"]

    def test_zero_median_never_gates(self):
        entries = [
            {"bench": "b", "metrics": {"x.seconds": 0.0}},
            {"bench": "b", "metrics": {"x.seconds": 5.0}},
        ]
        rows = timeline.compare(entries)
        assert rows[0]["ratio"] is None and not rows[0]["regressed"]


class TestCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_add_then_check_passes_when_flat(self, tmp_path, capsys):
        history = str(tmp_path / "BENCH_history.jsonl")
        a = self._write(tmp_path, "a.json", serve_doc(1.5))
        b = self._write(tmp_path, "b.json", serve_doc(1.6))
        assert obs_main(["timeline", a, "--history", history, "--add"]) == 0
        assert obs_main(
            ["timeline", b, "--history", history, "--add", "--check"]
        ) == 0
        out = capsys.readouterr().out
        assert "daemon.p99_ms" in out
        assert len(timeline.read_history(history)) == 2

    def test_check_fails_on_regression(self, tmp_path, capsys):
        history = str(tmp_path / "BENCH_history.jsonl")
        base = self._write(tmp_path, "a.json", serve_doc(1.5))
        slow = self._write(tmp_path, "b.json", serve_doc(3.2))
        assert obs_main(["timeline", base, "--history", history, "--add"]) == 0
        assert obs_main(
            ["timeline", slow, "--history", history, "--check"]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_empty_history_errors(self, tmp_path):
        assert obs_main(
            ["timeline", "--history", str(tmp_path / "none.jsonl")]
        ) == 2
