"""Provenance records: consistency with the pipeline's stored results."""

import pytest

from repro.core.types import DomainStatus
from repro.obs import provenance
from repro.obs.schemas import PROVENANCE_SCHEMA, validate
from repro.world.entities import DatasetTag


@pytest.fixture(scope="module")
def inferred_domain(ctx, last_snapshot):
    result = ctx.priority_result(DatasetTag.ALEXA, last_snapshot)
    for domain, inference in result.inferences.items():
        if inference.status is DomainStatus.INFERRED:
            return domain
    pytest.fail("expected at least one inferred domain")


class TestExplain:
    def test_record_validates(self, ctx, inferred_domain, last_snapshot):
        record = provenance.explain(ctx, inferred_domain, last_snapshot)
        assert record is not None
        assert validate(record, PROVENANCE_SCHEMA) == []

    def test_winning_tier_consistent_with_stored_result(
        self, ctx, inferred_domain, last_snapshot
    ):
        """The audit trail must restate the pipeline's own evidence, not
        re-derive it: tiers, provider IDs, and corrections all match the
        stored MXIdentity tuples exactly."""
        record = provenance.explain(ctx, inferred_domain, last_snapshot)
        result = ctx.priority_result(DatasetTag.ALEXA, last_snapshot)
        inference = result.inferences[inferred_domain]
        assert record["attributions"] == inference.attributions
        by_name = {identity.mx_name: identity for identity in inference.mx_identities}
        assert {mx["name"] for mx in record["mx"]} == set(by_name)
        for mx in record["mx"]:
            stored = by_name[mx["name"]]
            assert mx["evidence"] == stored.source.value
            assert mx["provider_id"] == stored.provider_id
            assert mx["corrected"] == stored.corrected
        best = min(inference.mx_identities, key=lambda i: i.source.priority)
        assert record["winning_evidence"] == best.source.value

    def test_every_corpus_explains_every_domain(self, ctx, last_snapshot):
        for dataset in DatasetTag:
            domains = ctx.domains(dataset)
            record = provenance.explain(
                ctx, domains[0], last_snapshot, dataset=dataset
            )
            assert record is not None
            assert record["corpus"] == dataset.value
            assert validate(record, PROVENANCE_SCHEMA) == []

    def test_unknown_domain(self, ctx, last_snapshot):
        assert provenance.explain(ctx, "not-a-real-domain.example", 8) is None

    def test_uncovered_snapshot(self, ctx):
        gov = ctx.domains(DatasetTag.GOV)[0]
        assert provenance.explain(ctx, gov, 0, dataset=DatasetTag.GOV) is None

    def test_locate_domain(self, ctx):
        alexa = ctx.domains(DatasetTag.ALEXA)[0]
        assert provenance.locate_domain(ctx, alexa) is DatasetTag.ALEXA
        assert provenance.locate_domain(ctx, "nowhere.example") is None

    def test_mx_set_context_included(self, ctx, inferred_domain, last_snapshot):
        record = provenance.explain(ctx, inferred_domain, last_snapshot)
        assert record["mx_set"], "measurement context should list the MX set"
        assert any(mx["primary"] for mx in record["mx_set"])


class TestRendering:
    def test_renders_the_full_trail(self, ctx, inferred_domain, last_snapshot):
        record = provenance.explain(ctx, inferred_domain, last_snapshot)
        text = provenance.render_explanation(record)
        assert inferred_domain in text
        assert "status: inferred" in text
        assert "winning evidence tier:" in text
        assert "evidence trail" in text
        for provider in record["attributions"]:
            assert provider in text

    def test_renders_statuses_without_mx(self, ctx, last_snapshot):
        result = ctx.priority_result(DatasetTag.ALEXA, last_snapshot)
        for inference in result.inferences.values():
            if inference.status is DomainStatus.NO_MX:
                record = provenance.explain(ctx, inference.domain, last_snapshot)
                text = provenance.render_explanation(record)
                assert "status: no_mx" in text
                return
        pytest.skip("world produced no NO_MX domain at this snapshot")

    def test_correction_rendered_when_present(self, ctx, last_snapshot):
        for dataset in DatasetTag:
            result = ctx.priority_result(dataset, last_snapshot)
            for inference in result.inferences.values():
                if inference.corrected:
                    record = provenance.explain(
                        ctx, inference.domain, last_snapshot, dataset=dataset
                    )
                    text = provenance.render_explanation(record)
                    assert "CORRECTED" in text
                    return
        pytest.skip("no step-4 correction in this world")
