"""Run manifests and structured logging."""

import io
import json
import logging

import pytest

from repro.engine import EngineOptions
from repro.engine.stats import EngineStats
from repro.obs import log as obs_log
from repro.obs import manifest as obs_manifest
from repro.obs.schemas import MANIFEST_SCHEMA, validate, validate_file
from repro.store import ArtifactStore
from repro.world.build import WorldConfig


class TestManifest:
    def build(self, tmp_path=None):
        stats = EngineStats()
        stats.add_time("context.gather", 2.0)
        stats.add_time("context.pipeline", 5.0)
        store = ArtifactStore(tmp_path / "cache") if tmp_path else None
        return obs_manifest.build_manifest(
            config=WorldConfig(seed=11),
            engine=EngineOptions(jobs=4),
            store=store,
            experiments=["fig6", "tab4"],
            elapsed_seconds=12.5,
            stats=stats,
            argv=["all", "--jobs", "4"],
        )

    def test_validates(self):
        assert validate(self.build(), MANIFEST_SCHEMA) == []

    def test_pins_world_and_schemas(self):
        document = self.build()
        assert document["world"]["seed"] == 11
        assert len(document["world"]["snapshot_dates"]) == 9
        assert document["world"]["snapshot_dates"][0] == "2017-06-08"
        assert set(document["schemas"]) == {
            "manifest", "store", "trace", "metrics", "provenance",
        }

    def test_timers_hottest_first(self):
        timers = self.build()["timing"]["timers"]
        assert list(timers) == ["context.pipeline", "context.gather"]

    def test_cache_state(self, tmp_path):
        document = self.build(tmp_path)
        assert document["cache"]["entries"] == 0
        assert document["cache"]["root"].endswith("cache")
        assert self.build()["cache"] is None

    def test_write(self, tmp_path):
        path = tmp_path / "manifest.json"
        obs_manifest.write_manifest(path, self.build())
        assert validate_file(str(path), MANIFEST_SCHEMA) == []
        assert json.loads(path.read_text())["engine"]["jobs"] == 4


class TestLogging:
    def capture(self, json_lines: bool):
        stream = io.StringIO()
        root = obs_log.configure(level="info", json_lines=json_lines, stream=stream)
        try:
            logger = obs_log.get_logger("unit")
            logger.info(
                "cache.evict", extra={"fields": {"entries": 3, "reason": "lru"}}
            )
            logger.debug("hidden")  # below the configured level
        finally:
            root.setLevel(logging.WARNING)
        return stream.getvalue()

    def test_text_lines(self):
        output = self.capture(json_lines=False)
        (line,) = output.splitlines()
        assert "repro.unit" in line
        assert "cache.evict" in line
        assert "entries=3" in line and "reason=lru" in line

    def test_json_lines(self):
        output = self.capture(json_lines=True)
        (line,) = output.splitlines()
        document = json.loads(line)
        assert document["event"] == "cache.evict"
        assert document["level"] == "info"
        assert document["logger"] == "repro.unit"
        assert document["entries"] == 3

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        obs_log.configure(level="info", json_lines=False, stream=first)
        root = obs_log.configure(level="info", json_lines=False, stream=second)
        try:
            obs_log.get_logger("unit").info("once")
        finally:
            root.setLevel(logging.WARNING)
        assert first.getvalue() == ""
        assert "once" in second.getvalue()

    def test_env_level(self, monkeypatch):
        monkeypatch.setenv(obs_log.LOG_ENV, "debug")
        assert obs_log.env_level() == "debug"
        monkeypatch.setenv(obs_log.LOG_ENV, "garbage")
        assert obs_log.env_level() is None
        monkeypatch.delenv(obs_log.LOG_ENV)
        assert obs_log.env_level("info") == "info"

    def test_env_json(self, monkeypatch):
        monkeypatch.setenv(obs_log.LOG_JSON_ENV, "1")
        assert obs_log.env_json() is True
        monkeypatch.setenv(obs_log.LOG_JSON_ENV, "off")
        assert obs_log.env_json() is False
