"""``repro obs report`` — markdown rendering over telemetry artifacts."""

import json

from repro.obs.cli import main as obs_main, render_report


def metrics_document():
    return {
        "schema": 3,
        "counters": {"gather.obs.hit": 426, "gather.obs.miss": 139},
        "caches": {},
        "memory": {"peak_rss_bytes": 1},
        "timers": {},
        "shards": {},
        "serve": {
            "uptime_s": 12.5,
            "endpoints": {
                "who-has": {
                    "count": 40, "mean_ms": 1.1, "p50_ms": 1.0,
                    "p99_ms": 4.2, "max_ms": 9.9,
                },
            },
            "block_cache": {
                "hits": 38, "misses": 2, "hit_rate": 0.95,
                "entries": 2, "capacity": 8,
            },
            "degraded": True,
            "live": {
                "schema": 1,
                "endpoints": {
                    "who-has": {
                        "total_requests": 40,
                        "total_errors": 0,
                        "windows": {
                            "60s": {
                                "requests": 40, "qps": 3.3, "p50_ms": 1.0,
                                "p95_ms": 3.0, "p99_ms": 4.2,
                                "error_rate": 0.0,
                            },
                        },
                    },
                },
                "gauges": {
                    "uptime_s": 12.5, "rss_bytes": 50_000_000,
                    "cache_hit_rate": 0.95, "ingest_lag_s": 3.0,
                },
                "slo": {
                    "endpoint": "who-has",
                    "objectives": [{
                        "name": "p99", "objective": 0.001,
                        "observed": 0.0042, "burn_rate": 4.2, "ok": False,
                    }],
                    "degraded": True,
                },
            },
        },
    }


def spans():
    return [
        {"name": "who-has", "cat": "rpc", "ph": "X", "dur": 4200.0},
        {"name": "block.load", "cat": "serve", "ph": "X", "dur": 3100.0},
        {"name": "note", "cat": "rpc", "ph": "i"},  # instant: not a span
    ]


class TestRenderReport:
    def test_full_report_sections(self):
        text = render_report(metrics_document(), spans(), top_spans=5)
        assert "# repro observability report" in text
        assert "## Engine counters" in text
        assert "| who-has | 40 | 1.1ms | 1.0ms | 4.2ms | 9.9ms |" in text
        assert "## Live telemetry" in text
        assert "- degraded: True" in text
        assert "### SLO burn rates" in text
        assert "| p99 | 0.0042 | 0.001 | 4.20x | False |" in text
        assert "### Sliding windows (60s)" in text
        assert "## Spans" in text
        assert "2 spans across 2 categories" in text
        assert "| who-has | rpc | 4.200 |" in text

    def test_engine_only_document_skips_serve_sections(self):
        document = metrics_document()
        del document["serve"]
        text = render_report(document, [], top_spans=5)
        assert "Serve endpoints" not in text
        assert "Live telemetry" not in text
        assert "## Engine counters" in text


class TestReportCli:
    def test_report_over_files(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(metrics_document()))
        stream = tmp_path / "trace.jsonl"
        stream.write_text(
            "\n".join(json.dumps(event) for event in spans()) + "\n"
        )
        assert obs_main([
            "report", "--metrics", str(metrics), "--trace-jsonl", str(stream),
        ]) == 0
        out = capsys.readouterr().out
        assert "## Spans" in out and "block.load" in out

    def test_missing_metrics_file_is_an_input_error(self, tmp_path, capsys):
        assert obs_main(
            ["report", "--metrics", str(tmp_path / "nope.json")]
        ) == 2
        assert "cannot read" in capsys.readouterr().err
