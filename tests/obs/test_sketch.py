"""Property tests for the mergeable latency sketches.

The live telemetry layer leans on three guarantees:

* merging is exactly associative and commutative (integer counts plus an
  integer nanosecond total — no float accumulation order),
* a quantile readout over-reports the true quantile by at most one
  bucket width (the growth factor ``g = 2**(1/per_octave)``),
* per-shard sketches merged in any order render **byte-identical**
  Prometheus exposition text.

Hypothesis drives all three with arbitrary latency populations and
arbitrary shard splits.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.sketch import (
    WINDOW_SPANS,
    LogHistogram,
    SketchMismatch,
    WindowedRecorder,
    render_prometheus_histograms,
)

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Keep generated latencies inside the sketch's resolvable range (1 µs up
# to well below the ~65 min top bucket) so the error bound applies.
latencies = st.lists(
    st.floats(min_value=1e-7, max_value=30.0, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=200,
)


def _sketch(values):
    sketch = LogHistogram()
    for value in values:
        sketch.observe(value)
    return sketch


def _state(sketch):
    return (tuple(sketch.counts), sketch.count, sketch.total_ns)


class TestMergeAlgebra:
    @SETTINGS
    @given(a=latencies, b=latencies)
    def test_merge_commutative(self, a, b):
        ab = _sketch(a).merge(_sketch(b))
        ba = _sketch(b).merge(_sketch(a))
        assert _state(ab) == _state(ba)

    @SETTINGS
    @given(a=latencies, b=latencies, c=latencies)
    def test_merge_associative(self, a, b, c):
        left = _sketch(a).merge(_sketch(b)).merge(_sketch(c))
        right = _sketch(a).merge(_sketch(b).merge(_sketch(c)))
        assert _state(left) == _state(right)

    @SETTINGS
    @given(values=latencies, seed=st.integers(0, 2**32 - 1))
    def test_sharded_merge_equals_single_sketch(self, values, seed):
        rng = random.Random(seed)
        shards = [[] for _ in range(rng.randint(1, 6))]
        for value in values:
            rng.choice(shards).append(value)
        merged = LogHistogram()
        order = [_sketch(shard) for shard in shards]
        rng.shuffle(order)
        for piece in order:
            merged.merge(piece)
        assert _state(merged) == _state(_sketch(values))

    def test_layout_mismatch_refuses(self):
        with pytest.raises(SketchMismatch):
            LogHistogram().merge(LogHistogram(per_octave=8))

    @SETTINGS
    @given(values=latencies)
    def test_dict_round_trip(self, values):
        sketch = _sketch(values)
        assert _state(LogHistogram.from_dict(sketch.as_dict())) == _state(sketch)


class TestQuantileBound:
    @SETTINGS
    @given(
        values=latencies,
        fraction=st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    def test_quantile_error_bounded_by_bucket_width(self, values, fraction):
        sketch = _sketch(values)
        ranked = sorted(values)
        rank = max(1, math.ceil(fraction * len(ranked)))
        true = ranked[rank - 1]
        estimate = sketch.quantile(fraction)
        growth = 2 ** (1 / sketch.per_octave)
        # Never under-reports, never over-reports past one bucket width
        # (values at/below base all collapse into bucket 0 = base).
        assert estimate * (1 + 1e-9) >= min(true, sketch.base)
        assert estimate <= max(true * growth, sketch.base) * (1 + 1e-9)

    def test_empty_sketch_reads_zero(self):
        assert LogHistogram().quantile(0.99) == 0.0
        assert LogHistogram().mean() == 0.0


class TestPrometheusDeterminism:
    @SETTINGS
    @given(values=latencies, seed=st.integers(0, 2**32 - 1))
    def test_shard_merge_order_renders_identical_bytes(self, values, seed):
        rng = random.Random(seed)
        shards = [[] for _ in range(rng.randint(2, 5))]
        for value in values:
            rng.choice(shards).append(value)
        pieces = [_sketch(shard) for shard in shards]

        def render(order):
            merged = LogHistogram()
            for index in order:
                merged.merge(pieces[index])
            return render_prometheus_histograms(
                "repro_test_latency_seconds", {"who-has": merged}
            )

        forward = render(range(len(pieces)))
        shuffled = list(range(len(pieces)))
        rng.shuffle(shuffled)
        assert render(shuffled) == forward

    def test_exposition_shape(self):
        sketch = _sketch([0.001, 0.002, 0.5])
        text = render_prometheus_histograms("m", {"e": sketch})
        assert '# TYPE m histogram' in text
        assert 'm_bucket{endpoint="e",le="+Inf"} 3' in text
        assert 'm_count{endpoint="e"} 3' in text
        assert text.endswith("\n")


class TestWindowedRecorder:
    def test_sliding_windows_cover_only_their_span(self):
        recorder = WindowedRecorder()
        # Ten observations, one per synthetic second.
        for second in range(10):
            recorder.observe(0.001 * (second + 1), now=1000.0 + second)
        now = 1009.0
        assert recorder.window(1, now=now).requests == 1
        assert recorder.window(10, now=now).requests == 10
        assert recorder.window(60, now=now).requests == 10
        assert recorder.total_requests == 10

    def test_error_rate_and_qps(self):
        recorder = WindowedRecorder()
        for index in range(20):
            recorder.observe(0.002, error=index % 4 == 0, now=500.0)
        stats = recorder.window(1, now=500.0)
        assert stats.requests == 20
        assert stats.errors == 5
        assert stats.error_rate == pytest.approx(0.25)
        assert stats.qps == pytest.approx(20.0)
        payload = stats.as_dict()
        assert payload["span_s"] == 1
        assert payload["p99_ms"] > 0

    def test_old_slots_pruned(self):
        recorder = WindowedRecorder()
        recorder.observe(0.001, now=100.0)
        # Jump far past the horizon; the stale slot must be dropped once
        # a new slot is created.
        recorder.observe(0.001, now=100.0 + 10 * max(WINDOW_SPANS))
        assert len(recorder._slots) == 1
        assert recorder.window(60).requests in (0, 1)

    def test_windows_summary_keys(self):
        recorder = WindowedRecorder()
        recorder.observe(0.003, now=42.0)
        summary = recorder.windows(now=42.0)
        assert set(summary) == {"1s", "10s", "60s"}
        assert summary["1s"]["requests"] == 1
