"""Tests for the §2.4 hostname-level estimator comparison.

Reproduces the paper's claim that Durumeric-style hostname counting
underestimates providers with per-customer MX names (Microsoft), while
Google's shared hostnames aggregate correctly.
"""

import pytest

from repro.analysis.market_share import compute_market_share
from repro.analysis.related_work import top_mx_hostnames, underestimation_of
from repro.world.entities import DatasetTag

LAST = 8


@pytest.fixture(scope="module")
def alexa(ctx):
    measurements = ctx.measurements(DatasetTag.ALEXA, LAST)
    inferences = ctx.priority(DatasetTag.ALEXA, LAST)
    share = compute_market_share(inferences, ctx.domains(DatasetTag.ALEXA), ctx.company_map)
    return measurements, share


class TestHostnameRanking:
    def test_google_hostnames_rank_high(self, ctx, alexa):
        measurements, _share = alexa
        rows = top_mx_hostnames(measurements, ctx.company_map, k=10)
        google_rows = [row for row in rows if row.company == "google"]
        assert google_rows and google_rows[0].rank <= 3

    def test_microsoft_absent_from_hostname_top10(self, ctx, alexa):
        """The paper's point: per-customer MX names hide Microsoft."""
        measurements, share = alexa
        rows = top_mx_hostnames(measurements, ctx.company_map, k=10)
        hostname_companies = {row.company for row in rows}
        # Microsoft is the #2 company by true share...
        ranking = [row.label for row in share.top(3)]
        assert "microsoft" in ranking[:2]
        # ...but no Microsoft hostname makes the top 10.
        assert "microsoft" not in hostname_companies

    def test_rank_ordering(self, ctx, alexa):
        measurements, _share = alexa
        rows = top_mx_hostnames(measurements, ctx.company_map, k=10)
        counts = [row.domains for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert [row.rank for row in rows] == list(range(1, len(rows) + 1))


class TestUnderestimation:
    def test_microsoft_fragmented(self, ctx, alexa):
        measurements, share = alexa
        report = underestimation_of(
            "microsoft", measurements, share.weights, ctx.company_map
        )
        # Customer-specific MXes: many hostnames, none anywhere near the
        # company's true count.
        assert report.distinct_hostnames > 20
        assert report.fragmentation > 5.0

    def test_google_not_fragmented(self, ctx, alexa):
        measurements, share = alexa
        report = underestimation_of(
            "google", measurements, share.weights, ctx.company_map
        )
        # Shared hostnames: the busiest one carries a large share of the
        # company's customers.
        assert report.distinct_hostnames <= 10
        assert report.fragmentation < 6.0

    def test_microsoft_more_fragmented_than_google(self, ctx, alexa):
        measurements, share = alexa
        microsoft = underestimation_of(
            "microsoft", measurements, share.weights, ctx.company_map
        )
        google = underestimation_of(
            "google", measurements, share.weights, ctx.company_map
        )
        assert microsoft.fragmentation > 3 * google.fragmentation

    def test_absent_company(self, ctx, alexa):
        measurements, share = alexa
        report = underestimation_of(
            "google_cloud", measurements, share.weights, ctx.company_map
        )
        assert report.best_single_hostname == 0
