"""Unit tests for market-concentration metrics."""

import pytest

from repro.analysis.concentration import market_concentration
from repro.analysis.market_share import MarketShare


def share_of(weights, total=None):
    return MarketShare(weights=weights, total_domains=total or int(sum(weights.values())))


class TestMarketConcentration:
    def test_monopoly(self):
        point = market_concentration(share_of({"google": 100.0}))
        assert point.hhi == pytest.approx(10_000.0)
        assert point.cr1 == pytest.approx(1.0)
        assert point.effective_providers == pytest.approx(1.0)

    def test_duopoly(self):
        point = market_concentration(share_of({"google": 50.0, "microsoft": 50.0}))
        assert point.hhi == pytest.approx(5_000.0)
        assert point.cr1 == pytest.approx(0.5)
        assert point.cr4 == pytest.approx(1.0)
        assert point.effective_providers == pytest.approx(2.0)

    def test_fragmented_market_low_hhi(self):
        weights = {f"p{i}": 1.0 for i in range(100)}
        point = market_concentration(share_of(weights))
        assert point.hhi == pytest.approx(100.0)
        assert point.effective_providers == pytest.approx(100.0)

    def test_self_hosting_as_distinct_providers(self):
        # 50 domains on one provider + 50 self-hosted singletons:
        # far less concentrated than a 50/50 duopoly.
        point = market_concentration(share_of({"google": 50.0, "SELF": 50.0}))
        duopoly = market_concentration(
            share_of({"google": 50.0, "SELF": 50.0}), treat_self_as_distinct=False
        )
        assert point.hhi < duopoly.hhi
        assert point.cr1 == pytest.approx(0.5)

    def test_self_aggregate_mode(self):
        point = market_concentration(
            share_of({"google": 50.0, "SELF": 50.0}), treat_self_as_distinct=False
        )
        assert point.hhi == pytest.approx(5_000.0)

    def test_consolidation_raises_hhi(self):
        before = market_concentration(
            share_of({"google": 30.0, "microsoft": 20.0, "SELF": 50.0})
        )
        after = market_concentration(
            share_of({"google": 45.0, "microsoft": 35.0, "SELF": 20.0})
        )
        assert after.hhi > before.hhi
        assert after.effective_providers < before.effective_providers

    def test_empty_market(self):
        point = market_concentration(share_of({}, total=10))
        assert point.hhi == 0.0
        assert point.attributed_domains == 0.0

    def test_cr_ordering(self):
        weights = {f"p{i}": float(20 - i) for i in range(12)}
        point = market_concentration(share_of(weights))
        assert point.cr1 <= point.cr4 <= point.cr10 <= 1.0


class TestWorldConcentration:
    def test_consolidation_trend_in_every_corpus(self, ctx):
        from repro.experiments import ext_concentration
        from repro.world.entities import DatasetTag

        result = ext_concentration.run(ctx)
        for dataset in (DatasetTag.ALEXA, DatasetTag.GOV):
            assert result.hhi_delta(dataset) > 0, dataset

    def test_gov_gap_preserved(self, ctx):
        from repro.experiments import ext_concentration
        from repro.world.entities import DatasetTag

        result = ext_concentration.run(ctx)
        gov = result.series[DatasetTag.GOV]
        assert gov[0] is None and gov[1] is None and gov[2] is not None

    def test_render(self, ctx):
        from repro.experiments import ext_concentration

        text = ext_concentration.run(ctx).render()
        assert "HHI" in text and "ALEXA" in text
