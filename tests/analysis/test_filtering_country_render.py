"""Unit tests for Table 4 classification, Figure 8 preferences, renderers."""

from datetime import date

import pytest

from repro.analysis.country import country_preferences
from repro.analysis.filtering import (
    CATEGORY_COMPLETE,
    CATEGORY_NO_CENSYS,
    CATEGORY_NO_MX_IP,
    CATEGORY_NO_PORT25,
    CATEGORY_NO_VALID_BANNER,
    CATEGORY_NO_VALID_CERT,
    availability_breakdown,
    classify_domain,
)
from repro.analysis.render import (
    format_count_percent,
    format_percent,
    format_table,
    sparkline,
)
from repro.core.companies import CompanyMap
from repro.core.types import DomainInference, DomainStatus
from repro.measure.caida import ASInfo
from repro.measure.censys import Port25State, PortScanRecord
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.tls.ca import CertificateAuthority, TrustStore, self_signed
from repro.world.catalog import CATALOG

DAY = date(2021, 6, 8)
CA = CertificateAuthority("Simulated CA")


def build_measurement(domain, ips):
    return DomainMeasurement(
        domain=domain, measured_on=DAY,
        mx_set=(MXData(f"mx.{domain}", 10, tuple(ips)),),
    )


def ip_obs(address, scan):
    return IPObservation(address=address, as_info=ASInfo(1, "X", "US"), scan=scan)


def open_scan(address, banner, cert):
    return PortScanRecord(
        address=address, scanned_on=DAY, state=Port25State.OPEN,
        banner=banner, ehlo=banner.split(" ")[0] if banner else None,
        starttls=cert is not None, certificate=cert,
    )


class TestClassifyDomain:
    def test_no_mx_ip(self):
        measurement = build_measurement("x.com", [])
        assert classify_domain(measurement, TrustStore()) == CATEGORY_NO_MX_IP

    def test_no_censys(self):
        measurement = build_measurement("x.com", [ip_obs("1.1.1.1", None)])
        assert classify_domain(measurement, TrustStore()) == CATEGORY_NO_CENSYS

    def test_no_port25(self):
        scan = PortScanRecord(address="1.1.1.1", scanned_on=DAY, state=Port25State.TIMEOUT)
        measurement = build_measurement("x.com", [ip_obs("1.1.1.1", scan)])
        assert classify_domain(measurement, TrustStore()) == CATEGORY_NO_PORT25

    def test_no_valid_cert(self):
        scan = open_scan("1.1.1.1", "mx.x.com ESMTP", self_signed("mx.x.com"))
        measurement = build_measurement("x.com", [ip_obs("1.1.1.1", scan)])
        assert classify_domain(measurement, TrustStore()) == CATEGORY_NO_VALID_CERT

    def test_no_valid_banner(self):
        scan = open_scan("1.1.1.1", "IP-1-1-1-1 ESMTP", CA.issue("mx.x.com"))
        measurement = build_measurement("x.com", [ip_obs("1.1.1.1", scan)])
        assert classify_domain(measurement, TrustStore()) == CATEGORY_NO_VALID_BANNER

    def test_complete(self):
        scan = open_scan("1.1.1.1", "mx.x.com ESMTP", CA.issue("mx.x.com"))
        measurement = build_measurement("x.com", [ip_obs("1.1.1.1", scan)])
        assert classify_domain(measurement, TrustStore()) == CATEGORY_COMPLETE

    def test_any_good_ip_suffices(self):
        good = ip_obs("1.1.1.1", open_scan("1.1.1.1", "mx.x.com ESMTP", CA.issue("mx.x.com")))
        bad = ip_obs("1.1.1.2", open_scan("1.1.1.2", "IP-1-1-1-2", None))
        measurement = build_measurement("x.com", [bad, good])
        assert classify_domain(measurement, TrustStore()) == CATEGORY_COMPLETE

    def test_breakdown_partitions(self):
        measurements = {
            "a.com": build_measurement("a.com", []),
            "b.com": build_measurement(
                "b.com",
                [ip_obs("1.1.1.1", open_scan("1.1.1.1", "mx.b.com ESMTP", CA.issue("mx.b.com")))],
            ),
        }
        breakdown = availability_breakdown(measurements, TrustStore())
        assert sum(breakdown.counts.values()) == breakdown.total == 2
        assert breakdown.fraction(CATEGORY_COMPLETE) == pytest.approx(0.5)


class TestCountryPreferences:
    def test_matrix(self):
        company_map = CompanyMap.from_specs(CATALOG)
        inferences = {
            "a.ru": DomainInference("a.ru", DomainStatus.INFERRED, {"yandex.net": 1.0}),
            "b.ru": DomainInference("b.ru", DomainStatus.INFERRED, {"google.com": 1.0}),
            "a.cn": DomainInference("a.cn", DomainStatus.INFERRED, {"qq.com": 1.0}),
            "b.cn": DomainInference("b.cn", DomainStatus.INFERRED, {"qq.com": 1.0}),
        }
        prefs = country_preferences(
            inferences, {"ru": ["a.ru", "b.ru"], "cn": ["a.cn", "b.cn"]}, company_map
        )
        assert prefs.percent("ru", "yandex") == pytest.approx(50.0)
        assert prefs.percent("cn", "tencent") == pytest.approx(100.0)
        assert prefs.percent("cn", "yandex") == 0.0
        assert prefs.us_share("ru") == pytest.approx(50.0)
        assert prefs.dominant_cctld("tencent") == "cn"


class TestRender:
    def test_format_table_alignment(self):
        text = format_table(["A", "Blong"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[2] and "Blong" in lines[2]
        assert len(lines) == 6

    def test_number_formatting(self):
        text = format_table(["n"], [[1234567]])
        assert "1,234,567" in text

    def test_float_formatting(self):
        text = format_table(["n"], [[12.345]])
        assert "12.3" in text

    def test_nan_renders_dash(self):
        assert format_percent(float("nan")) == "-"

    def test_percent(self):
        assert format_percent(28.53) == "28.5%"

    def test_count_percent(self):
        assert format_count_percent(26697, 28.5) == "26,697 (28.5%)"

    def test_sparkline(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_with_nan(self):
        line = sparkline([float("nan"), 1.0, 2.0])
        assert line[0] == " "

    def test_sparkline_empty(self):
        assert sparkline([float("nan")]) == ""

    def test_sparkline_constant(self):
        assert sparkline([5.0, 5.0]) == "▁▁"
