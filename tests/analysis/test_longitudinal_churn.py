"""Unit tests for trend series and churn matrices."""

import math

import pytest

from repro.analysis.churn import (
    CATEGORY_NO_SMTP,
    CATEGORY_SELF,
    CATEGORY_TOP100,
    churn_matrix,
    domain_category,
)
from repro.analysis.longitudinal import market_share_over_time
from repro.core.companies import SELF_LABEL, CompanyMap
from repro.core.types import DomainInference, DomainStatus
from repro.world.catalog import CATALOG


@pytest.fixture(scope="module")
def company_map():
    return CompanyMap.from_specs(CATALOG)


def inferred(domain, provider_id):
    return DomainInference(
        domain=domain, status=DomainStatus.INFERRED, attributions={provider_id: 1.0}
    )


class TestLongitudinal:
    def test_series_shape(self, company_map):
        snap0 = {"a.com": inferred("a.com", "google.com")}
        snap1 = {"a.com": inferred("a.com", "outlook.com")}
        result = market_share_over_time(
            [snap0, snap1], ["a.com"], company_map, ["google", "microsoft"]
        )
        google = result["google"]
        assert google.percents == (100.0, 0.0)
        assert result["microsoft"].percents == (0.0, 100.0)
        assert google.delta_percent() == -100.0

    def test_nan_for_uncovered_snapshots(self, company_map):
        snap1 = {"a.com": inferred("a.com", "google.com")}
        result = market_share_over_time(
            [None, snap1], ["a.com"], company_map, ["google"]
        )
        series = result["google"]
        assert math.isnan(series.percents[0])
        assert series.percents[1] == 100.0
        assert series.first_measured == 100.0
        assert series.last_measured == 100.0
        assert series.delta_percent() == 0.0

    def test_self_hosted_included_by_default(self, company_map):
        snap = {"a.com": inferred("a.com", "a.com")}
        result = market_share_over_time([snap], ["a.com"], company_map, ["google"])
        assert result[SELF_LABEL].percents == (100.0,)
        assert result[SELF_LABEL].display == "Self-Hosted"

    def test_total_series(self, company_map):
        snap = {
            "a.com": inferred("a.com", "google.com"),
            "b.com": inferred("b.com", "outlook.com"),
        }
        result = market_share_over_time(
            [snap], ["a.com", "b.com"], company_map, ["google", "microsoft"]
        )
        total = result.total_series(["google", "microsoft"])
        assert total.percents == (100.0,)

    def test_total_series_nan_propagates(self, company_map):
        result = market_share_over_time([None], ["a.com"], company_map, ["google"])
        total = result.total_series(["google"])
        assert math.isnan(total.percents[0])


class TestChurn:
    def _snapshots(self):
        first = {
            "stay-google.com": inferred("stay-google.com", "google.com"),
            "to-ms.com": inferred("to-ms.com", "google.com"),
            "self-to-google.com": inferred("self-to-google.com", "self-to-google.com"),
            "always-dead.com": DomainInference(
                domain="always-dead.com", status=DomainStatus.NO_SMTP
            ),
            "small.com": inferred("small.com", "zoho.com"),
        }
        last = {
            "stay-google.com": inferred("stay-google.com", "google.com"),
            "to-ms.com": inferred("to-ms.com", "outlook.com"),
            "self-to-google.com": inferred("self-to-google.com", "google.com"),
            "always-dead.com": DomainInference(
                domain="always-dead.com", status=DomainStatus.NO_SMTP
            ),
            "small.com": inferred("small.com", "zoho.com"),
        }
        return first, last

    def test_flow_matrix(self, company_map):
        first, last = self._snapshots()
        domains = sorted(first)
        matrix = churn_matrix(first, last, domains, company_map, top3_count=2)
        assert matrix.flow("Google", "Google") == 1
        assert matrix.flow(CATEGORY_SELF, "Google") == 1
        assert matrix.flow(CATEGORY_NO_SMTP, CATEGORY_NO_SMTP) == 1
        assert matrix.total == len(domains)

    def test_node_accounting(self, company_map):
        first, last = self._snapshots()
        matrix = churn_matrix(first, last, sorted(first), company_map, top3_count=2)
        assert matrix.stayed("Google") == 1
        assert matrix.outgoing("Google") == 1   # to-ms.com left
        assert matrix.incoming("Google") == 1   # self-to-google.com arrived
        assert matrix.total_from("Google") == 2
        assert matrix.total_to("Google") == 2

    def test_missing_inference_is_no_smtp(self, company_map):
        category = domain_category("x.com", None, company_map, [], set())
        assert category == CATEGORY_NO_SMTP

    def test_top100_bucketing(self, company_map):
        inference = inferred("x.com", "zoho.com")
        category = domain_category(
            "x.com", inference, company_map, ["google"], {"zoho"}
        )
        assert category == CATEGORY_TOP100

    def test_sankey_export(self, company_map):
        first, last = self._snapshots()
        matrix = churn_matrix(first, last, sorted(first), company_map, top3_count=2)
        sankey = matrix.to_sankey("2017", "2021")
        node_ids = {node["id"] for node in sankey["nodes"]}
        assert "Google 2017" in node_ids and "Google 2021" in node_ids
        assert all(link["value"] > 0 for link in sankey["links"])
        assert sum(link["value"] for link in sankey["links"]) == matrix.total
        for link in sankey["links"]:
            assert link["source"] in node_ids and link["target"] in node_ids
