"""Unit tests for the accuracy-evaluation machinery (Figure 4 internals)."""

import random
from datetime import date

import pytest

from repro.analysis.accuracy import (
    AccuracyCell,
    evaluate_approaches,
    inference_labels,
    is_correct,
    sample_with_smtp,
    truth_labels,
    unique_mx_domains,
)
from repro.core.baselines import ALL_APPROACHES, APPROACH_PRIORITY
from repro.core.companies import CompanyMap
from repro.core.types import DomainInference, DomainStatus
from repro.measure.censys import Port25State, PortScanRecord
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.world.catalog import CATALOG

DAY = date(2021, 6, 8)


@pytest.fixture(scope="module")
def company_map():
    return CompanyMap.from_specs(CATALOG)


def measurement(domain, mx_names, with_smtp=True):
    scan = PortScanRecord(
        address="11.0.0.1", scanned_on=DAY,
        state=Port25State.OPEN if with_smtp else Port25State.TIMEOUT,
        banner="x" if with_smtp else None,
    )
    return DomainMeasurement(
        domain=domain,
        measured_on=DAY,
        mx_set=tuple(
            MXData(name, 10, (IPObservation("11.0.0.1", None, scan),))
            for name in mx_names
        ),
    )


class TestLabelNormalization:
    def test_truth_labels(self):
        assert truth_labels({"google": 1.0}) == {"google"}
        assert truth_labels({"SELF": 1.0}) == {"SELF"}
        assert truth_labels({"NONE": 1.0}) == {"NONE"}
        assert truth_labels({"google": 0.5, "microsoft": 0.5}) == {"google", "microsoft"}

    def test_inference_labels_statuses(self, company_map):
        for status in (DomainStatus.NO_SMTP, DomainStatus.NO_MX, DomainStatus.NO_MX_IP):
            inference = DomainInference(domain="x.com", status=status)
            assert inference_labels(inference, company_map) == {"NONE"}

    def test_inference_labels_resolution(self, company_map):
        inference = DomainInference(
            domain="x.com", status=DomainStatus.INFERRED,
            attributions={"googlemail.com": 1.0},
        )
        assert inference_labels(inference, company_map) == {"google"}

    def test_is_correct_split(self, company_map):
        inference = DomainInference(
            domain="x.com", status=DomainStatus.INFERRED,
            attributions={"google.com": 0.5, "outlook.com": 0.5},
        )
        assert is_correct(inference, {"google": 0.5, "microsoft": 0.5}, company_map)
        assert not is_correct(inference, {"google": 1.0}, company_map)

    def test_is_correct_none_statuses(self, company_map):
        inference = DomainInference(domain="x.com", status=DomainStatus.NO_SMTP)
        assert is_correct(inference, {"NONE": 1.0}, company_map)
        assert not is_correct(inference, {"google": 1.0}, company_map)


class TestUniqueMX:
    def test_shared_mx_excluded(self):
        measurements = {
            "a.com": measurement("a.com", ["mx.shared.net"]),
            "b.com": measurement("b.com", ["mx.shared.net"]),
            "c.com": measurement("c.com", ["mx.c.com"]),
        }
        assert unique_mx_domains(measurements) == ["c.com"]

    def test_all_mx_must_be_unique(self):
        measurements = {
            "a.com": measurement("a.com", ["mx.own.com", "mx.shared.net"]),
            "b.com": measurement("b.com", ["mx.shared.net"]),
        }
        assert unique_mx_domains(measurements) == []

    def test_no_mx_excluded(self):
        measurements = {"a.com": measurement("a.com", [])}
        assert unique_mx_domains(measurements) == []


class TestSampling:
    def test_only_smtp_domains(self):
        measurements = {
            "live.com": measurement("live.com", ["mx.live.com"], with_smtp=True),
            "dead.com": measurement("dead.com", ["mx.dead.com"], with_smtp=False),
        }
        sample = sample_with_smtp(measurements, sorted(measurements), 10, random.Random(1))
        assert sample == ["live.com"]

    def test_sample_size_respected(self):
        measurements = {
            f"d{i}.com": measurement(f"d{i}.com", [f"mx.d{i}.com"]) for i in range(50)
        }
        sample = sample_with_smtp(measurements, sorted(measurements), 10, random.Random(1))
        assert len(sample) == 10

    def test_deterministic_given_seed(self):
        measurements = {
            f"d{i}.com": measurement(f"d{i}.com", [f"mx.d{i}.com"]) for i in range(50)
        }
        a = sample_with_smtp(measurements, sorted(measurements), 10, random.Random(7))
        b = sample_with_smtp(measurements, sorted(measurements), 10, random.Random(7))
        assert a == b


class TestEvaluateApproaches:
    def test_missing_approach_rejected(self, company_map):
        with pytest.raises(ValueError):
            evaluate_approaches(
                "x", {}, {"mx-only": {}}, lambda d: {}, company_map
            )

    def test_cells_cover_grid(self, company_map):
        measurements = {
            f"d{i}.com": measurement(f"d{i}.com", [f"mx.d{i}.com"]) for i in range(30)
        }
        inferences = {
            domain: DomainInference(
                domain=domain, status=DomainStatus.INFERRED,
                attributions={domain: 1.0},
            )
            for domain in measurements
        }
        per_approach = {approach: inferences for approach in ALL_APPROACHES}
        evaluation = evaluate_approaches(
            "x", measurements, per_approach,
            lambda d: {"SELF": 1.0}, company_map, sample_size=10,
        )
        assert len(evaluation.cells) == 8  # 2 sample sets × 4 approaches
        cell = evaluation.cell("x", APPROACH_PRIORITY)
        assert cell.accuracy == 1.0

    def test_cell_lookup_missing(self):
        from repro.analysis.accuracy import AccuracyEvaluation

        with pytest.raises(KeyError):
            AccuracyEvaluation(cells=[]).cell("x", "mx-only")

    def test_accuracy_cell_zero_division(self):
        assert AccuracyCell("s", "a", 0, 0).accuracy == 0.0
