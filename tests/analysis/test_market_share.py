"""Unit tests for market-share aggregation."""

import pytest

from repro.analysis.market_share import (
    compute_market_share,
    self_hosted_count,
    top_rows_with_display,
)
from repro.core.companies import SELF_LABEL, CompanyMap
from repro.core.types import DomainInference, DomainStatus
from repro.world.catalog import CATALOG


@pytest.fixture(scope="module")
def company_map():
    return CompanyMap.from_specs(CATALOG)


def inferred(domain, attributions):
    return DomainInference(
        domain=domain, status=DomainStatus.INFERRED, attributions=attributions
    )


@pytest.fixture
def inferences():
    return {
        "a.com": inferred("a.com", {"google.com": 1.0}),
        "b.com": inferred("b.com", {"googlemail.com": 1.0}),  # merges into google
        "c.com": inferred("c.com", {"outlook.com": 1.0}),
        "d.com": inferred("d.com", {"d.com": 1.0}),           # self-hosted
        "e.com": inferred("e.com", {"google.com": 0.5, "outlook.com": 0.5}),
        "f.com": DomainInference(domain="f.com", status=DomainStatus.NO_SMTP),
    }


class TestComputeMarketShare:
    def test_weights(self, inferences, company_map):
        domains = sorted(inferences)
        share = compute_market_share(inferences, domains, company_map)
        assert share.count_of("google") == pytest.approx(2.5)
        assert share.count_of("microsoft") == pytest.approx(1.5)
        assert share.count_of(SELF_LABEL) == pytest.approx(1.0)

    def test_percentages_use_full_denominator(self, inferences, company_map):
        domains = sorted(inferences)
        share = compute_market_share(inferences, domains, company_map)
        assert share.total_domains == 6
        assert share.share_of("google") == pytest.approx(2.5 / 6)

    def test_non_inferred_contribute_nothing(self, inferences, company_map):
        domains = sorted(inferences)
        share = compute_market_share(inferences, domains, company_map)
        total_weight = sum(share.weights.values())
        assert total_weight == pytest.approx(5.0)  # f.com contributes 0

    def test_subset_of_domains(self, inferences, company_map):
        share = compute_market_share(inferences, ["a.com", "c.com"], company_map)
        assert share.count_of("google") == pytest.approx(1.0)
        assert share.total_domains == 2

    def test_missing_domains_ignored(self, inferences, company_map):
        share = compute_market_share(inferences, ["a.com", "zz.com"], company_map)
        assert share.count_of("google") == pytest.approx(1.0)
        assert share.total_domains == 2

    def test_empty(self, company_map):
        share = compute_market_share({}, [], company_map)
        assert share.share_of("google") == 0.0


class TestRanking:
    def test_top_excludes_self(self, inferences, company_map):
        share = compute_market_share(inferences, sorted(inferences), company_map)
        rows = share.top(10)
        assert [row.label for row in rows][:2] == ["google", "microsoft"]
        assert SELF_LABEL not in [row.label for row in rows]

    def test_rank_numbers(self, inferences, company_map):
        share = compute_market_share(inferences, sorted(inferences), company_map)
        rows = share.top(2)
        assert [row.rank for row in rows] == [1, 2]

    def test_display_names(self, inferences, company_map):
        share = compute_market_share(inferences, sorted(inferences), company_map)
        rows = top_rows_with_display(share, company_map, 2)
        assert rows[0].display == "Google"
        assert rows[1].display == "Microsoft"

    def test_self_hosted_count(self, inferences, company_map):
        share = compute_market_share(inferences, sorted(inferences), company_map)
        assert self_hosted_count(share) == pytest.approx(1.0)

    def test_deterministic_tie_break(self, company_map):
        inferences = {
            "a.com": inferred("a.com", {"google.com": 1.0}),
            "b.com": inferred("b.com", {"outlook.com": 1.0}),
        }
        share = compute_market_share(inferences, ["a.com", "b.com"], company_map)
        assert [row.label for row in share.top(2)] == ["google", "microsoft"]
