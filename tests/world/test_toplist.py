"""Unit tests for toplist churn and stable-corpus construction (§4.1)."""

import pytest

from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS
from repro.world.toplist import (
    CorpusFunnel,
    ToplistSimulator,
    build_study_corpus,
    stable_domains,
)


@pytest.fixture(scope="module")
def simulator(small_world):
    return ToplistSimulator(small_world, churn_rate=0.25, seed=99)


class TestToplistSimulator:
    def test_ranks_are_dense_from_one(self, simulator):
        entries = simulator.snapshot(0)
        assert [entry.rank for entry in entries[:5]] == [1, 2, 3, 4, 5]
        assert entries[-1].rank == len(entries)

    def test_stable_domains_on_every_list(self, simulator, small_world):
        alexa = {entity.name for entity in small_world.domains_in(DatasetTag.ALEXA)}
        for index in range(NUM_SNAPSHOTS):
            listed = {entry.domain for entry in simulator.snapshot(index)}
            assert alexa <= listed

    def test_churners_present_and_ephemeral(self, simulator, small_world):
        alexa = {entity.name for entity in small_world.domains_in(DatasetTag.ALEXA)}
        first = {entry.domain for entry in simulator.snapshot(0)} - alexa
        second = {entry.domain for entry in simulator.snapshot(1)} - alexa
        assert first and second
        assert not (first & second)  # churners never repeat

    def test_churn_rate_respected(self, simulator, small_world):
        alexa_count = len(small_world.domains_in(DatasetTag.ALEXA))
        entries = simulator.snapshot(0)
        churners = len(entries) - alexa_count
        fraction = churners / len(entries)
        assert 0.18 < fraction < 0.32

    def test_rank_jitter_changes_order(self, simulator):
        first = [entry.domain for entry in simulator.snapshot(0)][:200]
        second = [entry.domain for entry in simulator.snapshot(1)][:200]
        assert first != second

    def test_deterministic(self, small_world):
        a = ToplistSimulator(small_world, seed=5).snapshot(3)
        b = ToplistSimulator(small_world, seed=5).snapshot(3)
        assert a == b

    def test_bad_snapshot_index(self, simulator):
        with pytest.raises(IndexError):
            simulator.snapshot(NUM_SNAPSHOTS)

    def test_bad_churn_rate(self, small_world):
        with pytest.raises(ValueError):
            ToplistSimulator(small_world, churn_rate=1.0)


class TestStableDomains:
    def test_intersection_semantics(self, simulator, small_world):
        stable = stable_domains(simulator.all_snapshots())
        alexa = {entity.name for entity in small_world.domains_in(DatasetTag.ALEXA)}
        assert set(stable) == alexa  # churners all filtered out

    def test_empty(self):
        assert stable_domains([]) == []


class TestCorpusFunnel:
    def test_full_recipe(self, ctx):
        funnel = build_study_corpus(ctx.world, ctx.gatherer.openintel)
        # Funnel narrows monotonically, as in §4.1.
        assert funnel.union_domains > funnel.list_stable >= funnel.mx_stable
        assert funnel.churn_loss > 0
        assert len(funnel.corpus) == funnel.mx_stable
        # The final corpus keeps the overwhelming majority of stable
        # domains (only dangling-MX-style domains drop out).
        assert funnel.mx_stable > funnel.list_stable * 0.9

    def test_corpus_members_have_mx_everywhere(self, ctx):
        funnel = build_study_corpus(ctx.world, ctx.gatherer.openintel)
        for domain in funnel.corpus[:20]:
            for index in range(NUM_SNAPSHOTS):
                record = ctx.gatherer.openintel.measure_domain(domain, index)
                assert record is not None and record.has_mx
