"""Integration-style unit tests for the world builder."""

from collections import Counter

import pytest

from repro.dnscore import RRType
from repro.world.build import SHOWCASE_DOMAINS, WorldConfig, build_world
from repro.world.entities import (
    CompanyKind,
    DatasetTag,
    ProvisioningStyle,
    TRUTH_NONE,
    TRUTH_SELF,
)
from repro.world.population import NUM_SNAPSHOTS


class TestWorldConfig:
    def test_scaled(self):
        config = WorldConfig(alexa_size=1000, com_size=2000, gov_size=400)
        half = config.scaled(0.5)
        assert (half.alexa_size, half.com_size, half.gov_size) == (500, 1000, 200)
        assert half.seed == config.seed

    def test_scaled_never_zero(self):
        assert WorldConfig(alexa_size=10).scaled(0.01).alexa_size == 1


class TestWorldStructure:
    def test_corpus_sizes(self, small_world):
        by_dataset = Counter(e.dataset for e in small_world.domains.values())
        config = small_world.config
        assert abs(by_dataset[DatasetTag.ALEXA] - config.alexa_size) <= 3
        assert by_dataset[DatasetTag.COM] == config.com_size
        assert by_dataset[DatasetTag.GOV] == config.gov_size

    def test_one_zonedb_per_snapshot(self, small_world):
        assert len(small_world.snapshot_zones) == NUM_SNAPSHOTS

    def test_every_domain_has_all_assignments(self, small_world):
        for entity in small_world.domains.values():
            assert len(entity.assignments) == NUM_SNAPSHOTS

    def test_showcase_domains_present(self, small_world):
        assert set(small_world.showcase) == set(SHOWCASE_DOMAINS)
        for entity in small_world.showcase.values():
            assert len(entity.assignments) == NUM_SNAPSHOTS

    def test_alexa_domains_have_ranks(self, small_world):
        for entity in small_world.domains_in(DatasetTag.ALEXA):
            assert entity.alexa_rank is not None
            assert 1 <= entity.alexa_rank <= 1_000_000

    def test_gov_has_federal_and_nonfederal(self, small_world):
        gov = small_world.domains_in(DatasetTag.GOV)
        assert any(e.is_federal for e in gov)
        assert any(not e.is_federal for e in gov)

    def test_cctlds_populated(self, small_world):
        cctlds = {e.cctld for e in small_world.domains_in(DatasetTag.ALEXA) if e.cctld}
        assert {"ru", "de", "br", "cn"} <= cctlds

    def test_companies_include_others_pool(self, small_world):
        kinds = Counter(infra.spec.kind for infra in small_world.companies.values())
        assert kinds[CompanyKind.OTHER] == small_world.config.num_other_providers


class TestDNSMaterialization:
    def test_mx_records_present_at_every_snapshot(self, small_world):
        entity = next(iter(small_world.domains.values()))
        for zdb in small_world.snapshot_zones:
            rrset = zdb.lookup(entity.name, RRType.MX)
            assignment = entity.assignment_at(small_world.snapshot_zones.index(zdb))
            assert len(rrset) >= 1

    def test_provider_named_mx_resolves_to_provider_as(self, small_world):
        checked = 0
        for entity in small_world.domains.values():
            assignment = entity.assignment_at(NUM_SNAPSHOTS - 1)
            if (
                assignment.style is ProvisioningStyle.PROVIDER_NAMED
                and assignment.company_slug == "google"
            ):
                zdb = small_world.snapshot_zones[-1]
                mx = zdb.lookup(entity.name, RRType.MX).sorted_by_preference()[0]
                addresses = zdb.lookup(mx.rdata, RRType.A).rdatas()
                assert addresses, entity.name
                for address in addresses:
                    assert small_world.registry.lookup_asn(address) == 15169
                checked += 1
                if checked >= 5:
                    break
        assert checked > 0

    def test_dangling_mx_does_not_resolve(self, small_world):
        found = False
        zdb = small_world.snapshot_zones[-1]
        for entity in small_world.domains.values():
            assignment = entity.assignment_at(NUM_SNAPSHOTS - 1)
            if assignment.style is ProvisioningStyle.DANGLING_MX:
                mx = zdb.lookup(entity.name, RRType.MX).records[0]
                assert zdb.lookup(mx.rdata, RRType.A).rdatas() == []
                found = True
                break
        assert found

    def test_self_hosted_server_bound(self, small_world):
        zdb = small_world.snapshot_zones[-1]
        found = False
        for entity in small_world.domains.values():
            assignment = entity.assignment_at(NUM_SNAPSHOTS - 1)
            if assignment.style is ProvisioningStyle.SELF_HOSTED:
                mx = zdb.lookup(entity.name, RRType.MX).records[0]
                addresses = zdb.lookup(mx.rdata, RRType.A).rdatas()
                assert addresses
                server = small_world.host_table.get(addresses[0])
                assert server is not None
                assert server.identity == f"mx.{entity.name}"
                found = True
                break
        assert found


class TestGroundTruth:
    def test_ground_truth_weights_sum_to_one(self, small_world):
        for entity in list(small_world.domains.values())[:200]:
            truth = small_world.ground_truth(entity.name, NUM_SNAPSHOTS - 1)
            assert sum(truth.values()) == pytest.approx(1.0)

    def test_self_and_none_present(self, small_world):
        truths = Counter(
            entity.assignment_at(NUM_SNAPSHOTS - 1).truth
            for entity in small_world.domains.values()
        )
        assert truths[TRUTH_SELF] > 0
        assert truths[TRUTH_NONE] > 0

    def test_split_mx_truth(self, small_world):
        for entity in small_world.domains.values():
            assignment = entity.assignment_at(NUM_SNAPSHOTS - 1)
            if assignment.secondary_slug is not None:
                truth = small_world.ground_truth(entity.name, NUM_SNAPSHOTS - 1)
                assert len(truth) == 2
                assert all(weight == 0.5 for weight in truth.values())
                return
        # Split MX is rare (0.5%); a small world may legitimately have none.

    def test_coverage_map(self, small_world):
        eig_asn = small_world.companies["eig"].spec.primary_asn
        eig_block = next(
            block for block in small_world.registry.blocks() if block.asn == eig_asn
        )
        address = str(eig_block.prefix.first + 1)
        assert small_world.censys_coverage_for(address) < 0.5
        assert small_world.censys_coverage_for("203.0.113.7") == pytest.approx(0.97)


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig(seed=42, alexa_size=80, com_size=80, gov_size=40)
        first = build_world(config)
        second = build_world(config)
        assert set(first.domains) == set(second.domains)
        for name in first.domains:
            a = first.domains[name].assignments
            b = second.domains[name].assignments
            assert [(x.truth, x.style) for x in a] == [(y.truth, y.style) for y in b]

    def test_different_seed_different_world(self):
        first = build_world(WorldConfig(seed=1, alexa_size=80, com_size=80, gov_size=40))
        second = build_world(WorldConfig(seed=2, alexa_size=80, com_size=80, gov_size=40))
        assert set(first.domains) != set(second.domains)
