"""Unit tests for trajectories and share tables."""

import pytest

from repro.world.population import (
    ALEXA_BUCKETS,
    CCTLD_WEIGHTS_HEAD,
    CCTLD_WEIGHTS_TAIL,
    GOV_FIRST_SNAPSHOT,
    NUM_SNAPSHOTS,
    SNAPSHOT_DATES,
    Trajectory,
    all_share_tables,
    iter_alexa_buckets,
    snapshot_fraction,
    synth_label,
    table_total_at,
    traj,
    validate_table,
)


class TestSnapshots:
    def test_nine_semiannual_snapshots(self):
        assert NUM_SNAPSHOTS == 9
        assert SNAPSHOT_DATES[0].year == 2017 and SNAPSHOT_DATES[-1].year == 2021

    def test_dates_strictly_increasing(self):
        assert list(SNAPSHOT_DATES) == sorted(SNAPSHOT_DATES)

    def test_gov_coverage_starts_2018(self):
        assert SNAPSHOT_DATES[GOV_FIRST_SNAPSHOT].year == 2018

    def test_snapshot_fraction_endpoints(self):
        assert snapshot_fraction(0) == 0.0
        assert snapshot_fraction(NUM_SNAPSHOTS - 1) == 1.0


class TestTrajectory:
    def test_constant(self):
        assert traj(0.25).at(0.0) == 0.25
        assert traj(0.25).at(1.0) == 0.25

    def test_linear_interpolation(self):
        t = traj(0.10, 0.30)
        assert t.at(0.0) == pytest.approx(0.10)
        assert t.at(0.5) == pytest.approx(0.20)
        assert t.at(1.0) == pytest.approx(0.30)

    def test_midpoint_breakpoints(self):
        t = Trajectory(points=((0.0, 0.10), (0.5, 0.20), (1.0, 0.05)))
        assert t.at(0.25) == pytest.approx(0.15)
        assert t.at(0.75) == pytest.approx(0.125)

    def test_clamping(self):
        t = traj(0.10, 0.30)
        assert t.at(-1.0) == 0.10
        assert t.at(2.0) == 0.30

    def test_unordered_breakpoints_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(points=((0.5, 0.1), (0.0, 0.2)))

    def test_out_of_range_share_rejected(self):
        with pytest.raises(ValueError):
            traj(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(points=())


class TestShareTables:
    def test_all_tables_within_capacity(self):
        for name, table in all_share_tables().items():
            validate_table(table)  # raises on violation

    def test_alexa_buckets_cover_corpus(self):
        assert sum(fraction for _, _, fraction, _, _ in ALEXA_BUCKETS) == pytest.approx(1.0)

    def test_bucket_ranges_disjoint_and_ordered(self):
        previous_high = 0
        for low, high, _, _, _ in ALEXA_BUCKETS:
            assert low == previous_high + 1
            assert high > low
            previous_high = high

    def test_com_dominated_by_godaddy(self):
        table = all_share_tables()["com"]
        final = {name: trajectory.at(1.0) for name, trajectory in table.items()}
        assert final["godaddy"] == max(
            share for name, share in final.items() if name not in ("NONE",)
        )

    def test_gov_dominated_by_microsoft(self):
        table = all_share_tables()["gov_nonfederal"]
        final = {name: trajectory.at(1.0) for name, trajectory in table.items()}
        assert final["microsoft"] == max(
            share for name, share in final.items() if name not in ("NONE",)
        )

    def test_self_hosting_declines_everywhere(self):
        for name, table in all_share_tables().items():
            self_trajectory = table["SELF"]
            assert self_trajectory.at(1.0) < self_trajectory.at(0.0), name

    def test_google_and_microsoft_rise_in_alexa(self):
        table = all_share_tables()["alexa_gtld_tail"]
        for label in ("google", "microsoft"):
            assert table[label].at(1.0) > table[label].at(0.0)

    def test_yandex_confined_to_ru(self):
        tables = all_share_tables()
        ru_share = tables["alexa_cctld_ru"]["yandex"].at(1.0)
        for cctld in ("br", "de", "cn", "jp"):
            assert tables[f"alexa_cctld_{cctld}"]["yandex"].at(1.0) < ru_share / 10

    def test_tencent_confined_to_cn(self):
        tables = all_share_tables()
        cn_share = tables["alexa_cctld_cn"]["tencent"].at(1.0)
        for cctld in ("br", "de", "ru", "uk"):
            assert tables[f"alexa_cctld_{cctld}"]["tencent"].at(1.0) < cn_share / 10

    def test_table_total_helper(self):
        table = {"a": traj(0.3), "b": traj(0.2)}
        assert table_total_at(table, 0.5) == pytest.approx(0.5)


class TestAlexaBucketIteration:
    """Guard the out-of-core invariant: buckets stream, never materialize.

    The world builder walks Alexa buckets one at a time so a large
    ``REPRO_SCALE`` never allocates per-bucket domain lists up front.
    Reverting ``iter_alexa_buckets`` to return a list (or reordering its
    yields) would silently change RNG consumption order and break
    bit-identity, so both properties are pinned here.
    """

    def test_is_a_generator_function(self):
        import inspect

        assert inspect.isgeneratorfunction(iter_alexa_buckets)

    def test_yields_in_declaration_order(self):
        spans = [(b.low, b.high) for b in iter_alexa_buckets(1000)]
        assert spans == [(low, high) for low, high, *_ in ALEXA_BUCKETS]

    def test_counts_match_fraction_sizing(self):
        for size in (1, 130, 1000, 100_000):
            buckets = list(iter_alexa_buckets(size))
            assert [b.count for b in buckets] == [
                max(1, round(fraction * size))
                for _, _, fraction, _, _ in ALEXA_BUCKETS
            ]

    def test_head_buckets_use_head_cc_weights(self):
        buckets = list(iter_alexa_buckets(1000))
        assert all(b.cc_weights is CCTLD_WEIGHTS_HEAD for b in buckets[:2])
        assert all(b.cc_weights is CCTLD_WEIGHTS_TAIL for b in buckets[2:])

    def test_tables_passed_through_unchanged(self):
        for bucket, (_, _, _, table, cc_fraction) in zip(
            iter_alexa_buckets(500), ALEXA_BUCKETS
        ):
            assert bucket.table is table
            assert bucket.cc_fraction == cc_fraction


class TestSynthLabel:
    def test_deterministic(self):
        import random

        assert synth_label(random.Random(5)) == synth_label(random.Random(5))

    def test_valid_dns_label(self):
        import random

        from repro.dnscore.names import is_valid_hostname

        rng = random.Random(11)
        for _ in range(100):
            assert is_valid_hostname(synth_label(rng))
