"""Unit tests for the company catalog."""

from repro.dnscore.names import is_valid_hostname
from repro.world.catalog import (
    CATALOG,
    GODADDY,
    GOOGLE,
    MICROSOFT,
    PROOFPOINT,
    catalog_by_slug,
    hosting_companies,
    mail_companies,
    security_companies,
)
from repro.world.entities import CompanyKind


class TestCatalogIntegrity:
    def test_slugs_unique(self):
        slugs = [spec.slug for spec in CATALOG]
        assert len(slugs) == len(set(slugs))

    def test_provider_ids_are_hostnames(self):
        for spec in CATALOG:
            for provider_id in spec.provider_ids:
                assert is_valid_hostname(provider_id), provider_id

    def test_every_company_has_asn(self):
        for spec in CATALOG:
            assert spec.asns, spec.slug

    def test_mx_fqdns_are_hostnames(self):
        for spec in CATALOG:
            for fqdn in spec.mx_fqdns:
                assert is_valid_hostname(fqdn), fqdn

    def test_catalog_by_slug_roundtrip(self):
        index = catalog_by_slug()
        assert index["google"] is GOOGLE
        assert len(index) == len(CATALOG)

    def test_provider_ids_unique_across_companies(self):
        seen = {}
        for spec in CATALOG:
            for provider_id in spec.provider_ids:
                assert provider_id not in seen, (provider_id, spec.slug, seen.get(provider_id))
                seen[provider_id] = spec.slug


class TestPaperStructure:
    def test_proofpoint_has_four_ases(self):
        """Table 5: ProofPoint operates from four ASes."""
        assert len(PROOFPOINT.asns) == 4
        assert {asn.number for asn in PROOFPOINT.asns} == {22843, 26211, 52129, 13916}

    def test_proofpoint_provider_ids(self):
        assert set(PROOFPOINT.provider_ids) == {
            "pphosted.com", "ppe-hosted.com", "gpphosted.com", "ppops.net",
        }

    def test_microsoft_regional_ids(self):
        """Table 5: Microsoft's regional provider IDs and partner ASes."""
        assert "outlook.de" in MICROSOFT.provider_ids
        assert "office365.us" in MICROSOFT.provider_ids
        assert {asn.number for asn in MICROSOFT.asns} == {8075, 200517, 58593}

    def test_google_cert_structure(self):
        """Section 2.3: Gmail's cert has CN mx.google.com + smtp.goog SAN."""
        assert GOOGLE.cert_cn == "mx.google.com"
        assert "mx1.smtp.goog" in GOOGLE.cert_extra_sans

    def test_godaddy_vps_patterns(self):
        """Section 3.2.4's GoDaddy hostname heuristics."""
        import re

        assert GODADDY.vps_cert_domain == "secureserver.net"
        assert re.match(GODADDY.vps_host_pattern, "s1-2-3.secureserver.net")
        assert re.match(GODADDY.dedicated_host_pattern, "mailstore1.secureserver.net")
        assert not re.match(GODADDY.vps_host_pattern, "mailstore1.secureserver.net")

    def test_kind_queries(self):
        assert {spec.slug for spec in security_companies()} >= {
            "proofpoint", "mimecast", "barracuda", "ironport", "appriver",
        }
        assert {spec.slug for spec in hosting_companies()} >= {
            "godaddy", "ovh", "unitedinternet", "namecheap", "eig",
        }
        mail_slugs = {spec.slug for spec in mail_companies()}
        assert "google" in mail_slugs
        assert "google_cloud" not in mail_slugs  # cloud: no MX infrastructure

    def test_eig_flaky_scan_coverage(self):
        """The paper: Censys only intermittently scans EIG."""
        eig = catalog_by_slug()["eig"]
        assert eig.censys_coverage < 0.5

    def test_ironport_presents_customer_certs(self):
        ironport = catalog_by_slug()["ironport"]
        assert ironport.customer_cert_fraction > 0

    def test_kinds_present(self):
        kinds = {spec.kind for spec in CATALOG}
        assert kinds >= {
            CompanyKind.MAILBOX, CompanyKind.SECURITY,
            CompanyKind.HOSTING, CompanyKind.CLOUD, CompanyKind.AGENCY,
        }
