"""Unit tests for per-domain wiring corner cases (over the small world)."""

from repro.dnscore import RRType
from repro.world.entities import DatasetTag, ProvisioningStyle
from repro.world.population import NUM_SNAPSHOTS

LAST = NUM_SNAPSHOTS - 1


def find_styled(world, style, snapshot=LAST):
    for entity in world.domains.values():
        if entity.assignment_at(snapshot).style is style:
            yield entity


def mx_and_addresses(world, entity, snapshot=LAST):
    zdb = world.snapshot_zones[snapshot]
    records = zdb.lookup(entity.name, RRType.MX).sorted_by_preference()
    assert records
    primary = records[0]
    return primary, zdb.lookup(primary.rdata, RRType.A).rdatas()


class TestCustomerNamed:
    def test_mx_under_own_name_points_at_provider(self, small_world):
        entity = next(find_styled(small_world, ProvisioningStyle.CUSTOMER_NAMED))
        mx, addresses = mx_and_addresses(small_world, entity)
        assert mx.rdata == f"mailhost.{entity.name}"
        assert addresses
        slug = entity.assignment_at(LAST).company_slug
        spec = small_world.companies[slug].spec
        company_asns = {asn.number for asn in spec.asns}
        for address in addresses:
            assert small_world.registry.lookup_asn(address) in company_asns


class TestHostingDefault:
    def test_mx_is_mx_dot_domain(self, small_world):
        entity = next(find_styled(small_world, ProvisioningStyle.HOSTING_DEFAULT))
        mx, addresses = mx_and_addresses(small_world, entity)
        assert mx.rdata == f"mx.{entity.name}"
        assert addresses
        server = small_world.host_table.get(addresses[0])
        assert server is not None
        # The server identifies as the hosting company, not the customer.
        assert entity.name not in (server.identity or "")


class TestVPS:
    def test_vps_cert_under_hosting_domain(self, small_world):
        for entity in find_styled(small_world, ProvisioningStyle.SELF_ON_VPS):
            _mx, addresses = mx_and_addresses(small_world, entity)
            server = small_world.host_table.get(addresses[0])
            assert server is not None and server.certificate is not None
            # Certificate is NOT under the customer's own domain.
            assert not server.certificate.subject_cn.endswith(entity.name)
            return
        raise AssertionError("no VPS-style domain in world")

    def test_large_host_vps_matches_step4_pattern(self, small_world):
        import re

        patterns = [
            re.compile(small_world.companies[slug].spec.vps_host_pattern)
            for slug in ("godaddy", "ovh")
        ]
        matched = 0
        for entity in find_styled(small_world, ProvisioningStyle.SELF_ON_VPS):
            _mx, addresses = mx_and_addresses(small_world, entity)
            server = small_world.host_table.get(addresses[0])
            if server and server.certificate and any(
                pattern.match(server.certificate.subject_cn) for pattern in patterns
            ):
                matched += 1
        assert matched > 0


class TestSpoofed:
    def test_banner_claims_google_outside_google_as(self, small_world):
        for entity in find_styled(small_world, ProvisioningStyle.SELF_SPOOFED):
            _mx, addresses = mx_and_addresses(small_world, entity)
            server = small_world.host_table.get(addresses[0])
            assert server is not None
            assert server.identity == "mx.google.com"
            assert small_world.registry.lookup_asn(addresses[0]) != 15169
            # Self-signed only — a CA would never issue this.
            assert server.certificate is None or server.certificate.self_signed
            return
        raise AssertionError("no spoofed-style domain in world")


class TestMisconfigured:
    def test_banner_has_no_usable_fqdn(self, small_world):
        from repro.smtp.banner import BannerStyle

        for entity in find_styled(small_world, ProvisioningStyle.SELF_MISCONFIGURED):
            _mx, addresses = mx_and_addresses(small_world, entity)
            server = small_world.host_table.get(addresses[0])
            assert server is not None
            assert server.banner_style in (BannerStyle.LOCALHOST, BannerStyle.DECORATED_IP)
            return
        raise AssertionError("no misconfigured-style domain in world")


class TestNoSMTP:
    def test_no_listener_at_mx_ip(self, small_world):
        for entity in find_styled(small_world, ProvisioningStyle.NO_SMTP):
            _mx, addresses = mx_and_addresses(small_world, entity)
            assert addresses
            for address in addresses:
                assert small_world.host_table.get(address) is None
            return
        raise AssertionError("no NO_SMTP-style domain in world")

    def test_cloud_variant_uses_ghs_google(self, small_world):
        entity = small_world.showcase["jeniustoto.net"]
        mx, addresses = mx_and_addresses(small_world, entity)
        assert mx.rdata == "ghs.google.com"
        assert small_world.registry.lookup_asn(addresses[0]) == 15169
        assert small_world.host_table.get(addresses[0]) is None


class TestEndpointStability:
    def test_endpoint_reused_across_snapshots(self, small_world):
        """A domain that stays self-hosted keeps its server and address."""
        for entity in small_world.domains.values():
            styles = [a.style for a in entity.assignments]
            if all(style is ProvisioningStyle.SELF_HOSTED for style in styles):
                first = mx_and_addresses(small_world, entity, 0)[1]
                last = mx_and_addresses(small_world, entity, LAST)[1]
                assert first == last
                return
        raise AssertionError("no stable self-hosted domain found")


class TestCustomerSpecificMX:
    def test_microsoft_template_mx_unique_and_resolves(self, small_world):
        zdb = small_world.snapshot_zones[LAST]
        seen = set()
        for entity in small_world.domains_in(DatasetTag.ALEXA):
            assignment = entity.assignment_at(LAST)
            if (
                assignment.company_slug == "microsoft"
                and assignment.style is ProvisioningStyle.PROVIDER_NAMED
            ):
                mx = zdb.lookup(entity.name, RRType.MX).sorted_by_preference()[0]
                is_shared_regional = bool(
                    __import__("re").match(r"^mx\d+\.", mx.rdata)
                )
                if mx.rdata.endswith(".mail.protection.outlook.com") and not is_shared_regional:
                    assert mx.rdata not in seen
                    seen.add(mx.rdata)
                    assert zdb.lookup(mx.rdata, RRType.A).rdatas()
        assert len(seen) > 2
