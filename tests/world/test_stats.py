"""Unit tests for world composition statistics."""

from repro.world.entities import CompanyKind, DatasetTag
from repro.world.stats import collect_stats


class TestCollectStats:
    def test_corpus_sizes_match_config(self, small_world):
        stats = collect_stats(small_world)
        config = small_world.config
        assert abs(stats.corpus_sizes[DatasetTag.ALEXA] - config.alexa_size) <= 3
        assert stats.corpus_sizes[DatasetTag.COM] == config.com_size
        assert stats.corpus_sizes[DatasetTag.GOV] == config.gov_size

    def test_style_mix_covers_corner_cases(self, small_world):
        stats = collect_stats(small_world)
        assert stats.style_mix["provider_named"] > 0
        assert stats.style_mix["hosting_default"] > 0
        assert stats.style_mix["self_hosted"] > 0
        assert stats.style_mix["no_smtp"] > 0

    def test_truth_kinds(self, small_world):
        stats = collect_stats(small_world)
        assert stats.truth_kind_mix["mailbox"] > stats.truth_kind_mix["security"] > 0
        assert stats.truth_kind_mix["self"] > 0
        assert stats.truth_kind_mix["none"] > 0

    def test_company_kind_counts(self, small_world):
        stats = collect_stats(small_world)
        assert stats.company_counts[CompanyKind.OTHER] == (
            small_world.config.num_other_providers
        )
        assert stats.company_counts[CompanyKind.MAILBOX] >= 5

    def test_tld_mix(self, small_world):
        stats = collect_stats(small_world)
        assert stats.tld_mix["com"] > stats.tld_mix["gov"] > 0
        assert stats.tld_mix["ru"] > 0

    def test_totals(self, small_world):
        stats = collect_stats(small_world)
        assert stats.total_servers == len(small_world.host_table)
        assert stats.total_zones > small_world.config.alexa_size

    def test_style_totals_match_corpus(self, small_world):
        stats = collect_stats(small_world)
        assert sum(stats.style_mix.values()) == sum(stats.corpus_sizes.values())

    def test_render(self, small_world):
        text = collect_stats(small_world).render()
        assert "Corpora" in text and "SMTP servers" in text

    def test_snapshot_parameter(self, small_world):
        first = collect_stats(small_world, 0)
        last = collect_stats(small_world, 8)
        # Self-hosting shrinks between the first and last snapshot.
        assert last.truth_kind_mix["self"] < first.truth_kind_mix["self"]
