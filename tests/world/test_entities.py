"""Unit tests for the world entity model."""

import pytest

from repro.smtp.server import SMTPServerConfig
from repro.world.entities import (
    ASNSpec,
    CompanyInfra,
    CompanyKind,
    CompanySpec,
    DatasetTag,
    DomainAssignment,
    DomainEntity,
    MailHost,
    ProvisioningStyle,
    TRUTH_NONE,
    TRUTH_SELF,
)


def spec(**overrides):
    defaults = dict(
        slug="acme",
        display_name="Acme Mail",
        kind=CompanyKind.MAILBOX,
        country="US",
        asns=(ASNSpec(64512, "Acme"), ASNSpec(64513, "Acme EU", "DE")),
        provider_ids=("acmemail.net", "acme-mx.com"),
    )
    defaults.update(overrides)
    return CompanySpec(**defaults)


class TestCompanySpec:
    def test_canonical_provider_id(self):
        assert spec().canonical_provider_id == "acmemail.net"

    def test_primary_asn(self):
        assert spec().primary_asn == 64512

    def test_bad_asn_number_rejected(self):
        with pytest.raises(ValueError):
            ASNSpec(0, "zero")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            spec().slug = "other"


class TestCompanyInfra:
    def test_round_robin_hosts(self):
        infra = CompanyInfra(spec=spec())
        server = SMTPServerConfig(identity="mx1.acmemail.net", starttls=False, certificate=None)
        for index in range(2):
            infra.mx_hosts.append(
                MailHost(
                    fqdn=f"mx{index + 1}.acmemail.net",
                    addresses=[f"11.0.0.{index + 1}"],
                    server=server,
                    owner_slug="acme",
                )
            )
        picks = [infra.next_mx_host().fqdn for _ in range(4)]
        assert picks == [
            "mx1.acmemail.net", "mx2.acmemail.net",
            "mx1.acmemail.net", "mx2.acmemail.net",
        ]

    def test_no_hosts_raises(self):
        with pytest.raises(RuntimeError):
            CompanyInfra(spec=spec()).next_mx_host()


class TestDomainAssignment:
    def test_provider_assignment(self):
        assignment = DomainAssignment(
            company_slug="google", truth="google",
            style=ProvisioningStyle.PROVIDER_NAMED,
        )
        assert assignment.has_provider and not assignment.is_self_hosted

    def test_self_assignment(self):
        assignment = DomainAssignment(
            company_slug=None, truth=TRUTH_SELF,
            style=ProvisioningStyle.SELF_HOSTED,
        )
        assert assignment.is_self_hosted and not assignment.has_provider

    def test_none_assignment(self):
        assignment = DomainAssignment(
            company_slug=None, truth=TRUTH_NONE, style=ProvisioningStyle.NO_SMTP
        )
        assert not assignment.has_provider and not assignment.is_self_hosted


class TestDomainEntity:
    def test_assignment_at(self):
        entity = DomainEntity(name="x.com", dataset=DatasetTag.COM)
        first = DomainAssignment(None, TRUTH_SELF, ProvisioningStyle.SELF_HOSTED)
        second = DomainAssignment("google", "google", ProvisioningStyle.PROVIDER_NAMED)
        entity.assignments = [first, second]
        assert entity.assignment_at(0) is first
        assert entity.assignment_at(1) is second
