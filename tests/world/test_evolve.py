"""Unit tests for apportionment and longitudinal category assignment."""

import random
from collections import Counter

import pytest

from repro.world.entities import ProvisioningStyle
from repro.world.evolve import (
    SegmentEvolver,
    apportion,
    domain_fingerprint,
    pick_style,
)
from repro.world.population import NONE, NUM_SNAPSHOTS, OTHERS, SELF, traj


class TestFingerprint:
    def test_stable(self):
        assert domain_fingerprint("example.com") == domain_fingerprint("example.com")

    def test_salt_changes_value(self):
        assert domain_fingerprint("example.com", "a") != domain_fingerprint("example.com", "b")


class TestApportion:
    def test_exact_split(self):
        counts = apportion(100, {"a": 0.5, "b": 0.3})
        assert counts == {"a": 50, "b": 30, OTHERS: 20}

    def test_largest_remainder(self):
        counts = apportion(10, {"a": 0.55, "b": 0.45})
        assert counts["a"] + counts["b"] + counts[OTHERS] == 10
        assert counts["a"] in (5, 6)

    def test_total_preserved(self):
        for total in (0, 1, 7, 99, 1234):
            counts = apportion(total, {"a": 0.21, "b": 0.33, "c": 0.11})
            assert sum(counts.values()) == total

    def test_no_negative_counts(self):
        counts = apportion(3, {"a": 0.9, "b": 0.05})
        assert all(count >= 0 for count in counts.values())

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            apportion(-1, {"a": 0.5})

    def test_oversubscribed_shares_rejected(self):
        with pytest.raises(ValueError):
            apportion(100, {"a": 0.7, "b": 0.5})

    def test_shares_summing_to_exactly_one(self):
        counts = apportion(65, {"a": 0.5, "b": 0.5})
        assert sum(counts.values()) == 65
        assert all(count >= 0 for count in counts.values())

    def test_deterministic_tie_break(self):
        first = apportion(10, {"a": 0.25, "b": 0.25, "c": 0.25})
        second = apportion(10, {"a": 0.25, "b": 0.25, "c": 0.25})
        assert first == second


def make_evolver(seed=3, swap_rate=0.02):
    table = {
        "google": traj(0.20, 0.30),
        "microsoft": traj(0.10, 0.15),
        SELF: traj(0.20, 0.10),
        NONE: traj(0.05, 0.05),
    }
    return SegmentEvolver(
        table=table,
        rng=random.Random(seed),
        others_pool=("other000", "other001", "other002"),
        swap_rate=swap_rate,
    )


DOMAINS = [f"domain{i}.com" for i in range(400)]


class TestSegmentEvolver:
    def test_every_domain_has_full_sequence(self):
        assignment = make_evolver().assign(DOMAINS)
        for domain in DOMAINS:
            assert len(assignment.categories[domain]) == NUM_SNAPSHOTS

    def test_counts_match_targets(self):
        assignment = make_evolver().assign(DOMAINS)
        first = Counter(assignment.at(domain, 0) for domain in DOMAINS)
        last = Counter(assignment.at(domain, NUM_SNAPSHOTS - 1) for domain in DOMAINS)
        assert first["google"] == 80   # 20% of 400
        assert last["google"] == 120   # 30% of 400
        assert first[SELF] == 80
        assert last[SELF] == 40

    def test_others_resolved_to_pool(self):
        assignment = make_evolver().assign(DOMAINS)
        pool = {"other000", "other001", "other002"}
        named = {"google", "microsoft", SELF, NONE}
        for domain in DOMAINS:
            for category in assignment.categories[domain]:
                assert category in pool | named

    def test_others_choice_sticky(self):
        assignment = make_evolver().assign(DOMAINS)
        pool = {"other000", "other001", "other002"}
        for domain in DOMAINS:
            chosen = {
                category
                for category in assignment.categories[domain]
                if category in pool
            }
            assert len(chosen) <= 1  # one stable small provider per domain

    def test_deterministic(self):
        first = make_evolver(seed=9).assign(DOMAINS)
        second = make_evolver(seed=9).assign(DOMAINS)
        assert first.categories == second.categories

    def test_seed_changes_assignment(self):
        first = make_evolver(seed=1).assign(DOMAINS)
        second = make_evolver(seed=2).assign(DOMAINS)
        assert first.categories != second.categories

    def test_gross_churn_is_bidirectional(self):
        """Growing categories must also lose some domains (Figure 7 shape)."""
        assignment = make_evolver(swap_rate=0.03).assign(DOMAINS)
        leavers = 0
        for domain in DOMAINS:
            sequence = assignment.categories[domain]
            if sequence[0] == "google" and sequence[-1] != "google":
                leavers += 1
        assert leavers > 0

    def test_stickiness(self):
        """Most domains never change category despite drift + swaps."""
        assignment = make_evolver().assign(DOMAINS)
        stable = sum(
            1
            for domain in DOMAINS
            if len(set(assignment.categories[domain])) == 1
        )
        assert stable > len(DOMAINS) * 0.6

    def test_empty_segment(self):
        assignment = make_evolver().assign([])
        assert assignment.categories == {}

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            SegmentEvolver(table={"a": traj(0.5)}, rng=random.Random(0), others_pool=())


class TestPickStyle:
    def test_self_styles(self):
        styles = {pick_style(f"d{i}.com", SELF) for i in range(300)}
        assert ProvisioningStyle.SELF_HOSTED in styles
        assert ProvisioningStyle.SELF_ON_VPS in styles
        assert ProvisioningStyle.SELF_MISCONFIGURED in styles

    def test_none_styles(self):
        styles = {pick_style(f"d{i}.com", NONE) for i in range(100)}
        assert styles <= {ProvisioningStyle.NO_SMTP, ProvisioningStyle.DANGLING_MX}
        assert len(styles) == 2

    def test_provider_styles(self):
        styles = {pick_style(f"d{i}.com", "google") for i in range(200)}
        assert ProvisioningStyle.PROVIDER_NAMED in styles
        assert ProvisioningStyle.CUSTOMER_NAMED in styles

    def test_hosting_default(self):
        style = pick_style("anything.com", "unitedinternet", default_mx_is_customer_named=True)
        assert style is ProvisioningStyle.HOSTING_DEFAULT

    def test_deterministic(self):
        assert pick_style("a.com", "google") is pick_style("a.com", "google")

    def test_self_hosted_majority(self):
        styles = [pick_style(f"d{i}.com", SELF) for i in range(500)]
        hosted = sum(1 for style in styles if style is ProvisioningStyle.SELF_HOSTED)
        assert hosted > 300
