"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, PAPER_ORDER, build_parser, main, run_experiment
from repro.engine.stats import STATS, reset_stats
from repro.store import CACHE_ENV, ArtifactStore


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4"])
        assert args.experiment == "fig4"
        assert args.seed == 7 and args.scale == 1.0

    def test_scale_and_seed(self):
        args = build_parser().parse_args(["tab6", "--scale", "0.5", "--seed", "11"])
        assert args.scale == 0.5 and args.seed == 11

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_paper_order_covers_catalog(self):
        assert set(PAPER_ORDER) == set(EXPERIMENTS)


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_ORDER:
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["tab4", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "No Missing Data" in out

    def test_run_experiment_renders(self, ctx):
        text = run_experiment("fig8", ctx)
        assert "Figure 8" in text and ".ru" in text


class TestCacheCommand:
    def test_stats_requires_a_configured_store(self, monkeypatch, capsys):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no artifact cache configured" in capsys.readouterr().err

    def test_no_cache_flag_wins(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--no-cache"]) == 2

    def test_stats_reports_usage(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["tab4", "--scale", "0.2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert out.startswith("cache") and "entries" in out

    def test_action_defaults_to_stats(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "entries" in capsys.readouterr().out

    def test_clear_empties_the_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["tab4", "--scale", "0.2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert capsys.readouterr().out.startswith("cleared")
        assert ArtifactStore(cache).entry_count() == 0

    def test_action_rejected_without_cache_command(self):
        with pytest.raises(SystemExit):
            main(["fig4", "stats"])


class TestCacheSmoke:
    def test_all_experiments_identical_stdout_cold_vs_warm(
        self, tmp_path, capsys
    ):
        """Every experiment, tiny scale, twice over one cache dir.

        The warm run must serve from the persistent store and still print
        byte-identical artifacts.
        """
        args = ["all", "--scale", "0.2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        reset_stats()
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        assert STATS.counters["store.result.hit"] > 0
        assert ArtifactStore(tmp_path).entry_count() > 0
