"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, PAPER_ORDER, build_parser, main, run_experiment


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4"])
        assert args.experiment == "fig4"
        assert args.seed == 7 and args.scale == 1.0

    def test_scale_and_seed(self):
        args = build_parser().parse_args(["tab6", "--scale", "0.5", "--seed", "11"])
        assert args.scale == 0.5 and args.seed == 11

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_paper_order_covers_catalog(self):
        assert set(PAPER_ORDER) == set(EXPERIMENTS)


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_ORDER:
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["tab4", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "No Missing Data" in out

    def test_run_experiment_renders(self, ctx):
        text = run_experiment("fig8", ctx)
        assert "Figure 8" in text and ".ru" in text
