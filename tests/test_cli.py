"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    EXPERIMENTS,
    PAPER_ORDER,
    build_parser,
    main,
    resolve_snapshot,
    run_experiment,
)
from repro.core.types import DomainStatus
from repro.engine.stats import STATS, reset_stats
from repro.experiments.common import StudyContext
from repro.obs.schemas import (
    MANIFEST_SCHEMA,
    METRICS_SCHEMA,
    PROVENANCE_SCHEMA,
    TRACE_EVENT_SCHEMA,
    TRACE_SCHEMA,
    validate,
    validate_file,
    validate_jsonl_file,
)
from repro.store import CACHE_ENV, ArtifactStore
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4"])
        assert args.experiment == "fig4"
        assert args.seed == 7 and args.scale == 1.0

    def test_scale_and_seed(self):
        args = build_parser().parse_args(["tab6", "--scale", "0.5", "--seed", "11"])
        assert args.scale == 0.5 and args.seed == 11

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_paper_order_covers_catalog(self):
        assert set(PAPER_ORDER) == set(EXPERIMENTS)


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_ORDER:
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["tab4", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "No Missing Data" in out

    def test_run_experiment_renders(self, ctx):
        text = run_experiment("fig8", ctx)
        assert "Figure 8" in text and ".ru" in text


class TestCacheCommand:
    def test_stats_requires_a_configured_store(self, monkeypatch, capsys):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no artifact cache configured" in capsys.readouterr().err

    def test_no_cache_flag_wins(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path), "--no-cache"]) == 2

    def test_stats_reports_usage(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["tab4", "--scale", "0.2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert out.startswith("cache") and "entries" in out

    def test_stats_on_missing_cache_dir_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "Traceback" not in err

    def test_action_defaults_to_stats(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "entries" in capsys.readouterr().out

    def test_clear_empties_the_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["tab4", "--scale", "0.2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert capsys.readouterr().out.startswith("cleared")
        assert ArtifactStore(cache).entry_count() == 0

    def test_action_rejected_without_cache_command(self):
        with pytest.raises(SystemExit):
            main(["fig4", "stats"])

    def test_unknown_cache_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["cache", "explode"])


class TestObservabilityArtifacts:
    def test_traced_run_writes_valid_artifacts(self, tmp_path, capsys):
        """A --jobs 2 traced run produces a loadable trace, a metrics
        export, and a manifest — all passing their schemas, with spans
        for the run, the experiment, snapshots, and gather shards."""
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        manifest_path = tmp_path / "manifest.json"
        reset_stats()
        assert main([
            "tab4", "--scale", "0.2", "--jobs", "2", "--no-cache",
            "--trace", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--manifest", str(manifest_path),
        ]) == 0
        capsys.readouterr()
        assert validate_file(str(trace_path), TRACE_SCHEMA) == []
        assert validate_file(str(metrics_path), METRICS_SCHEMA) == []
        assert validate_file(str(manifest_path), MANIFEST_SCHEMA) == []
        assert (
            validate_jsonl_file(str(tmp_path / "trace.jsonl"), TRACE_EVENT_SCHEMA)
            == []
        )
        document = json.loads(trace_path.read_text())
        cats = {event.get("cat") for event in document["traceEvents"]}
        assert {"run", "experiment", "snapshot", "gather", "shard"} <= cats
        metrics = json.loads(metrics_path.read_text())
        assert metrics["caches"]["gather.obs"]["hits"] > 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["experiments"] == ["tab4"]
        assert manifest["engine"]["jobs"] == 2

    def test_prometheus_metrics_extension(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        assert main([
            "tab4", "--scale", "0.2", "--no-cache",
            "--metrics-out", str(metrics_path),
        ]) == 0
        capsys.readouterr()
        assert "repro_counter_total{" in metrics_path.read_text()


EXPLAIN_SCALE = "0.2"


@pytest.fixture(scope="module")
def explain_world():
    """The exact (seed, scale) world the explain CLI invocations build."""
    config = WorldConfig(seed=7).scaled(float(EXPLAIN_SCALE))
    ctx = StudyContext.create(config, store=None)
    result = ctx.priority_result(DatasetTag.ALEXA, 8)
    inferred = next(
        inference.domain
        for inference in result.inferences.values()
        if inference.status is DomainStatus.INFERRED
    )
    return ctx, inferred


class TestExplainCommand:
    def explain(self, *argv):
        return main(
            ["explain", *argv, "--scale", EXPLAIN_SCALE, "--no-cache"]
        )

    def test_requires_a_domain(self):
        with pytest.raises(SystemExit):
            main(["explain"])

    def test_audit_trail_matches_pipeline(self, explain_world, capsys):
        ctx, domain = explain_world
        assert self.explain(domain) == 0
        out = capsys.readouterr().out
        assert domain in out
        assert "winning evidence tier:" in out
        inference = ctx.priority_result(DatasetTag.ALEXA, 8).inferences[domain]
        for identity in inference.mx_identities:
            assert identity.mx_name in out
            assert f"[tier: {identity.source.value}]" in out

    def test_json_record_validates(self, explain_world, capsys):
        _, domain = explain_world
        assert self.explain(domain, "--json") == 0
        record = json.loads(capsys.readouterr().out)
        assert validate(record, PROVENANCE_SCHEMA) == []
        assert record["domain"] == domain

    def test_date_accepts_iso_and_index(self, explain_world, capsys):
        import re

        def normalized(text: str) -> str:
            # Certificate fingerprints derive from a process-global serial
            # counter, so two separately *built* worlds differ on them
            # (the determinism suite makes the same exclusion).
            return re.sub(r"\([0-9a-f]{12}\)", "(fp)", text)

        _, domain = explain_world
        assert self.explain(domain, "--date", "2021-06-08") == 0
        iso_out = capsys.readouterr().out
        assert self.explain(domain, "--date", "8") == 0
        assert normalized(capsys.readouterr().out) == normalized(iso_out)

    def test_unknown_domain_fails(self, capsys):
        assert self.explain("no-such-domain.example") == 2
        assert "not in any corpus" in capsys.readouterr().err

    def test_bad_date_fails(self, explain_world, capsys):
        _, domain = explain_world
        assert self.explain(domain, "--date", "1999-01-01") == 2
        assert "unknown snapshot" in capsys.readouterr().err

    def test_resolve_snapshot(self):
        assert resolve_snapshot(None) == 8
        assert resolve_snapshot("3") == 3
        assert resolve_snapshot("2017-06-08") == 0
        assert resolve_snapshot("99") is None
        assert resolve_snapshot("not-a-date") is None


class TestCacheSmoke:
    def test_all_experiments_identical_stdout_cold_vs_warm(
        self, tmp_path, capsys
    ):
        """Every experiment, tiny scale, twice over one cache dir.

        The warm run must serve from the persistent store and still print
        byte-identical artifacts.
        """
        args = ["all", "--scale", "0.2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        reset_stats()
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        assert STATS.counters["store.result.hit"] > 0
        assert ArtifactStore(tmp_path).entry_count() > 0
