"""Unit tests for CAs and trust evaluation."""

from datetime import date

from repro.tls.ca import (
    CertificateAuthority,
    TrustStore,
    ValidationStatus,
    self_signed,
)


class TestIssue:
    def test_issued_cert_fields(self):
        ca = CertificateAuthority("Simulated CA")
        cert = ca.issue("mx1.provider.com", sans=["mx2.provider.com"])
        assert cert.issuer == "Simulated CA"
        assert not cert.self_signed
        assert cert.sans == ("mx2.provider.com",)

    def test_serials_unique(self):
        ca = CertificateAuthority("Simulated CA")
        a = ca.issue("mx.example.com")
        b = ca.issue("mx.example.com")
        assert a.serial != b.serial

    def test_lifetime(self):
        ca = CertificateAuthority("Simulated CA")
        cert = ca.issue("mx.example.com", not_before=date(2020, 1, 1), lifetime_days=90)
        assert cert.not_after == date(2020, 3, 31)


class TestSelfSigned:
    def test_marks_self_signed(self):
        cert = self_signed("mx.myvps.com")
        assert cert.self_signed
        assert cert.issuer == cert.subject_cn


class TestTrustStore:
    def test_default_ca_trusted(self):
        store = TrustStore()
        cert = CertificateAuthority("Simulated CA").issue("mx.example.com")
        assert store.validate(cert) is ValidationStatus.VALID
        assert store.is_valid(cert)

    def test_self_signed_not_valid(self):
        store = TrustStore()
        assert store.validate(self_signed("mx.example.com")) is ValidationStatus.SELF_SIGNED

    def test_unknown_issuer(self):
        store = TrustStore()
        cert = CertificateAuthority("Shady CA").issue("mx.example.com")
        assert store.validate(cert) is ValidationStatus.UNTRUSTED_ISSUER

    def test_trust_new_ca(self):
        store = TrustStore()
        ca = CertificateAuthority("Shady CA")
        store.trust(ca)
        assert store.is_valid(ca.issue("mx.example.com"))

    def test_trust_by_name(self):
        store = TrustStore()
        store.trust("Another CA")
        assert store.is_valid(CertificateAuthority("Another CA").issue("x.example.com"))

    def test_expired(self):
        store = TrustStore()
        cert = CertificateAuthority("Simulated CA").issue(
            "mx.example.com", not_before=date(2018, 1, 1), lifetime_days=30
        )
        assert store.validate(cert, on=date(2020, 1, 1)) is ValidationStatus.EXPIRED
        assert store.validate(cert, on=date(2018, 1, 15)) is ValidationStatus.VALID

    def test_time_ignored_without_date(self):
        store = TrustStore()
        cert = CertificateAuthority("Simulated CA").issue(
            "mx.example.com", not_before=date(2018, 1, 1), lifetime_days=30
        )
        assert store.is_valid(cert)

    def test_is_valid_property(self):
        assert ValidationStatus.VALID.is_valid
        assert not ValidationStatus.SELF_SIGNED.is_valid
