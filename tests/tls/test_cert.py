"""Unit tests for certificates."""

from datetime import date

import pytest

from repro.tls.cert import Certificate


class TestNames:
    def test_cn_first_then_sans(self):
        cert = Certificate(
            subject_cn="mx.google.com",
            sans=("aspmx2.googlemail.com", "mx1.smtp.goog"),
        )
        assert cert.names() == (
            "mx.google.com", "aspmx2.googlemail.com", "mx1.smtp.goog",
        )

    def test_duplicates_collapsed(self):
        cert = Certificate(subject_cn="a.example.com", sans=("a.example.com", "b.example.com"))
        assert cert.names() == ("a.example.com", "b.example.com")

    def test_normalization(self):
        cert = Certificate(subject_cn="MX.Google.COM.")
        assert cert.subject_cn == "mx.google.com"

    def test_dns_names_filters_non_hostnames(self):
        cert = Certificate(
            subject_cn="mx.example.com",
            sans=("*.mailspamprotection.com", "not a name!", "single-label"),
        )
        assert cert.dns_names() == ("mx.example.com", "*.mailspamprotection.com")


class TestMatching:
    def test_exact_match(self):
        assert Certificate(subject_cn="mx.google.com").matches("mx.google.com")

    def test_case_insensitive(self):
        assert Certificate(subject_cn="mx.google.com").matches("MX.GOOGLE.COM")

    def test_san_match(self):
        cert = Certificate(subject_cn="mx.google.com", sans=("alt.google.com",))
        assert cert.matches("alt.google.com")

    def test_wildcard_single_label(self):
        cert = Certificate(subject_cn="*.mailspamprotection.com")
        assert cert.matches("se26.mailspamprotection.com")
        assert not cert.matches("a.b.mailspamprotection.com")
        assert not cert.matches("mailspamprotection.com")

    def test_no_match(self):
        assert not Certificate(subject_cn="mx.google.com").matches("mx.yahoo.com")


class TestValidity:
    def test_window(self):
        cert = Certificate(
            subject_cn="mx.example.com",
            not_before=date(2020, 1, 1),
            not_after=date(2021, 1, 1),
        )
        assert cert.is_time_valid(date(2020, 6, 1))
        assert not cert.is_time_valid(date(2021, 6, 1))
        assert not cert.is_time_valid(date(2019, 6, 1))

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            Certificate(
                subject_cn="x.example.com",
                not_before=date(2021, 1, 1),
                not_after=date(2020, 1, 1),
            )


class TestFingerprint:
    def test_stable(self):
        cert = Certificate(subject_cn="mx.example.com", serial=7)
        assert cert.fingerprint() == cert.fingerprint()

    def test_distinct_serials_distinct_prints(self):
        a = Certificate(subject_cn="mx.example.com", serial=1)
        b = Certificate(subject_cn="mx.example.com", serial=2)
        assert a.fingerprint() != b.fingerprint()
