"""Unit tests for the resource-record model."""

import pytest

from repro.dnscore.records import Record, RRset, RRType, a, cname, mx, ns, spf, txt


class TestConstructors:
    def test_a_record(self):
        record = a("host.example.com", "1.2.3.4")
        assert record.rtype is RRType.A
        assert record.rdata == "1.2.3.4"

    def test_mx_record(self):
        record = mx("example.com", "MX1.Provider.COM", preference=10)
        assert record.rdata == "mx1.provider.com"  # normalized
        assert record.preference == 10

    def test_mx_invalid_exchange_rejected(self):
        with pytest.raises(ValueError):
            mx("example.com", "not a hostname!")

    def test_mx_preference_range(self):
        with pytest.raises(ValueError):
            mx("example.com", "mx.example.com", preference=70000)

    def test_preference_on_non_mx_rejected(self):
        with pytest.raises(ValueError):
            Record(name="x.com", rtype=RRType.A, rdata="1.2.3.4", preference=5)

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            a("x.com", "1.2.3.4", ttl=-1)

    def test_cname_normalizes_target(self):
        record = cname("www.example.com", "Example.COM.")
        assert record.rdata == "example.com"

    def test_spf_prefixes_version(self):
        record = spf("example.com", "include:_spf.google.com ~all")
        assert record.rdata.startswith("v=spf1 ")

    def test_txt_and_ns(self):
        assert txt("example.com", "hello").rtype is RRType.TXT
        assert ns("example.com", "ns1.example.com").rtype is RRType.NS


class TestZoneLine:
    def test_mx_rendering(self):
        line = mx("example.com", "mx.example.com", preference=5).to_zone_line()
        assert line == "example.com. 3600 IN MX 5 mx.example.com."

    def test_a_rendering(self):
        line = a("example.com", "1.2.3.4").to_zone_line()
        assert line == "example.com. 3600 IN A 1.2.3.4"

    def test_txt_rendering_quotes(self):
        assert '"hello"' in txt("example.com", "hello").to_zone_line()


class TestRRset:
    def _mx_set(self):
        records = (
            mx("example.com", "backup.example.com", preference=20),
            mx("example.com", "primary-a.example.com", preference=5),
            mx("example.com", "primary-b.example.com", preference=5),
        )
        return RRset(name="example.com", rtype=RRType.MX, records=records)

    def test_mixed_names_rejected(self):
        with pytest.raises(ValueError):
            RRset(
                name="example.com",
                rtype=RRType.A,
                records=(a("other.com", "1.2.3.4"),),
            )

    def test_sorted_by_preference(self):
        ordered = self._mx_set().sorted_by_preference()
        assert [r.preference for r in ordered] == [5, 5, 20]

    def test_best_preference(self):
        assert self._mx_set().best_preference() == 5

    def test_most_preferred_returns_ties(self):
        primary = self._mx_set().most_preferred()
        assert sorted(r.rdata for r in primary) == [
            "primary-a.example.com",
            "primary-b.example.com",
        ]

    def test_empty_set(self):
        empty = RRset(name="example.com", rtype=RRType.MX, records=())
        assert empty.best_preference() is None
        assert empty.most_preferred() == []
        assert len(empty) == 0

    def test_rdatas(self):
        assert "backup.example.com" in self._mx_set().rdatas()

    def test_iteration(self):
        assert len(list(self._mx_set())) == 3
