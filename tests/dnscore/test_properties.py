"""Property-based tests for names and the PSL."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore.names import (
    extract_fqdn,
    is_valid_fqdn,
    is_valid_hostname,
    normalize,
)
from repro.dnscore.psl import default_psl

label = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=10).filter(
    lambda s: not s.startswith("-") and not s.endswith("-")
)
hostname = st.lists(label, min_size=1, max_size=5).map(".".join)
arbitrary_text = st.text(max_size=120)


class TestNameProperties:
    @given(hostname)
    def test_normalize_idempotent(self, name):
        assert normalize(normalize(name)) == normalize(name)

    @given(hostname)
    def test_normalize_strips_trailing_dot(self, name):
        assert normalize(name + ".") == normalize(name)

    @given(hostname)
    def test_fqdn_implies_hostname(self, name):
        if is_valid_fqdn(name):
            assert is_valid_hostname(name)

    @given(hostname)
    def test_case_insensitivity(self, name):
        assert is_valid_hostname(name) == is_valid_hostname(name.upper())

    @given(arbitrary_text)
    def test_extract_never_crashes_and_returns_valid(self, text):
        result = extract_fqdn(text)
        assert result is None or is_valid_fqdn(result)

    @given(hostname)
    def test_valid_fqdn_extracted_from_banner(self, name):
        if is_valid_fqdn(name):
            assert extract_fqdn(f"220 {name} ESMTP ready") == normalize(name)


class TestZoneFileProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "mx", "cname", "txt"]),
                hostname,
                st.integers(min_value=0, max_value=65535),
            ),
            max_size=15,
        )
    )
    @settings(max_examples=80)
    def test_dump_parse_roundtrip(self, entries):
        from repro.dnscore.records import a as a_rec, cname as cname_rec
        from repro.dnscore.records import mx as mx_rec, txt as txt_rec
        from repro.dnscore.zone import Zone, ZoneConflictError
        from repro.dnscore.zonefile import dump_zone, parse_zone_file

        zone = Zone(apex="zone.test")
        for kind, name, number in entries:
            owner = f"{name}.zone.test"
            try:
                if kind == "a":
                    zone.add(a_rec(owner, f"11.0.{number % 256}.{number // 256 % 256}"))
                elif kind == "mx":
                    zone.add(mx_rec(owner, f"mx.{owner}", preference=number))
                elif kind == "cname":
                    zone.add(cname_rec(owner, "target.zone.test"))
                else:
                    zone.add(txt_rec(owner, f"text {number}"))
            except ZoneConflictError:
                continue  # CNAME exclusivity; skip conflicting inserts
        reparsed = parse_zone_file(dump_zone(zone))
        assert sorted(reparsed) == sorted(zone.all_records())


class TestPSLProperties:
    @given(hostname)
    @settings(max_examples=300)
    def test_registered_domain_is_suffix(self, name):
        psl = default_psl()
        registered = psl.registered_domain(name)
        if registered is not None:
            normalized = normalize(name)
            assert normalized == registered or normalized.endswith("." + registered)

    @given(hostname)
    def test_public_suffix_is_suffix_of_registered(self, name):
        psl = default_psl()
        registered = psl.registered_domain(name)
        if registered is not None:
            suffix = psl.public_suffix(name)
            assert registered.endswith(suffix)
            # Registered domain = public suffix + exactly one more label.
            assert len(registered.split(".")) == len(suffix.split(".")) + 1

    @given(hostname)
    def test_registered_domain_idempotent(self, name):
        psl = default_psl()
        registered = psl.registered_domain(name)
        if registered is not None:
            assert psl.registered_domain(registered) == registered

    @given(hostname, label)
    def test_prepending_label_preserves_registered_domain(self, name, extra):
        psl = default_psl()
        registered = psl.registered_domain(name)
        if registered is not None:
            assert psl.registered_domain(f"{extra}.{name}") == registered
