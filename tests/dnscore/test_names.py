"""Unit tests for domain-name parsing and validation."""

import pytest

from repro.dnscore.names import (
    NameError_,
    extract_fqdn,
    is_subdomain_of,
    is_valid_fqdn,
    is_valid_hostname,
    iter_fqdn_candidates,
    labels,
    normalize,
    parent,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("MX1.Provider.COM") == "mx1.provider.com"

    def test_strips_trailing_dot(self):
        assert normalize("example.com.") == "example.com"

    def test_strips_whitespace(self):
        assert normalize("  example.com \n") == "example.com"

    def test_empty_raises(self):
        with pytest.raises(NameError_):
            normalize("   ")

    def test_lone_dot_raises(self):
        with pytest.raises(NameError_):
            normalize(".")


class TestLabels:
    def test_splits(self):
        assert labels("a.b.c") == ["a", "b", "c"]

    def test_single_label(self):
        assert labels("localhost") == ["localhost"]


class TestIsValidHostname:
    def test_simple(self):
        assert is_valid_hostname("mx.google.com")

    def test_single_label_ok(self):
        assert is_valid_hostname("localhost")

    def test_hyphenated(self):
        assert is_valid_hostname("beats24-7.com")

    def test_leading_hyphen_rejected(self):
        assert not is_valid_hostname("-bad.com")

    def test_trailing_hyphen_rejected(self):
        assert not is_valid_hostname("bad-.com")

    def test_underscore_rejected(self):
        assert not is_valid_hostname("bad_label.com")

    def test_empty_label_rejected(self):
        assert not is_valid_hostname("a..com")

    def test_long_label_rejected(self):
        assert not is_valid_hostname("a" * 64 + ".com")

    def test_63_char_label_ok(self):
        assert is_valid_hostname("a" * 63 + ".com")

    def test_overlong_name_rejected(self):
        name = ".".join(["a" * 60] * 5)
        assert len(name) > 253
        assert not is_valid_hostname(name)

    def test_empty_string(self):
        assert not is_valid_hostname("")


class TestIsValidFqdn:
    def test_provider_name(self):
        assert is_valid_fqdn("mx.google.com")

    def test_single_label_rejected(self):
        assert not is_valid_fqdn("mailserver")

    def test_localhost_rejected(self):
        assert not is_valid_fqdn("localhost")
        assert not is_valid_fqdn("localhost.localdomain")

    def test_ip_address_rejected(self):
        assert not is_valid_fqdn("1.2.3.4")

    def test_numeric_tld_rejected(self):
        assert not is_valid_fqdn("host.123")

    def test_example_domains_rejected(self):
        assert not is_valid_fqdn("example.com")

    def test_normalizes_case(self):
        assert is_valid_fqdn("MX.GOOGLE.COM")


class TestExtractFqdn:
    def test_typical_banner(self):
        assert extract_fqdn("mx.google.com ESMTP ready") == "mx.google.com"

    def test_decorated_ip_yields_none(self):
        assert extract_fqdn("IP-1-2-3-4 ESMTP") is None

    def test_localhost_banner_yields_none(self):
        assert extract_fqdn("localhost.localdomain ESMTP Postfix") is None

    def test_embedded_ip_skipped_fqdn_found(self):
        text = "220 1.2.3.4 welcome to mx1.provider.com"
        assert extract_fqdn(text) == "mx1.provider.com"

    def test_no_candidates(self):
        assert extract_fqdn("ESMTP service ready") is None

    def test_case_normalized(self):
        assert extract_fqdn("MX1.Provider.COM ESMTP") == "mx1.provider.com"

    def test_iter_candidates_order(self):
        text = "a.example.org then b.example.net"
        assert list(iter_fqdn_candidates(text)) == ["a.example.org", "b.example.net"]


class TestHierarchy:
    def test_subdomain(self):
        assert is_subdomain_of("mx1.provider.com", "provider.com")

    def test_equal_counts(self):
        assert is_subdomain_of("provider.com", "provider.com")

    def test_suffix_not_label_boundary(self):
        assert not is_subdomain_of("evilprovider.com", "provider.com")

    def test_parent(self):
        assert parent("mx1.provider.com") == "provider.com"

    def test_parent_of_tld(self):
        assert parent("com") is None
