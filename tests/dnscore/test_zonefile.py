"""Unit tests for zone-file serialization and parsing."""

import pytest

from repro.dnscore.records import RRType, a, cname, mx, ns, txt
from repro.dnscore.zone import Zone, ZoneDB
from repro.dnscore.zonefile import (
    ZoneFileError,
    dump_zone,
    dump_zonedb,
    load_zonedb,
    parse_zone_file,
)


@pytest.fixture
def zone():
    zone = Zone(apex="example.com")
    zone.add(mx("example.com", "mx1.example.com", preference=10))
    zone.add(mx("example.com", "mx2.example.com", preference=20))
    zone.add(a("mx1.example.com", "11.0.0.1"))
    zone.add(a("mx2.example.com", "11.0.0.2"))
    zone.add(cname("mail.example.com", "mx1.example.com"))
    zone.add(txt("example.com", "v=spf1 include:_spf.google.com ~all"))
    zone.add(ns("example.com", "ns1.example.com"))
    return zone


class TestDump:
    def test_origin_header(self, zone):
        assert dump_zone(zone).startswith("$ORIGIN example.com.\n")

    def test_all_records_rendered(self, zone):
        text = dump_zone(zone)
        assert "MX 10 mx1.example.com." in text
        assert "11.0.0.1" in text
        assert '"v=spf1 include:_spf.google.com ~all"' in text

    def test_deterministic(self, zone):
        assert dump_zone(zone) == dump_zone(zone)

    def test_dump_zonedb(self, zone):
        db = ZoneDB()
        db.ensure_zone("example.com")
        for record in zone.all_records():
            db.add(record)
        db.ensure_zone("other.org")
        text = dump_zonedb(db)
        assert "$ORIGIN example.com." in text
        assert "$ORIGIN other.org." in text


class TestParse:
    def test_round_trip(self, zone):
        records = parse_zone_file(dump_zone(zone))
        assert sorted(records) == sorted(zone.all_records())

    def test_relative_names(self):
        text = """
        $ORIGIN example.com.
        @ 3600 IN MX 10 mx1
        mx1 3600 IN A 11.0.0.1
        """
        records = parse_zone_file(text)
        assert records[0].name == "example.com"
        assert records[0].rdata == "mx1.example.com"
        assert records[1].name == "mx1.example.com"

    def test_default_ttl_directive(self):
        text = "$ORIGIN x.com.\n$TTL 999\nhost IN A 1.2.3.4\n"
        (record,) = parse_zone_file(text)
        assert record.ttl == 999

    def test_optional_ttl_and_class(self):
        text = "$ORIGIN x.com.\nhost A 1.2.3.4\nhost2 600 A 1.2.3.5\n"
        records = parse_zone_file(text)
        assert records[0].ttl == 3600
        assert records[1].ttl == 600

    def test_comments_stripped(self):
        text = "$ORIGIN x.com.  ; the zone\nhost IN A 1.2.3.4 ; web server\n"
        (record,) = parse_zone_file(text)
        assert record.rdata == "1.2.3.4"

    def test_semicolon_inside_txt_kept(self):
        text = '$ORIGIN x.com.\n@ IN TXT "k=rsa; p=abc" ; comment\n'
        (record,) = parse_zone_file(text)
        assert record.rdata == "k=rsa; p=abc"

    def test_escaped_quote_in_txt(self):
        text = '$ORIGIN x.com.\n@ IN TXT "say \\"hi\\""\n'
        (record,) = parse_zone_file(text)
        assert record.rdata == 'say "hi"'

    @pytest.mark.parametrize(
        "bad",
        [
            "@ IN A 1.2.3.4",                      # '@' without $ORIGIN
            "host IN A 1.2.3.4",                   # relative without $ORIGIN
            "$ORIGIN x.com.\nhost IN MX mx1",      # MX missing preference
            "$ORIGIN x.com.\nhost IN TXT bare",    # unquoted TXT
            "$ORIGIN x.com.\nhost IN SRV 1 2 3 t", # unsupported type
            "$ORIGIN x.com.\nhost IN",             # short line
            "$TTL abc\n",                          # bad TTL
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ZoneFileError):
            parse_zone_file(bad)


class TestLoadZoneDB:
    def test_zones_created_from_origins(self, zone):
        db = load_zonedb(dump_zone(zone))
        assert "example.com" in db
        assert db.lookup("example.com", RRType.MX).best_preference() == 10

    def test_round_trip_through_text(self, zone):
        db = ZoneDB()
        db.ensure_zone("example.com")
        for record in zone.all_records():
            db.add(record)
        reloaded = load_zonedb(dump_zonedb(db))
        assert dump_zonedb(reloaded) == dump_zonedb(db)

    def test_extra_apexes(self):
        text = "$ORIGIN a.com.\nhost IN A 1.2.3.4\n"
        db = load_zonedb(text, apexes=["b.com"])
        assert "b.com" in db

    def test_world_zone_round_trips(self, small_world):
        """A real snapshot's zone survives dump+parse bit-for-bit."""
        db = small_world.snapshot_zones[-1]
        apex = next(
            name for name in db.zone_apexes() if name in small_world.domains
        )
        zone = db.zone_for(apex)
        reparsed = parse_zone_file(dump_zone(zone))
        assert sorted(reparsed) == sorted(zone.all_records())
