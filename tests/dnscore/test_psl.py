"""Unit tests for the Public Suffix List implementation."""

import pytest

from repro.dnscore.psl import PublicSuffixList, default_psl, registered_domain


@pytest.fixture(scope="module")
def psl():
    return PublicSuffixList.default()


class TestPublicSuffix:
    def test_gtld(self, psl):
        assert psl.public_suffix("provider.com") == "com"

    def test_layered_cctld(self, psl):
        assert psl.public_suffix("bar.co.uk") == "co.uk"

    def test_unknown_tld_falls_back_to_star(self, psl):
        assert psl.public_suffix("foo.unknowntld") == "unknowntld"

    def test_wildcard_rule(self, psl):
        # '*.ck' makes every second-level .ck name a public suffix.
        assert psl.public_suffix("foo.anything.ck") == "anything.ck"

    def test_exception_rule(self, psl):
        # '!www.ck' carves www.ck out of the wildcard.
        assert psl.public_suffix("www.ck") == "ck"

    def test_name_is_itself_suffix(self, psl):
        assert psl.is_public_suffix("co.uk")
        assert psl.is_public_suffix("com")
        assert not psl.is_public_suffix("google.com")


class TestRegisteredDomain:
    def test_basic(self, psl):
        assert psl.registered_domain("mx1.provider.com") == "provider.com"

    def test_deeply_nested(self, psl):
        assert psl.registered_domain("a.b.c.provider.com") == "provider.com"

    def test_layered_cctld(self, psl):
        assert psl.registered_domain("mail.bar.co.uk") == "bar.co.uk"

    def test_exact_registered_domain(self, psl):
        assert psl.registered_domain("provider.com") == "provider.com"

    def test_suffix_itself_has_none(self, psl):
        assert psl.registered_domain("com") is None
        assert psl.registered_domain("co.uk") is None

    def test_wildcard_needs_extra_label(self, psl):
        assert psl.registered_domain("anything.ck") is None
        assert psl.registered_domain("foo.anything.ck") == "foo.anything.ck"

    def test_exception_registered_at_www(self, psl):
        assert psl.registered_domain("www.ck") == "www.ck"
        assert psl.registered_domain("sub.www.ck") == "www.ck"

    def test_kawasaki_exception(self, psl):
        assert psl.registered_domain("city.kawasaki.jp") == "city.kawasaki.jp"
        assert psl.registered_domain("foo.other.kawasaki.jp") == "foo.other.kawasaki.jp"

    def test_invalid_input_gives_none(self, psl):
        assert psl.registered_domain("") is None

    def test_paper_cctlds_have_second_level(self, psl):
        assert psl.registered_domain("shop.foo.com.br") == "foo.com.br"
        assert psl.registered_domain("mail.foo.com.cn") == "foo.com.cn"
        assert psl.registered_domain("x.foo.co.jp") == "foo.co.jp"

    def test_plain_cctld(self, psl):
        assert psl.registered_domain("mail.foo.de") == "foo.de"
        assert psl.registered_domain("mail.foo.ru") == "foo.ru"


class TestModuleHelpers:
    def test_default_is_singleton(self):
        assert default_psl() is default_psl()

    def test_shorthand(self):
        assert registered_domain("mx.google.com") == "google.com"


class TestRuleManagement:
    def test_add_rule_and_match(self):
        psl = PublicSuffixList()
        psl.add_rule("com")
        psl.add_rule("co.com")
        assert psl.registered_domain("a.b.co.com") == "b.co.com"

    def test_empty_rule_rejected(self):
        psl = PublicSuffixList()
        with pytest.raises(ValueError):
            psl.add_rule("  ")

    def test_longest_rule_wins(self):
        psl = PublicSuffixList.from_suffixes(["uk", "co.uk"])
        assert psl.public_suffix("x.co.uk") == "co.uk"
        assert psl.public_suffix("x.org.uk") == "uk"
