"""Unit tests for zones and the resolver."""

import pytest

from repro.dnscore.records import RRType, a, cname, mx, txt
from repro.dnscore.resolver import MAX_CNAME_CHAIN, Rcode, Resolver
from repro.dnscore.zone import Zone, ZoneConflictError, ZoneDB


class TestZone:
    def test_add_and_lookup(self):
        zone = Zone(apex="example.com")
        zone.add(a("mail.example.com", "1.2.3.4"))
        assert zone.lookup("mail.example.com", RRType.A)[0].rdata == "1.2.3.4"

    def test_foreign_record_rejected(self):
        zone = Zone(apex="example.com")
        with pytest.raises(ZoneConflictError):
            zone.add(a("other.org", "1.2.3.4"))

    def test_duplicate_records_collapse(self):
        zone = Zone(apex="example.com")
        zone.add(a("mail.example.com", "1.2.3.4"))
        zone.add(a("mail.example.com", "1.2.3.4"))
        assert len(zone.lookup("mail.example.com", RRType.A)) == 1

    def test_multiple_a_records(self):
        zone = Zone(apex="example.com")
        zone.add(a("mail.example.com", "1.2.3.4"))
        zone.add(a("mail.example.com", "1.2.3.5"))
        assert len(zone.lookup("mail.example.com", RRType.A)) == 2

    def test_cname_excludes_other_data(self):
        zone = Zone(apex="example.com")
        zone.add(cname("www.example.com", "example.com"))
        with pytest.raises(ZoneConflictError):
            zone.add(a("www.example.com", "1.2.3.4"))

    def test_other_data_excludes_cname(self):
        zone = Zone(apex="example.com")
        zone.add(a("www.example.com", "1.2.3.4"))
        with pytest.raises(ZoneConflictError):
            zone.add(cname("www.example.com", "example.com"))

    def test_conflicting_cname_targets_rejected(self):
        zone = Zone(apex="example.com")
        zone.add(cname("www.example.com", "a.example.com"))
        with pytest.raises(ZoneConflictError):
            zone.add(cname("www.example.com", "b.example.com"))

    def test_remove(self):
        zone = Zone(apex="example.com")
        zone.add(a("mail.example.com", "1.2.3.4"))
        zone.remove("mail.example.com", RRType.A)
        assert zone.lookup("mail.example.com", RRType.A) == []

    def test_len_and_names(self):
        zone = Zone(apex="example.com")
        zone.add(a("mail.example.com", "1.2.3.4"))
        zone.add(mx("example.com", "mail.example.com"))
        assert len(zone) == 2
        assert zone.names() == {"mail.example.com", "example.com"}


class TestZoneDB:
    def test_routes_to_most_specific_zone(self):
        db = ZoneDB()
        db.ensure_zone("example.com")
        db.ensure_zone("sub.example.com")
        db.add(a("mail.sub.example.com", "1.2.3.4"))
        assert len(db.zone_for("mail.sub.example.com")._store) == 1
        assert db.lookup("mail.sub.example.com", RRType.A).rdatas() == ["1.2.3.4"]

    def test_add_without_zone_fails(self):
        db = ZoneDB()
        with pytest.raises(ZoneConflictError):
            db.add(a("orphan.example.net", "1.2.3.4"))

    def test_zones_under_tld(self):
        db = ZoneDB()
        db.ensure_zone("a.com")
        db.ensure_zone("b.com")
        db.ensure_zone("c.gov")
        assert db.zones_under_tld("com") == ["a.com", "b.com"]

    def test_contains_and_len(self):
        db = ZoneDB()
        db.ensure_zone("a.com")
        assert "a.com" in db
        assert len(db) == 1


@pytest.fixture
def resolver():
    db = ZoneDB()
    zone = db.ensure_zone("example.com")
    zone.add(mx("example.com", "mx.example.com", preference=10))
    zone.add(mx("example.com", "backup.example.com", preference=20))
    zone.add(a("mx.example.com", "1.2.3.4"))
    zone.add(a("backup.example.com", "1.2.3.5"))
    zone.add(cname("alias.example.com", "mx.example.com"))
    zone.add(txt("nodata.example.com", "txt only"))
    # A CNAME loop and an over-long chain.
    zone.add(cname("loop1.example.com", "loop2.example.com"))
    zone.add(cname("loop2.example.com", "loop1.example.com"))
    previous = "deep0.example.com"
    for index in range(1, MAX_CNAME_CHAIN + 3):
        current = f"deep{index}.example.com"
        zone.add(cname(previous, current))
        previous = current
    return Resolver(db=db)


class TestResolver:
    def test_direct_a(self, resolver):
        answer = resolver.resolve("mx.example.com", RRType.A)
        assert answer.rcode is Rcode.NOERROR
        assert answer.rdatas == ["1.2.3.4"]

    def test_cname_chase(self, resolver):
        answer = resolver.resolve("alias.example.com", RRType.A)
        assert answer.rcode is Rcode.NOERROR
        assert answer.rdatas == ["1.2.3.4"]
        assert answer.chain == ("alias.example.com", "mx.example.com")

    def test_cname_query_not_chased(self, resolver):
        answer = resolver.resolve("alias.example.com", RRType.CNAME)
        assert answer.rdatas == ["mx.example.com"]

    def test_nxdomain(self, resolver):
        answer = resolver.resolve("missing.example.com", RRType.A)
        assert answer.rcode is Rcode.NXDOMAIN
        assert not answer

    def test_nodata(self, resolver):
        answer = resolver.resolve("nodata.example.com", RRType.A)
        assert answer.rcode is Rcode.NODATA

    def test_cname_loop_servfail(self, resolver):
        answer = resolver.resolve("loop1.example.com", RRType.A)
        assert answer.rcode is Rcode.SERVFAIL

    def test_chain_too_long_servfail(self, resolver):
        answer = resolver.resolve("deep0.example.com", RRType.A)
        assert answer.rcode is Rcode.SERVFAIL

    def test_mx_convenience_sorted(self, resolver):
        records = resolver.resolve_mx("example.com")
        assert [r.rdata for r in records] == ["mx.example.com", "backup.example.com"]

    def test_a_convenience_on_failure(self, resolver):
        assert resolver.resolve_a("missing.example.com") == []

    def test_cache_round_trip(self, resolver):
        first = resolver.resolve("mx.example.com", RRType.A)
        second = resolver.resolve("mx.example.com", RRType.A)
        assert first is second
        resolver.clear_cache()
        third = resolver.resolve("mx.example.com", RRType.A)
        assert third == first and third is not first
