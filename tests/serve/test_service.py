"""InferenceService: warm store-only queries, errors, ingest, metrics."""

import hashlib
import shutil

import pytest

from repro.core.pipeline import PriorityPipeline
from repro.engine import EngineOptions
from repro.experiments.common import StudyContext
from repro.serve.churn import synthesize_churn
from repro.serve.service import InferenceService, ServiceError
from repro.store import (
    ArtifactStore,
    SnapshotView,
    decode_measurements,
    encode_measurements,
    encode_result,
)
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS, SNAPSHOT_DATES


@pytest.fixture()
def service(seeded):
    config, root, _domains = seeded
    return InferenceService(config, ArtifactStore(root))


class TestWarmQueries:
    def test_lookup_without_world_build(self, seeded, service):
        _config, _root, domains = seeded
        reply = service.who_has(domains[0], corpus="alexa")
        assert reply["domain"] == domains[0]
        assert reply["corpus"] == "alexa"
        assert reply["source"] == "store"
        assert reply["providers"]
        # The whole point of the store path: answering queries must not
        # have built a world or run the pipeline.
        assert service.status()["world_built"] is False

    def test_corpus_search_order(self, seeded, service):
        _config, _root, domains = seeded
        assert service.who_has(domains[0])["corpus"] == "alexa"

    def test_unknown_domain_is_not_found(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.who_has("no-such-domain.example", corpus="alexa")
        assert excinfo.value.code == "not-found"

    def test_unknown_corpus_is_bad_request(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.who_has("example.com", corpus="bogus")
        assert excinfo.value.code == "bad-request"

    def test_requires_a_store(self, seeded):
        config, _root, _domains = seeded
        with pytest.raises(ServiceError) as excinfo:
            InferenceService(config, None)
        assert excinfo.value.code == "no-store"

    def test_provider_stats_shape(self, seeded, service):
        _config, _root, domains = seeded
        stats = service.provider_stats(corpus="alexa")
        assert stats["domains"] == len(domains)
        assert stats["source"] == "store"
        assert stats["statuses"]
        assert stats["top"]

    def test_explain_returns_provenance(self, seeded, service):
        _config, _root, domains = seeded
        record = service.explain(domains[0], corpus="alexa")
        assert record["domain"] == domains[0]
        assert record["corpus"] == "alexa"

    def test_resolve_snapshot(self, service):
        assert service.resolve_snapshot(None) == NUM_SNAPSHOTS - 1
        assert service.resolve_snapshot(0) == 0
        assert service.resolve_snapshot(SNAPSHOT_DATES[2].isoformat()) == 2
        with pytest.raises(ServiceError) as excinfo:
            service.resolve_snapshot("not-a-date")
        assert excinfo.value.code == "bad-request"
        with pytest.raises(ServiceError):
            service.resolve_snapshot(NUM_SNAPSHOTS)


class TestIngest:
    def test_ingest_view_goes_live_and_stays_bit_identical(self, seeded, tmp_path):
        config, root, _domains = seeded
        # Private copy: the ingest writes results through to the store, and
        # the seeded store is shared by the whole package.
        private = tmp_path / "store"
        shutil.copytree(root, private)
        store = ArtifactStore(str(private))
        service = InferenceService(config, store)
        base_index = NUM_SNAPSHOTS - 2
        base_payload = store.measurement_payload(
            config, DatasetTag.ALEXA, base_index
        )
        churned = synthesize_churn(
            decode_measurements(base_payload), 0.05, seed=7
        )
        churned_payload = encode_measurements(churned)

        service.ingest_view(
            DatasetTag.ALEXA, SnapshotView(base_payload), base_index
        )
        report = service.ingest_view(
            DatasetTag.ALEXA, SnapshotView(churned_payload), base_index + 1
        )
        assert report["mode"] == "delta"
        assert report["reinferred"] < len(churned)

        ctx = StudyContext.create(config, engine=EngineOptions(jobs=1), store=None)
        pipeline = PriorityPipeline(
            ctx.world.trust_store, ctx.company_map, psl=ctx.world.psl
        )
        batch = encode_result(pipeline.run(churned, jobs=1))
        assert service.result_digest(DatasetTag.ALEXA) == hashlib.sha256(
            batch
        ).hexdigest()
        # Write-through: the stored artifact is the same bytes.
        assert (
            store.result_payload(config, DatasetTag.ALEXA, base_index + 1)
            == batch
        )
        # Lookups now come from the live map, not a decoded block.
        domain = next(iter(churned))
        reply = service.who_has(
            domain, corpus="alexa", snapshot=base_index + 1
        )
        assert reply["source"] == "live"


class TestMetrics:
    def test_endpoint_histograms_and_cache_counters(self, seeded, service):
        _config, _root, domains = seeded
        for domain in domains[:5]:
            service.who_has(domain, corpus="alexa")
        metrics = service.metrics()
        who_has = metrics["endpoints"]["who-has"]
        assert who_has["count"] == 5
        assert who_has["p99_ms"] >= who_has["p50_ms"] >= 0
        cache = metrics["block_cache"]
        assert set(cache) >= {"hits", "misses", "hit_rate", "entries", "capacity"}
        assert metrics["ingests"] == []
