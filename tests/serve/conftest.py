"""Serving fixtures: a seeded artifact store shared across the package."""

import pytest

from repro.engine import EngineOptions
from repro.experiments.common import StudyContext
from repro.store import ArtifactStore
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS

SERVE_CONFIG = WorldConfig(seed=7).scaled(0.25)


@pytest.fixture(scope="session")
def seeded(tmp_path_factory):
    """(config, store root, alexa domains): every artifact pre-computed.

    This is the state a daemon inherits from a prior sweep — the warm
    start it must serve from without re-running the pipeline.
    """
    root = tmp_path_factory.mktemp("serve-store")
    ctx = StudyContext.create(
        SERVE_CONFIG, engine=EngineOptions(jobs=1), store=ArtifactStore(str(root))
    )
    for dataset in DatasetTag:
        for snapshot in range(NUM_SNAPSHOTS):
            if ctx.covered(dataset, snapshot):
                ctx.priority_result(dataset, snapshot)
    return SERVE_CONFIG, str(root), ctx.domains(DatasetTag.ALEXA)
