"""Live telemetry through the serving stack: traces, /metrics, flushes.

Covers the observability contract end to end:

* trace ids — client-supplied ids surface in the span ring and the
  ``trace`` op's replay; server-minted ids round-trip through
  who-has → block decode → response,
* the ``metrics`` RPC's ``live`` section (sliding windows, gauges, SLO),
* ``GET /metrics`` Prometheus exposition under real HTTP,
* periodic atomic flushing of ``--metrics-out`` (SIGKILL safety),
* ``REPRO_LIVE=off`` disabling the whole layer.
"""

import http.client
import json

import pytest

from conftest import wait_for

from repro.obs.live import render_trace_tree
from repro.obs.schemas import (
    METRICS_SCHEMA,
    SERVE_SECTION_SCHEMA,
    validate,
    validate_prometheus,
)
from repro.obs.slo import parse_slo
from repro.serve.cli import main as serve_main, render_top
from repro.serve.daemon import ServeDaemon, handle_request, request_http
from repro.serve.service import InferenceService, ServiceError
from repro.store import ArtifactStore


@pytest.fixture()
def service(seeded):
    config, root, _domains = seeded
    return InferenceService(config, ArtifactStore(root))


class TestTracePropagation:
    def test_client_supplied_trace_id_surfaces_in_ring(self, service, seeded):
        _config, _root, domains = seeded
        reply = handle_request(
            service,
            {"op": "who-has", "domain": domains[0], "corpus": "alexa",
             "trace": "client-trace-42"},
        )
        assert reply["ok"] is True
        assert reply["trace"] == "client-trace-42"
        events = service.live.tracer.events()
        roots = [
            event for event in events
            if event.get("args", {}).get("trace") == "client-trace-42"
        ]
        assert len(roots) == 1 and roots[0]["name"] == "who-has"

    def test_trace_op_replays_the_span_tree(self, service, seeded):
        _config, _root, domains = seeded
        handle_request(
            service,
            {"op": "who-has", "domain": domains[0], "corpus": "alexa",
             "trace": "replay-me"},
        )
        reply = handle_request(service, {"op": "trace", "id": "replay-me"})
        assert reply["ok"] is True
        tree = reply["result"]
        assert tree["trace"] == "replay-me"
        assert tree["spans"][0]["name"] == "who-has"
        rendered = render_trace_tree(tree)
        assert "trace replay-me" in rendered and "who-has" in rendered

    def test_minted_id_round_trips_through_block_decode(self, service, seeded):
        _config, _root, domains = seeded
        # Cold cache: the lookup decodes a store block inside the request,
        # so the replayed tree must show block.load nested under who-has.
        reply = handle_request(
            service, {"op": "who-has", "domain": domains[0], "corpus": "alexa"}
        )
        minted = reply["trace"]
        assert minted  # server minted an id without being asked
        replay = handle_request(service, {"op": "trace", "id": minted})
        assert replay["ok"] is True
        root = replay["result"]["spans"][0]
        names = {child["name"] for child in root["children"]}
        assert "block.load" in names

    def test_unknown_trace_id_is_not_found(self, service):
        reply = handle_request(service, {"op": "trace", "id": "never-seen"})
        assert reply["ok"] is False and reply["code"] == "not-found"

    def test_trace_op_requires_an_id(self, service):
        reply = handle_request(service, {"op": "trace"})
        assert reply["ok"] is False and reply["code"] == "bad-request"

    def test_ring_stays_bounded(self, seeded):
        config, root, _domains = seeded
        service = InferenceService(
            config, ArtifactStore(root), trace_ring=64
        )
        for _ in range(200):
            handle_request(service, {"op": "status"})
        assert len(service.live.tracer.events()) <= 64


class TestLiveMetrics:
    def test_metrics_live_section(self, service, seeded):
        _config, _root, domains = seeded
        for domain in domains[:5]:
            handle_request(
                service, {"op": "who-has", "domain": domain, "corpus": "alexa"}
            )
        metrics = service.metrics()
        live = metrics["live"]
        assert live["endpoints"]["who-has"]["total_requests"] == 5
        window = live["endpoints"]["who-has"]["windows"]["60s"]
        assert window["requests"] == 5
        assert window["p99_ms"] > 0
        assert live["gauges"]["cache_hit_rate"] is not None
        assert metrics["degraded"] is False
        # The document still validates against the serve section schema.
        assert validate(metrics, SERVE_SECTION_SCHEMA) == []

    def test_errors_feed_the_error_rate(self, service):
        with pytest.raises(Exception):
            service.who_has("definitely-missing.example", "alexa")
        live = service.metrics()["live"]
        assert live["endpoints"]["who-has"]["total_errors"] == 1

    def test_slo_degraded_flag(self, seeded):
        config, root, domains = seeded
        service = InferenceService(
            config, ArtifactStore(root), slo=parse_slo("p99=0.001us")
        )
        for domain in domains[:4]:
            handle_request(
                service, {"op": "who-has", "domain": domain, "corpus": "alexa"}
            )
        # Any real lookup takes longer than a nanosecond objective.
        assert service.live.degraded() is True
        assert service.status()["degraded"] is True
        report = service.metrics()["live"]["slo"]
        assert report["endpoint"] == "who-has"
        assert report["objectives"][0]["burn_rate"] > 1

    def test_ingest_lag_gauge(self, service):
        service.live.note_ingest(3, 1.25)
        gauges = service.live.gauges()
        assert gauges["ingest_lag_s"] is not None
        assert gauges["last_ingest"]["snapshot"] == 3

    def test_prometheus_rendering_validates(self, service, seeded):
        _config, _root, domains = seeded
        for domain in domains[:3]:
            handle_request(
                service, {"op": "who-has", "domain": domain, "corpus": "alexa"}
            )
        text = service.prometheus()
        assert validate_prometheus(text) == []
        assert "repro_serve_requests_total" in text
        assert 'window="60s",quantile="0.99"' in text


class TestHttpScrape:
    @pytest.fixture()
    def http_daemon(self, service):
        daemon = ServeDaemon(service, http_address=("127.0.0.1", 0))
        daemon.start()
        try:
            yield daemon, daemon._servers[0].server_address
        finally:
            daemon.shutdown()

    def test_get_metrics_serves_prometheus_text(self, http_daemon, seeded):
        _config, _root, domains = seeded
        (daemon, (host, port)) = http_daemon
        for domain in domains[:3]:
            reply = request_http(
                host, port,
                {"op": "who-has", "domain": domain, "corpus": "alexa"},
            )
            assert reply["ok"] is True and reply["trace"]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            body = response.read().decode()
        finally:
            connection.close()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert validate_prometheus(body) == []
        assert 'repro_serve_requests_total{endpoint="who-has"} 3' in body

    def test_metrics_json_route_still_structured(self, http_daemon):
        (daemon, (host, port)) = http_daemon
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("GET", "/metrics.json")
            response = connection.getresponse()
            reply = json.loads(response.read())
        finally:
            connection.close()
        assert reply["ok"] is True and "block_cache" in reply["result"]


class TestAtomicFlush:
    def test_periodic_flush_writes_complete_documents(
        self, service, seeded, tmp_path
    ):
        _config, _root, domains = seeded
        metrics_out = tmp_path / "metrics.json"
        daemon = ServeDaemon(
            service,
            socket_path=str(tmp_path / "flush.sock"),
            metrics_out=str(metrics_out),
            flush_interval=0.1,
        )
        daemon.start()
        try:
            handle_request(
                service,
                {"op": "who-has", "domain": domains[0], "corpus": "alexa"},
            )
            wait_for(
                metrics_out.exists, timeout=10,
                message="flusher wrote the metrics document",
            )
            document = json.loads(metrics_out.read_text())
            assert document["serve"]["live"]["endpoints"]["who-has"]
            # tmp+rename leaves no partial files behind.
            assert not list(tmp_path.glob("metrics.json.tmp-*"))
        finally:
            daemon.shutdown()
        # Shutdown rewrote the final snapshot — still a complete document.
        final = json.loads(metrics_out.read_text())
        assert validate(final, METRICS_SCHEMA) == []


class TestTop:
    def test_render_top_frame(self, service, seeded):
        _config, _root, domains = seeded
        for domain in domains[:3]:
            handle_request(
                service, {"op": "who-has", "domain": domain, "corpus": "alexa"}
            )
        frame = render_top(service.metrics())
        assert frame.startswith("repro top — uptime")
        assert "who-has" in frame and "60s" in frame

    def test_top_cli_drives_a_daemon(self, service, tmp_path, capsys):
        socket_path = str(tmp_path / "top.sock")
        daemon = ServeDaemon(service, socket_path=socket_path)
        daemon.start()
        try:
            assert serve_main(
                ["top", "--socket", socket_path, "--count", "1"]
            ) == 0
        finally:
            daemon.shutdown()
        out = capsys.readouterr().out
        assert "repro top — uptime" in out

    def test_top_needs_a_target(self):
        assert serve_main(["top", "--count", "1"]) == 2


class TestDisabled:
    def test_repro_live_off_disables_telemetry(self, seeded, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE", "off")
        config, root, domains = seeded
        service = InferenceService(config, ArtifactStore(root))
        assert service.live is None
        reply = handle_request(
            service, {"op": "who-has", "domain": domains[0], "corpus": "alexa"}
        )
        assert reply["ok"] is True and reply["trace"]  # ids still mint
        assert service.metrics()["live"] is None
        assert service.status()["degraded"] is False
        with pytest.raises(ServiceError):
            service.prometheus()
        trace_reply = handle_request(service, {"op": "trace", "id": reply["trace"]})
        assert trace_reply["code"] == "no-telemetry"
