"""Incremental delta re-inference must be bit-identical to batch runs.

``encode_result`` interns identity rows by object, so byte equality is a
strictly stronger check than value equality: it also proves the
incremental path reproduces the batch run's object-sharing topology.
"""

import pytest

from repro.core.pipeline import PriorityPipeline
from repro.engine.incremental import IncrementalInferencer
from repro.serve.churn import synthesize_churn
from repro.store import (
    SnapshotView,
    decode_measurements,
    encode_measurements,
    encode_result,
)
from repro.world.entities import DatasetTag


@pytest.fixture(scope="module")
def payloads(ctx):
    count = len(ctx.world.snapshot_dates)
    return [
        encode_measurements(ctx.measurements(DatasetTag.ALEXA, index))
        for index in range(count)
    ]


def batch_digest(ctx, measurements, jobs=1):
    pipeline = PriorityPipeline(
        ctx.world.trust_store, ctx.company_map, psl=ctx.world.psl
    )
    return encode_result(pipeline.run(measurements, jobs=jobs))


def make_inferencer(ctx):
    return IncrementalInferencer(
        ctx.world.trust_store, ctx.company_map, psl=ctx.world.psl
    )


class TestNaturalSequence:
    def test_bootstrap_matches_batch(self, ctx, payloads):
        inferencer = make_inferencer(ctx)
        state, report = inferencer.bootstrap(SnapshotView(payloads[0]))
        assert report.mode == "bootstrap"
        assert encode_result(state.result) == batch_digest(
            ctx, decode_measurements(payloads[0])
        )

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_every_consecutive_ingest_matches_batch(self, ctx, payloads, jobs):
        inferencer = make_inferencer(ctx)
        state, _ = inferencer.bootstrap(SnapshotView(payloads[0]), jobs=jobs)
        for index in range(1, len(payloads)):
            report = inferencer.ingest(
                state,
                SnapshotView(payloads[index]),
                snapshot_index=index,
                jobs=jobs,
            )
            assert report.mode == "delta"
            assert encode_result(state.result) == batch_digest(
                ctx, decode_measurements(payloads[index]), jobs
            ), f"snapshot {index} diverged (jobs={jobs})"


class TestSyntheticChurn:
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("rate", [0.0, 0.05, 0.5])
    def test_churned_ingest_matches_batch(self, ctx, payloads, rate, jobs):
        base = decode_measurements(payloads[-1])
        churned_payload = encode_measurements(
            synthesize_churn(base, rate, seed=7)
        )
        inferencer = make_inferencer(ctx)
        state, _ = inferencer.bootstrap(
            SnapshotView(payloads[-1]),
            snapshot_index=len(payloads) - 1,
            jobs=jobs,
        )
        inferencer.ingest(
            state,
            SnapshotView(churned_payload),
            snapshot_index=len(payloads),
            jobs=jobs,
        )
        assert encode_result(state.result) == batch_digest(
            ctx, decode_measurements(churned_payload), jobs
        )

    def test_zero_churn_reinfers_nothing(self, ctx, payloads):
        inferencer = make_inferencer(ctx)
        state, _ = inferencer.bootstrap(
            SnapshotView(payloads[-1]), snapshot_index=len(payloads) - 1
        )
        before = dict(state.result.inferences)
        report = inferencer.ingest(
            state,
            SnapshotView(payloads[-1]),
            snapshot_index=len(payloads),
        )
        assert report.reinferred == 0
        assert report.changed == 0 and report.added == 0 and report.removed == 0
        # Carried domains must keep their exact inference objects — that
        # object reuse is what preserves the result codec's row interning.
        for domain, inference in state.result.inferences.items():
            assert inference is before[domain]

    def test_report_counts_are_consistent(self, ctx, payloads):
        base = decode_measurements(payloads[-1])
        churned = synthesize_churn(base, 0.5, seed=7)
        inferencer = make_inferencer(ctx)
        state, _ = inferencer.bootstrap(
            SnapshotView(payloads[-1]), snapshot_index=len(payloads) - 1
        )
        report = inferencer.ingest(
            state,
            SnapshotView(encode_measurements(churned)),
            snapshot_index=len(payloads),
        )
        assert report.domains == len(churned)
        assert report.added == len(set(churned) - set(base))
        assert report.removed == len(set(base) - set(churned))
        assert report.reinferred >= report.changed + report.added
        assert report.keys_identified > 0
