"""Fault-tolerant serving: retries, shedding, breaker, WAL, worker pool.

The WAL tests assert the PR's core guarantee end to end: a SIGKILL (real
or simulated) at any point in an ingest yields a daemon whose answers
and stored artifacts are byte-identical to one that was never killed.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from conftest import wait_for
from repro.faults.plan import FaultPlan, resolve_plan
from repro.obs.schemas import JOURNAL_EVENT_SCHEMA, validate
from repro.resilience.journal import RunJournal, new_run_id, read_events
from repro.serve.daemon import ServeDaemon, handle_request, rpc
from repro.serve.resilience import (
    AdmissionControl,
    IngestBreaker,
    InflightLedger,
    RetryPolicy,
    ServeGuard,
    pending_wal,
    request_digest,
    rpc_retry,
    wait_until_healthy,
)
from repro.serve.service import InferenceService, ServiceError
from repro.store import ArtifactStore
from repro.store.artifacts import KIND_PRIORITY, cache_key
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS


class _FakeExit(BaseException):
    """Stands in for os._exit: uncatchable by ``except Exception``."""

    def __init__(self, code):
        self.code = code


@pytest.fixture()
def fake_exit(monkeypatch):
    """Replace os._exit with a raiser so injected crashes are observable."""
    def raiser(code):
        raise _FakeExit(code)

    monkeypatch.setattr(os, "_exit", raiser)
    return raiser


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base=0.1, multiplier=2, max_backoff=0.5, jitter=0)
        delays = [policy.backoff(attempt) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base=0.01, jitter=0)
        assert policy.backoff(0, retry_after=0.3) == 0.3
        assert policy.backoff(6, retry_after=0.3) == pytest.approx(0.64)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base=0.1, jitter=0.5)
        for _ in range(50):
            assert 0.1 <= policy.backoff(0) <= 0.15 + 1e-9


class _ScriptedServer:
    """A unix-socket server answering one scripted reply per connection."""

    def __init__(self, path, replies):
        self.path = path
        self.replies = list(replies)
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.bind(path)
        self.sock.listen(8)
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while self.replies:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                conn.recv(65536)
                reply = self.replies.pop(0)
                if reply is None:
                    continue  # slam the connection: torn reply
                conn.sendall(json.dumps(reply).encode() + b"\n")
        self.sock.close()


class TestRpcRetry:
    def test_retries_connect_refused_until_the_daemon_appears(self, tmp_path):
        path = str(tmp_path / "late.sock")
        ok = {"ok": True, "result": {"pong": True}}

        def start_later():
            time.sleep(0.2)
            _ScriptedServer(path, [ok])

        threading.Thread(target=start_later, daemon=True).start()
        reply = rpc_retry(
            ("socket", path), {"op": "ping"},
            policy=RetryPolicy(attempts=8, base=0.05, jitter=0),
        )
        assert reply["ok"] is True

    def test_retries_torn_reply_and_overloaded(self, tmp_path):
        path = str(tmp_path / "flaky.sock")
        shed = {"ok": False, "code": "overloaded", "retry_after": 0.01}
        ok = {"ok": True, "result": 42}
        _ScriptedServer(path, [None, shed, ok])
        reply = rpc_retry(
            ("socket", path), {"op": "ping"},
            policy=RetryPolicy(attempts=5, base=0.01, jitter=0),
        )
        assert reply == ok

    def test_non_retryable_errors_return_immediately(self, tmp_path):
        path = str(tmp_path / "bad.sock")
        bad = {"ok": False, "code": "not-found", "error": "nope"}
        _ScriptedServer(path, [bad, {"ok": True}])
        reply = rpc_retry(
            ("socket", path), {"op": "ping"},
            policy=RetryPolicy(attempts=3, base=0.01, jitter=0),
        )
        assert reply == bad

    def test_budget_exhaustion_raises_the_last_error(self, tmp_path):
        with pytest.raises(OSError):
            rpc_retry(
                ("socket", str(tmp_path / "nothing.sock")), {"op": "ping"},
                policy=RetryPolicy(attempts=2, base=0.01, jitter=0),
            )

    def test_wait_until_healthy_times_out(self, tmp_path):
        with pytest.raises(TimeoutError):
            wait_until_healthy(
                ("socket", str(tmp_path / "void.sock")), timeout=0.3
            )


class TestAdmissionControl:
    def test_sheds_when_full_and_recovers_on_release(self):
        control = AdmissionControl(max_inflight=2, queue_wait=0.01)
        assert control.admit() and control.admit()
        assert not control.admit()  # full: shed
        snap = control.snapshot()
        assert snap["inflight"] == 2 and snap["shed"] == 1
        control.release()
        assert control.admit()
        assert control.retry_after > 0

    def test_guard_sheds_with_retry_after(self, seeded):
        config, root, domains = seeded
        service = InferenceService(config, ArtifactStore(root))
        gate = threading.Event()
        release = threading.Event()

        def slow_handler(_service, _request):
            gate.set()
            release.wait(5)
            return {"ok": True, "result": "slow"}

        guard = ServeGuard(admission=AdmissionControl(1, queue_wait=0.01))
        request = {"op": "who-has", "domain": domains[0]}
        results = {}

        def first():
            results["first"] = guard.dispatch(service, request, slow_handler)

        thread = threading.Thread(target=first)
        thread.start()
        assert gate.wait(5)
        shed = guard.dispatch(service, request, slow_handler)
        assert shed["ok"] is False and shed["code"] == "overloaded"
        assert shed["retry_after"] > 0 and shed["trace"]
        # Control ops bypass admission even while the pool is saturated.
        ping = guard.dispatch(service, {"op": "ping"}, handle_request)
        assert ping["ok"] is True
        release.set()
        thread.join(5)
        assert results["first"]["ok"] is True

    def test_quarantined_requests_are_refused(self, seeded):
        config, root, domains = seeded
        service = InferenceService(config, ArtifactStore(root))
        poison = {"op": "who-has", "domain": domains[0], "corpus": "alexa"}
        guard = ServeGuard(quarantine={request_digest(poison)})
        reply = guard.dispatch(service, dict(poison), handle_request)
        assert reply["ok"] is False and reply["code"] == "quarantined"
        other = guard.dispatch(
            service, {"op": "who-has", "domain": domains[1]}, handle_request
        )
        assert other["ok"] is True


class TestIngestBreaker:
    def test_state_machine_with_fake_clock(self, tmp_path):
        clock = [0.0]
        journal = RunJournal(tmp_path, "r-test")
        breaker = IngestBreaker(
            threshold=2, cooldown=5.0, clock=lambda: clock[0], journal=journal
        )
        assert breaker.allow() and not breaker.stale
        breaker.record_failure()
        assert breaker.allow()  # one failure: still closed
        breaker.record_failure()
        assert breaker.stale and not breaker.allow()
        assert breaker.state()["state"] == "open"
        assert 0 < breaker.retry_after() <= 5.0
        clock[0] = 6.0
        assert breaker.allow()  # half-open probe
        assert breaker.state()["state"] == "half-open"
        breaker.record_failure()  # probe failed: re-open, cooldown restarts
        assert not breaker.allow()
        clock[0] = 12.0
        breaker.record_success()
        assert not breaker.stale and breaker.state()["state"] == "closed"
        kinds = [event["event"] for event in read_events(journal.path)]
        assert kinds.count("serve.breaker.open") == 1
        assert kinds.count("serve.breaker.close") == 1

    def test_tripped_breaker_rejects_ingest_and_flags_stale(
        self, seeded, tmp_path
    ):
        config, root, domains = seeded
        journal = RunJournal(tmp_path, "r-stale")
        clock = [0.0]
        breaker = IngestBreaker(
            threshold=1, cooldown=60.0, clock=lambda: clock[0]
        )
        service = InferenceService(
            config, ArtifactStore(root), journal=journal, breaker=breaker
        )
        clean = service.who_has(domains[0], corpus="alexa")
        assert "stale" not in clean  # normal-path bytes are unchanged
        breaker.record_failure()
        with pytest.raises(ServiceError) as excinfo:
            service.ingest(NUM_SNAPSHOTS - 1, "alexa")
        assert excinfo.value.code == "circuit-open"
        assert excinfo.value.retry_after > 0
        stale = service.who_has(domains[0], corpus="alexa")
        assert stale["stale"] is True
        assert service.status()["degraded"] in (True, False)  # live may be off
        section = service.metrics()["resilience"]
        assert section["breaker"]["state"] == "open"


class TestInflightLedger:
    def test_begin_done_roundtrip(self):
        ledger = InflightLedger(workers=2)
        try:
            slot = ledger.slot(1)
            digest = request_digest({"op": "who-has", "domain": "a.example"})
            slot.begin(digest)
            record = ledger.read(1)
            assert record["inflight"] == 1
            assert record["request"] == digest
            assert ledger.read(0) is None
            slot.done()
            assert ledger.read(1) is None
        finally:
            ledger.close()

    def test_nested_requests_keep_the_first_blame(self):
        ledger = InflightLedger(workers=1)
        try:
            slot = ledger.slot(0)
            slot.begin("outer")
            slot.begin("inner")
            record = ledger.read(0)
            assert record["inflight"] == 2 and record["request"] == "outer"
            slot.done()
            assert ledger.read(0)["inflight"] == 1
            slot.done()
            assert ledger.read(0) is None
        finally:
            ledger.close()

    def test_oversize_payload_is_truncated_not_corrupt(self):
        ledger = InflightLedger(workers=1)
        try:
            slot = ledger.slot(0)
            slot.begin("x" * 4096)
            record = ledger.read(0)
            assert record["request"] and len(record["request"]) < 512
        finally:
            ledger.close()


class TestGuardInjection:
    def test_crash_channel_is_hash_pure_and_kills_the_worker(
        self, seeded, fake_exit
    ):
        config, root, domains = seeded
        service = InferenceService(config, ArtifactStore(root))
        plan = resolve_plan("serve.worker.crash=1.0", 3)
        assert isinstance(plan, FaultPlan) and plan.serve_active
        guard = ServeGuard(plan=plan, slot=0)
        request = {"op": "who-has", "domain": domains[0], "corpus": "alexa"}
        with pytest.raises(_FakeExit) as excinfo:
            guard.dispatch(service, request, handle_request)
        assert excinfo.value.code == 113  # EXIT_INJECTED_CRASH
        # Control ops never roll the channel.
        assert guard.dispatch(service, {"op": "ping"}, handle_request)["ok"]

    def test_zero_rate_plan_never_fires(self, seeded):
        config, root, domains = seeded
        service = InferenceService(config, ArtifactStore(root))
        # A measurement-channel-only plan has no serving channels active.
        guard = ServeGuard(plan=resolve_plan("dns.timeout=0.5", 3))
        reply = guard.dispatch(
            service,
            {"op": "who-has", "domain": domains[0], "corpus": "alexa"},
            handle_request,
        )
        assert reply["ok"] is True


class TestPendingWal:
    def _journal(self, tmp_path, events):
        journal = RunJournal(tmp_path, "r-wal")
        for event, fields in events:
            journal.append(event, **fields)
        journal.close()
        return journal.path

    def test_matched_pairs_leave_nothing_pending(self, tmp_path):
        path = self._journal(tmp_path, [
            ("ingest.wal.begin", {"snapshot": 5, "corpora": ["alexa"]}),
            ("ingest.wal.commit", {"snapshot": 5, "corpora": ["alexa"]}),
        ])
        assert pending_wal(path) == []

    def test_dangling_begin_is_pending(self, tmp_path):
        path = self._journal(tmp_path, [
            ("ingest.wal.begin", {"snapshot": 5, "corpora": ["alexa"]}),
            ("ingest.wal.commit", {"snapshot": 5, "corpora": ["alexa"]}),
            ("ingest.wal.begin", {"snapshot": 6, "corpora": ["alexa", "com"]}),
        ])
        pending = pending_wal(path)
        assert len(pending) == 1 and pending[0]["snapshot"] == 6

    def test_journaled_failure_closes_the_intent(self, tmp_path):
        path = self._journal(tmp_path, [
            ("ingest.wal.begin", {"snapshot": 6, "corpora": ["alexa"]}),
            ("ingest.wal.failed",
             {"snapshot": 6, "corpora": ["alexa"], "error": "boom"}),
        ])
        assert pending_wal(path) == []

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = self._journal(tmp_path, [
            ("ingest.wal.begin", {"snapshot": 3, "corpora": ["gov"]}),
        ])
        with open(path, "a") as handle:
            handle.write('{"event": "ingest.wal.com')  # killed mid-append
        pending = pending_wal(path)
        assert len(pending) == 1 and pending[0]["snapshot"] == 3

    def test_missing_journal_is_empty(self, tmp_path):
        assert pending_wal(tmp_path / "never-written.jsonl") == []


def _private_store(root, tmp_path):
    private = tmp_path / "store"
    shutil.copytree(root, private)
    return ArtifactStore(str(private))


class TestWalRecovery:
    def test_replay_restores_byte_identical_artifacts(self, seeded, tmp_path):
        config, root, _domains = seeded
        store = _private_store(root, tmp_path)
        latest = NUM_SNAPSHOTS - 1
        key = cache_key(config, DatasetTag.ALEXA, latest, KIND_PRIORITY)
        expected = store.read(key)
        assert expected is not None
        # Simulate a SIGKILL mid-ingest: the intent landed, the result
        # artifact did not, and no commit was written.
        store.discard(key)
        journal = RunJournal(tmp_path / "run", new_run_id())
        journal.append(
            "ingest.wal.begin", snapshot=latest, corpora=["alexa"]
        )
        service = InferenceService(
            config, store, journal=journal, watch_generation=True
        )
        assert service.readiness()["ready"] is False
        outcome = service.recover()
        assert outcome == {"replayed": 1, "failed": 0}
        assert service.readiness()["ready"] is True
        assert store.read(key) == expected  # byte-identical to undisturbed
        kinds = [event["event"] for event in read_events(journal.path)]
        assert "ingest.wal.replay" in kinds
        assert "ingest.wal.commit" in kinds
        assert pending_wal(journal.path) == []  # replay closed the intent
        for event in read_events(journal.path):
            assert validate(event, JOURNAL_EVENT_SCHEMA) == []

    def test_recover_without_pending_work_is_a_noop(self, seeded, tmp_path):
        config, root, _domains = seeded
        journal = RunJournal(tmp_path / "run", new_run_id())
        service = InferenceService(
            config, ArtifactStore(root), journal=journal
        )
        assert service.recover() == {"replayed": 0, "failed": 0}
        assert service.readiness()["ready"] is True


class TestIngestCrashInjection:
    def test_killed_ingest_replays_to_identical_bytes(
        self, seeded, tmp_path, fake_exit
    ):
        config, root, _domains = seeded
        store = _private_store(root, tmp_path)
        latest = NUM_SNAPSHOTS - 1
        key = cache_key(config, DatasetTag.ALEXA, latest, KIND_PRIORITY)
        expected = store.read(key)
        store.discard(key)
        plan = resolve_plan("ingest.crash=1.0", 11)
        journal = RunJournal(tmp_path / "run", new_run_id())
        crashed = InferenceService(
            config, store, journal=journal, fault_plan=plan
        )
        with pytest.raises(_FakeExit):  # dies right after the WAL begin
            crashed.ingest(latest, "alexa")
        assert store.read(key) is None  # nothing was published
        assert len(pending_wal(journal.path)) == 1
        # Restart WITH the same fault plan: replay suppresses the channel
        # (the roll that killed the original must not kill every replay).
        restarted = InferenceService(
            config, store, journal=journal, fault_plan=plan
        )
        outcome = restarted.recover()
        assert outcome == {"replayed": 1, "failed": 0}
        assert store.read(key) == expected
        assert pending_wal(journal.path) == []


class TestConsistencyBarrier:
    def test_queries_racing_an_ingest_never_see_a_torn_map(
        self, seeded, tmp_path
    ):
        """Satellite 3: in-flight ingest is invisible until it commits.

        The latest alexa result is removed, then queries race a live
        ingest of that snapshot.  Every racing query must see either the
        old world (no-artifact) or the new world (the exact final map)
        — never a partially-updated live state.
        """
        config, root, _domains = seeded
        store = _private_store(root, tmp_path)
        latest = NUM_SNAPSHOTS - 1
        key = cache_key(config, DatasetTag.ALEXA, latest, KIND_PRIORITY)
        expected = store.read(key)
        store.discard(key)
        service = InferenceService(config, store)
        barrier = threading.Barrier(3)
        done = threading.Event()
        observations: list[tuple] = []
        failures: list[BaseException] = []
        from repro.store import ResultView

        final_view = ResultView(expected)

        def query_loop():
            barrier.wait(10)
            while not done.is_set():
                try:
                    reply = service.provider_stats("alexa", latest)
                    observations.append(("stats", reply["domains"]))
                except ServiceError as error:
                    if error.code != "no-artifact":
                        failures.append(error)
                    observations.append(("miss", None))
                except BaseException as error:  # noqa: BLE001
                    failures.append(error)

        def ingest_thread():
            barrier.wait(10)
            try:
                service.ingest(latest, "alexa")
            finally:
                done.set()

        threads = [
            threading.Thread(target=query_loop),
            threading.Thread(target=query_loop),
            threading.Thread(target=ingest_thread),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not failures, failures
        assert observations  # the race actually ran queries
        assert store.read(key) == expected  # publish is byte-identical
        final_stats = final_view.provider_stats()
        for kind, domains in observations:
            if kind == "stats":
                # Any successful answer IS the committed new world —
                # atomic flip, no intermediate domain counts.
                assert domains == final_stats["domains"]
        # After the dust settles the live state serves the same answer.
        settled = service.provider_stats("alexa", latest)
        assert settled["domains"] == final_stats["domains"]


_POOL_TIMEOUT = 120


class TestWorkerPool:
    @pytest.fixture()
    def pool(self, seeded, tmp_path):
        """A real `repro serve --workers 2` subprocess over the store."""
        config, root, _domains = seeded
        socket_path = str(tmp_path / "pool.sock")
        run_dir = str(tmp_path / "run")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "run",
                "--workers", "2",
                "--socket", socket_path,
                "--cache-dir", root,
                "--seed", str(config.seed),
                "--scale", "0.25",
                "--run-dir", run_dir,
                "--restart-budget", "8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
            text=True,
        )
        try:
            yield process, socket_path, run_dir
        finally:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()

    def _events(self, run_dir):
        path = os.path.join(run_dir, "journal.jsonl")
        if not os.path.exists(path):
            return []
        return read_events(path)

    def test_pool_survives_a_worker_sigkill(self, seeded, pool):
        _config, _root, domains = seeded
        process, socket_path, run_dir = pool
        target = ("socket", socket_path)
        wait_until_healthy(target, timeout=60)

        def worker_pids():
            return {
                event["pid"]
                for event in self._events(run_dir)
                if event["event"] == "serve.worker.start"
            }

        wait_for(lambda: len(worker_pids()) >= 2, timeout=60,
                 message="two workers journaled serve.worker.start")
        request = {"op": "who-has", "domain": domains[0], "corpus": "alexa"}
        reply = rpc_retry(target, request)
        assert reply["ok"] is True

        victim = sorted(worker_pids())[0]
        os.kill(victim, signal.SIGKILL)
        wait_for(
            lambda: any(
                event["event"] == "serve.worker.lost"
                for event in self._events(run_dir)
            ),
            timeout=30, message="supervisor journaled serve.worker.lost",
        )
        wait_for(
            lambda: any(
                event["event"] == "serve.worker.restart"
                for event in self._events(run_dir)
            ),
            timeout=30, message="supervisor journaled serve.worker.restart",
        )
        # The pool still serves: retried requests land on a live worker.
        for _ in range(5):
            reply = rpc_retry(target, request, timeout=30)
            assert reply["ok"] is True, reply

        # /readyz answers through the pool too.
        ready = rpc_retry(target, {"op": "ready"}, timeout=30)
        assert ready["ok"] is True and ready["result"]["ready"] is True

        # Graceful stop drains the whole pool with exit code 0.
        stop = rpc(target, {"op": "shutdown"}, timeout=30)
        assert stop["ok"] is True
        assert process.wait(timeout=_POOL_TIMEOUT) == 0
        events = self._events(run_dir)
        kinds = [event["event"] for event in events]
        for expected in ("serve.start", "serve.ready", "serve.worker.start",
                         "serve.worker.lost", "serve.worker.restart",
                         "serve.stop"):
            assert expected in kinds, kinds
        for event in events:
            assert validate(event, JOURNAL_EVENT_SCHEMA) == [], event
