"""ServeDaemon: in-process socket server round-trips and shutdown."""

import os

import pytest

from repro.serve.daemon import ServeDaemon, handle_request, request_socket
from repro.serve.service import InferenceService
from repro.store import ArtifactStore


@pytest.fixture()
def daemon(seeded, tmp_path):
    config, root, domains = seeded
    service = InferenceService(config, ArtifactStore(root))
    socket_path = str(tmp_path / "serve.sock")
    daemon = ServeDaemon(service, socket_path=socket_path)
    daemon.start()
    try:
        yield daemon, socket_path, domains
    finally:
        daemon.shutdown()


class TestSocketRPC:
    def test_ping(self, daemon):
        _daemon, socket_path, _domains = daemon
        reply = request_socket(socket_path, {"op": "ping"})
        assert reply["ok"] is True
        assert reply["result"] == {"pong": True}
        assert reply["trace"]  # every response carries its trace id

    def test_who_has_round_trip(self, daemon):
        _daemon, socket_path, domains = daemon
        reply = request_socket(
            socket_path,
            {"op": "who-has", "domain": domains[0], "corpus": "alexa"},
        )
        assert reply["ok"] is True
        assert reply["result"]["domain"] == domains[0]
        assert reply["result"]["providers"]

    def test_metrics_over_socket(self, daemon):
        _daemon, socket_path, domains = daemon
        request_socket(
            socket_path,
            {"op": "who-has", "domain": domains[0], "corpus": "alexa"},
        )
        reply = request_socket(socket_path, {"op": "metrics"})
        assert reply["ok"] is True
        assert "who-has" in reply["result"]["endpoints"]

    def test_errors_stay_structured(self, daemon):
        _daemon, socket_path, _domains = daemon
        reply = request_socket(socket_path, {"op": "frobnicate"})
        assert reply["ok"] is False
        assert reply["error"] == "unknown op 'frobnicate'"
        assert reply["code"] == "unknown-op"
        assert reply["trace"]
        reply = request_socket(socket_path, {"op": "who-has"})
        assert reply["ok"] is False and reply["code"] == "bad-request"
        reply = request_socket(
            socket_path, {"op": "who-has", "domain": "nope.example"}
        )
        assert reply["ok"] is False and reply["code"] == "not-found"

    def test_shutdown_op_stops_the_daemon(self, daemon):
        server, socket_path, _domains = daemon
        reply = request_socket(socket_path, {"op": "shutdown"})
        assert reply["ok"] is True and reply["result"]["stopping"] is True
        assert server.wait(timeout=10)

    def test_socket_file_is_cleaned_up(self, seeded, tmp_path):
        config, root, _domains = seeded
        service = InferenceService(config, ArtifactStore(root))
        socket_path = str(tmp_path / "cleanup.sock")
        daemon = ServeDaemon(service, socket_path=socket_path)
        daemon.start()
        assert os.path.exists(socket_path)
        daemon.shutdown()
        assert not os.path.exists(socket_path)


class TestDispatch:
    def test_handle_request_never_raises(self, seeded):
        config, root, _domains = seeded
        service = InferenceService(config, ArtifactStore(root))
        reply = handle_request(service, {"op": "who-has"})
        assert reply["ok"] is False and reply["code"] == "bad-request"
        reply = handle_request(service, {})
        assert reply["ok"] is False and reply["code"] == "unknown-op"
