"""Determinism of fault decisions: pure rolls, monotone rates, any executor.

The contract under test is the heart of the chaos harness: every fault
decision is a pure function of (seed, channel, key), so the same plan
produces bit-identical faulted snapshots regardless of worker count,
executor kind, call order, or retries elsewhere — and raising a rate can
only *add* fault events, never reshuffle them.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineOptions
from repro.experiments.common import StudyContext
from repro.faults import FaultInjector, FaultPlan, fault_roll
from repro.tls.ca import reset_serials
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag

DAY = date(2021, 6, 8)

# Small world, but big enough that gathering takes the parallel path
# (MIN_PARALLEL_TARGETS) when jobs > 1.
FAST_CONFIG = WorldConfig(seed=7, alexa_size=150, com_size=80, gov_size=40)

keys = st.lists(
    st.one_of(st.text(max_size=12), st.integers(), st.dates()),
    min_size=1,
    max_size=4,
).map(tuple)

grid_rates = st.integers(min_value=0, max_value=1000).map(lambda n: n / 1000)


def _roll(args):
    seed, channel, key = args
    return fault_roll(seed, channel, *key)


class TestRollPurity:
    @given(st.integers(min_value=0, max_value=2**32), keys)
    def test_roll_is_pure_and_uniform(self, seed, key):
        first = fault_roll(seed, "chan", *key)
        assert 0.0 <= first < 1.0
        assert fault_roll(seed, "chan", *key) == first

    @given(
        st.integers(min_value=0, max_value=2**32), keys, grid_rates, grid_rates
    )
    def test_monotone_subset(self, seed, key, r1, r2):
        low, high = sorted((r1, r2))
        injector = FaultInjector(FaultPlan(seed=seed))
        if injector.would(low, "chan", *key):
            assert injector.would(high, "chan", *key)

    def test_channels_are_independent(self):
        rolls = {
            channel: fault_roll(1, channel, "2021-06-08", "1.2.3.4")
            for channel in ("dns.servfail", "smtp.timeout", "scan.dropout")
        }
        assert len(set(rolls.values())) == len(rolls)

    def test_seed_changes_the_workload(self):
        assert fault_roll(1, "chan", "k") != fault_roll(2, "chan", "k")


class TestExecutorInvariance:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**16))
    def test_rolls_identical_across_executors(self, seed):
        work = [
            (seed, "smtp.timeout", (DAY.isoformat(), f"11.0.{block}.{host}", attempt))
            for block in range(4)
            for host in range(8)
            for attempt in range(3)
        ]
        serial = [_roll(args) for args in work]
        with ThreadPoolExecutor(max_workers=4) as pool:
            threaded = list(pool.map(_roll, work))
        assert threaded == serial

    def test_rolls_identical_across_processes(self):
        work = [
            (1, "scan.dropout", (DAY.isoformat(), f"11.0.0.{host}"))
            for host in range(64)
        ]
        serial = [_roll(args) for args in work]
        with ProcessPoolExecutor(max_workers=2) as pool:
            forked = list(pool.map(_roll, work))
        assert forked == serial

    def test_decisions_do_not_depend_on_call_order(self):
        injector = FaultInjector(FaultPlan.uniform(0.3, seed=5))
        addresses = [f"11.0.0.{host}" for host in range(32)]
        forward = {a: injector.scan_dropped(a, DAY) for a in addresses}
        backward = {a: injector.scan_dropped(a, DAY) for a in reversed(addresses)}
        assert forward == backward


PLAN = FaultPlan.uniform(0.2, seed=11)


def _gather(jobs: int, executor: str):
    reset_serials()
    ctx = StudyContext.create(
        FAST_CONFIG,
        engine=EngineOptions(jobs=jobs, executor=executor),
        store=None,
        faults=PLAN,
    )
    last = len(ctx.world.snapshot_dates) - 1
    measurements = ctx.measurements(DatasetTag.ALEXA, last)
    inferences = ctx.priority(DatasetTag.ALEXA, last)
    return measurements, inferences


class TestGatherEquivalence:
    """Same (seed, plan) ⇒ identical faulted snapshots at any --jobs."""

    @pytest.fixture(scope="class")
    def reference(self):
        return _gather(jobs=1, executor="thread")

    @pytest.mark.parametrize("jobs,executor", [
        (4, "thread"),
        (4, "process"),
    ])
    def test_faulted_gather_matches_serial(self, reference, jobs, executor):
        measurements, inferences = _gather(jobs=jobs, executor=executor)
        ref_measurements, ref_inferences = reference
        assert measurements == ref_measurements
        assert inferences == ref_inferences
