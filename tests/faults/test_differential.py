"""Differential golden tests: ``--faults none`` is byte-for-byte a no-op.

The acceptance bar for the fault seams is that a run with faults disabled
is indistinguishable — same stdout, same artifact bytes, same store cache
keys, same manifest — from a run where the faults machinery is never
consulted at all.
"""

import dataclasses

from repro.cli import main
from repro.engine import EngineOptions
from repro.experiments.common import StudyContext
from repro.faults import FaultPlan, resolve_plan
from repro.obs.manifest import build_manifest
from repro.store import ArtifactStore
from repro.store.artifacts import KIND_MEASUREMENTS, KIND_PRIORITY, cache_key
from repro.tls.ca import reset_serials
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag

CONFIG = WorldConfig(seed=7, alexa_size=150, com_size=80, gov_size=40)


def run_cli(capsys, extra=()):
    code = main(["tab4", "--scale", "0.3", "--no-cache", *extra])
    assert code == 0
    return capsys.readouterr().out


class TestCLIGolden:
    def test_faults_none_stdout_identical(self, capsys):
        baseline = run_cli(capsys)
        disabled = run_cli(capsys, ["--faults", "none"])
        assert disabled == baseline

    def test_zero_rate_spec_is_also_off(self, capsys):
        baseline = run_cli(capsys)
        zeroed = run_cli(capsys, ["--faults", "0"])
        assert zeroed == baseline

    def test_active_faults_change_the_output(self, capsys):
        baseline = run_cli(capsys)
        faulted = run_cli(capsys, ["--faults", "0.2"])
        assert faulted != baseline


def populate_store(tmp_path, name, faults):
    reset_serials()
    store = ArtifactStore(tmp_path / name)
    ctx = StudyContext.create(
        CONFIG, engine=EngineOptions(), store=store, faults=faults
    )
    last = len(ctx.world.snapshot_dates) - 1
    ctx.measurements(DatasetTag.ALEXA, last)
    ctx.priority(DatasetTag.ALEXA, last)
    root = store.root
    return {
        path.relative_to(root): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestStoreGolden:
    def test_store_entries_identical_with_faults_absent_vs_none(self, tmp_path):
        absent = populate_store(tmp_path, "absent", None)
        disabled = populate_store(tmp_path, "none", FaultPlan.parse("none"))
        assert absent and disabled == absent  # same filenames, same bytes

    def test_cache_keys_unchanged_without_faults(self):
        for kind in (KIND_MEASUREMENTS, KIND_PRIORITY):
            assert cache_key(CONFIG, DatasetTag.ALEXA, 0, kind) == cache_key(
                CONFIG, DatasetTag.ALEXA, 0, kind, None
            )

    def test_active_plans_get_their_own_keys(self):
        plain = cache_key(CONFIG, DatasetTag.ALEXA, 0, KIND_MEASUREMENTS)
        faulted = cache_key(
            CONFIG, DatasetTag.ALEXA, 0, KIND_MEASUREMENTS,
            FaultPlan.uniform(0.1, seed=1).canonical(),
        )
        assert faulted != plain
        other_seed = cache_key(
            CONFIG, DatasetTag.ALEXA, 0, KIND_MEASUREMENTS,
            FaultPlan.uniform(0.1, seed=2).canonical(),
        )
        assert other_seed != faulted


class TestManifestGolden:
    def test_manifest_has_no_faults_key_when_off(self):
        document = build_manifest(config=CONFIG, faults=resolve_plan("none"))
        assert "faults" not in document

    def test_manifest_records_active_plans(self):
        plan = FaultPlan.uniform(0.1, seed=3)
        document = build_manifest(config=CONFIG, faults=plan)
        assert document["faults"]["spec"] == plan.canonical()
        assert document["faults"]["seed"] == 3


class TestContextGolden:
    def test_inactive_plan_installs_no_injector(self):
        for faults in (None, "none", FaultPlan(), FaultPlan.parse("0")):
            ctx = StudyContext.create(CONFIG, store=None, faults=faults)
            assert ctx.faults is None
            assert ctx.faults_key() is None

    def test_active_plan_is_threaded_through(self):
        plan = FaultPlan.uniform(0.1, seed=5)
        ctx = StudyContext.create(CONFIG, store=None, faults=plan)
        assert ctx.faults is not None and ctx.faults.plan == plan
        assert ctx.faults_key() == plan.canonical()
        assert ctx.gatherer.censys.faults is ctx.faults

    def test_measurements_identical_with_faults_absent_vs_inactive(self):
        snapshots = []
        for faults in (None, FaultPlan.parse("none")):
            reset_serials()
            ctx = StudyContext.create(CONFIG, store=None, faults=faults)
            snapshots.append(ctx.measurements(DatasetTag.COM, 0))
        assert snapshots[0] == snapshots[1]

    def test_equal_plans_compare_equal(self):
        assert FaultPlan.uniform(0.1, seed=1) == FaultPlan.parse("0.1", seed=1)
        assert dataclasses.asdict(FaultPlan.uniform(0.1)) == dataclasses.asdict(
            FaultPlan.parse("rate=0.1")
        )
