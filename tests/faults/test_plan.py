"""Unit and property tests for FaultPlan parsing and canonicalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import FAULTS_ENV, FaultPlan, as_plan, resolve_plan
from repro.faults.plan import RATE_FIELDS


class TestParsing:
    @pytest.mark.parametrize("word", ["none", "off", "0", "no", "", "  None "])
    def test_off_words_are_inactive(self, word):
        plan = FaultPlan.parse(word)
        assert not plan.active
        assert plan.canonical() == "none"

    def test_bare_rate_is_uniform(self):
        plan = FaultPlan.parse("0.25", seed=3)
        assert plan == FaultPlan.uniform(0.25, seed=3)
        for attr in RATE_FIELDS.values():
            assert getattr(plan, attr) == 0.25

    def test_item_grammar(self):
        plan = FaultPlan.parse(
            "rate=0.1, dns.servfail=0.5, seed=9, retries=5, budget=2.5, asn:64501=0.8"
        )
        assert plan.seed == 9
        assert plan.dns_servfail == 0.5      # channel override wins
        assert plan.smtp_timeout == 0.1      # everything else at the base rate
        assert plan.max_attempts == 5
        assert plan.retry_budget == 2.5
        assert plan.asn_dropout == ((64501, 0.8),)

    def test_seed_argument_is_a_default(self):
        assert FaultPlan.parse("rate=0.1", seed=4).seed == 4
        assert FaultPlan.parse("rate=0.1,seed=2", seed=4).seed == 2

    @pytest.mark.parametrize(
        "spec",
        ["bogus=1", "dns.servfail", "rate=1.5", "dns.timeout=-0.1", "asn:x=0.5"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(dns_servfail=1.2)
        with pytest.raises(ValueError):
            FaultPlan(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPlan(retry_budget=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(asn_dropout=((64501, 2.0),))


class TestEnvironment:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        assert resolve_plan(None) is None

    def test_env_supplies_the_plan(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "scan.dropout=0.5")
        plan = resolve_plan(None)
        assert plan is not None and plan.scan_dropout == 0.5

    def test_explicit_spec_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "scan.dropout=0.5")
        assert resolve_plan("none") is None
        assert resolve_plan("0.1").scan_dropout == 0.1

    def test_garbage_env_warns_and_disables(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "not-a-spec=maybe")
        with pytest.warns(UserWarning, match="unparseable"):
            assert FaultPlan.from_env() is None


class TestCoercion:
    def test_as_plan(self):
        assert as_plan(None) is None
        assert as_plan("none") is None
        assert as_plan(FaultPlan()) is None           # inactive plan → None
        plan = FaultPlan.uniform(0.1)
        assert as_plan(plan) is plan
        assert as_plan("0.1") == plan
        with pytest.raises(TypeError):
            as_plan(0.1)


# Rates on a 3-decimal grid: canonical() renders with %g, so arbitrary
# floats would lose precision in the round trip by design.
grid_rates = st.integers(min_value=0, max_value=1000).map(lambda n: n / 1000)

plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32),
    dns_servfail=grid_rates,
    dns_timeout=grid_rates,
    dns_partial=grid_rates,
    smtp_refused=grid_rates,
    smtp_timeout=grid_rates,
    smtp_truncate=grid_rates,
    tls_fail=grid_rates,
    scan_dropout=grid_rates,
    asn_dropout=st.lists(
        st.tuples(st.integers(min_value=1, max_value=2**31), grid_rates),
        max_size=3,
        unique_by=lambda pair: pair[0],
    ).map(lambda pairs: tuple(sorted(pairs))),
    max_attempts=st.integers(min_value=1, max_value=6),
    retry_budget=st.integers(min_value=0, max_value=64).map(lambda n: n / 4),
)


class TestCanonicalProperties:
    @given(plans)
    def test_canonical_round_trips(self, plan):
        reparsed = FaultPlan.parse(plan.canonical(), seed=plan.seed)
        if plan.active:
            # Zero-rate channels and zero-rate ASN overrides are dropped
            # from the canonical form; everything that can fire survives.
            for attr in RATE_FIELDS.values():
                assert getattr(reparsed, attr) == getattr(plan, attr)
            assert dict(reparsed.asn_dropout) == {
                asn: rate for asn, rate in plan.asn_dropout if rate > 0
            }
            assert reparsed.seed == plan.seed
            assert reparsed.max_attempts == plan.max_attempts
            assert reparsed.retry_budget == plan.retry_budget
        else:
            assert plan.canonical() == "none"
            assert not reparsed.active

    @given(plans)
    def test_canonical_is_a_fixed_point(self, plan):
        once = plan.canonical()
        assert FaultPlan.parse(once, seed=plan.seed).canonical() == once

    @given(plans)
    def test_activity_matches_rates(self, plan):
        fires = any(getattr(plan, attr) > 0 for attr in RATE_FIELDS.values())
        fires = fires or any(rate > 0 for _asn, rate in plan.asn_dropout)
        assert plan.active == fires
