"""Integration tests for the chaos harness and evidence-loss provenance."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import EngineOptions
from repro.engine.stats import STATS
from repro.experiments.common import StudyContext
from repro.faults import FaultInjector, FaultPlan
from repro.obs import provenance
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag

REPO = Path(__file__).resolve().parents[2]
CONFIG = WorldConfig(seed=7, alexa_size=150, com_size=80, gov_size=40)


class TestChaosSweepScript:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("chaos") / "sweep.json"
        table = out.with_suffix(".md")
        completed = subprocess.run(
            [
                sys.executable, "scripts/chaos_sweep.py",
                "--rates", "0,0.3", "--seed", "1", "--scale", "0.2",
                # The default tolerance is sized for rate 0.2; this test
                # sweeps to 0.3, where a uniform plan costs ~0.66.
                "--tolerance", "0.75",
                "--check", "--json", str(out), "--table", str(table),
            ],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        return json.loads(out.read_text()), table.read_text(), completed

    def test_gates_pass(self, sweep):
        document, _table, _completed = sweep
        assert document["bench"] == "chaos-sweep"
        assert document["failures"] == []

    def test_rate_zero_is_byte_identical_to_baseline(self, sweep):
        document, _table, _completed = sweep
        baseline = document["context"]["baseline"]
        zero = next(row for row in document["rows"] if row["rate"] == 0.0)
        assert zero["digests"] == baseline["digests"]
        assert zero["cache_keys"] == baseline["cache_keys"]
        assert zero["fault_counters"] == {}

    def test_faulted_run_degrades_and_counts(self, sweep):
        document, _table, _completed = sweep
        faulted = next(row for row in document["rows"] if row["rate"] == 0.3)
        baseline = document["context"]["baseline"]
        assert faulted["digests"] != baseline["digests"]
        assert faulted["accuracy"] < baseline["accuracy"]
        assert sum(faulted["fault_counters"].values()) > 0
        # The ladder falls downward: strictly fewer cert-tier wins.
        assert (
            faulted["tier_shares"]["cert"] <= baseline["tier_shares"]["cert"]
        )

    def test_table_artifact_shape(self, sweep):
        _document, table, _completed = sweep
        lines = table.strip().splitlines()
        assert lines[0].startswith("| rate | accuracy |")
        assert len(lines) == 2 + 2  # header, separator, one row per rate


class TestEvidenceLossProvenance:
    @pytest.fixture(scope="class")
    def faulted_ctx(self):
        return StudyContext.create(
            CONFIG,
            engine=EngineOptions(),
            store=None,
            faults=FaultPlan.uniform(0.3, seed=2),
        )

    def find_lossy_record(self, ctx):
        last = len(ctx.world.snapshot_dates) - 1
        for domain in ctx.domains(DatasetTag.ALEXA):
            record = provenance.explain(ctx, domain, last, dataset=DatasetTag.ALEXA)
            if record and record.get("evidence_loss"):
                return record
        raise AssertionError("no domain lost evidence at rate 0.3?")

    def test_explain_reports_injected_losses(self, faulted_ctx):
        record = self.find_lossy_record(faulted_ctx)
        for loss in record["evidence_loss"]:
            assert loss["lost"]
            assert loss["reason"]
        rendered = provenance.render_explanation(record)
        assert "evidence loss (fault injection)" in rendered

    def test_explain_does_not_perturb_fault_counters(self, faulted_ctx):
        last = len(faulted_ctx.world.snapshot_dates) - 1
        domain = faulted_ctx.domains(DatasetTag.ALEXA)[0]
        provenance.explain(faulted_ctx, domain, last, dataset=DatasetTag.ALEXA)
        before = {
            name: count
            for name, count in STATS.counters.items()
            if name.startswith("faults.")
        }
        for target in faulted_ctx.domains(DatasetTag.ALEXA)[:16]:
            provenance.explain(faulted_ctx, target, last, dataset=DatasetTag.ALEXA)
        after = {
            name: count
            for name, count in STATS.counters.items()
            if name.startswith("faults.")
        }
        assert after == before  # replays are pure, never counted

    def test_fault_free_records_have_no_loss_section(self, ctx, last_snapshot):
        domain = ctx.domains(DatasetTag.ALEXA)[0]
        record = provenance.explain(ctx, domain, last_snapshot, dataset=DatasetTag.ALEXA)
        assert record is not None
        assert "evidence_loss" not in record
        assert "evidence loss" not in provenance.render_explanation(record)

    def test_pipeline_tallies_evidence_counters(self, faulted_ctx):
        last = len(faulted_ctx.world.snapshot_dates) - 1
        faulted_ctx.priority(DatasetTag.ALEXA, last)
        tallied = [
            name for name in STATS.counters if name.startswith("faults.evidence.")
        ]
        assert any(name.startswith("faults.evidence.tier.") for name in tallied)


class TestMonotoneFallback:
    def test_decision_sets_nest_across_rates(self):
        low = FaultInjector(FaultPlan.uniform(0.1, seed=9))
        high = FaultInjector(FaultPlan.uniform(0.4, seed=9))
        from datetime import date

        day = date(2021, 6, 8)
        addresses = [f"11.0.{block}.{host}" for block in range(4) for host in range(16)]
        dropped_low = {a for a in addresses if low.scan_dropped(a, day)}
        dropped_high = {a for a in addresses if high.scan_dropped(a, day)}
        assert dropped_low <= dropped_high
        assert len(dropped_high) > len(dropped_low)
