"""Retry-with-backoff semantics at the scan layer.

A transiently slow host that answers within the backoff budget must be
indistinguishable from one that never failed; a host that stays dark
through the budget surfaces as ``TIMEOUT`` with injected-timeout
provenance.  Both behaviours are found by *searching* the deterministic
roll space rather than hand-picking magic seeds, so the tests survive any
world or hash change.
"""

from datetime import date

from repro.faults import FaultInjector, FaultPlan, fault_roll
from repro.faults.inject import BACKOFF_BASE
from repro.measure.censys import CensysScanner, Port25State

DAY = date(2021, 6, 8)
RATE = 0.5


def timeout_rolls(seed: int, address: str, attempts: int) -> list[bool]:
    """Whether each probe attempt 0..attempts-1 would time out."""
    return [
        fault_roll(seed, "smtp.timeout", DAY.isoformat(), address, attempt) < RATE
        for attempt in range(attempts)
    ]


def find_case(host_table, predicate):
    """The first (seed, address) whose roll pattern matches *predicate*."""
    addresses = host_table.addresses()[:8]
    for seed in range(400):
        for address in addresses:
            if predicate(timeout_rolls(seed, address, 3)):
                return seed, address
    raise AssertionError("no (seed, address) matched — roll space exhausted?")


def scanners(small_world, seed: int):
    plan = FaultPlan(seed=seed, smtp_timeout=RATE)
    faulted = CensysScanner(small_world.host_table, faults=FaultInjector(plan))
    clean = CensysScanner(small_world.host_table)
    return faulted, clean


class TestRetryRecovery:
    def test_recovered_host_matches_never_failing(self, small_world):
        seed, address = find_case(
            small_world.host_table,
            lambda rolls: rolls[0] and not rolls[1],  # fails once, then answers
        )
        faulted, clean = scanners(small_world, seed)
        assert faulted.scan_address(address, DAY) == clean.scan_address(address, DAY)

    def test_exhausted_retries_record_timeout(self, small_world):
        seed, address = find_case(
            small_world.host_table,
            all,  # dark on the first try and through every retry
        )
        faulted, clean = scanners(small_world, seed)
        record = faulted.scan_address(address, DAY)
        assert record is not None and record.state is Port25State.TIMEOUT
        assert record.certificate is None and record.banner is None
        # ... while the fault-free scan observed the host normally.
        assert clean.scan_address(address, DAY).state is Port25State.OPEN
        # Provenance replays the same decision without touching counters.
        injector = faulted.faults
        explanation = injector.explain_observation(
            type("Obs", (), {"address": address, "scan": record})(), DAY
        )
        assert explanation is not None
        assert "injected SMTP timeout" in explanation["reason"]
        assert explanation["lost"] == ["cert", "banner"]

    def test_untouched_host_is_identical(self, small_world):
        seed, address = find_case(
            small_world.host_table,
            lambda rolls: not rolls[0],  # never times out at all
        )
        faulted, clean = scanners(small_world, seed)
        assert faulted.scan_address(address, DAY) == clean.scan_address(address, DAY)


class TestBackoffBudget:
    def test_budget_bounds_the_attempts(self):
        # Attempt n costs BACKOFF_BASE * 2**(n-1) virtual seconds.
        assert BACKOFF_BASE == 0.5
        cases = [
            (dict(max_attempts=3, retry_budget=4.0), [1, 2]),
            (dict(max_attempts=5, retry_budget=4.0), [1, 2, 3]),
            (dict(max_attempts=3, retry_budget=0.4), []),
            (dict(max_attempts=3, retry_budget=0.5), [1]),
            (dict(max_attempts=1, retry_budget=100.0), []),
        ]
        for kwargs, expected in cases:
            injector = FaultInjector(FaultPlan(**kwargs))
            assert list(injector.retry_attempts()) == expected, kwargs

    def test_dns_replay_matches_counted_decision(self):
        plan = FaultPlan(seed=3, dns_timeout=0.5)
        injector = FaultInjector(plan)
        for name in (f"mx{i}.example.com" for i in range(64)):
            counted = injector._dns_times_out("2021-06-08", name, "MX")
            replayed = injector._dns_would_time_out("2021-06-08", name, "MX")
            assert counted == replayed

    def test_refusals_are_persistent_across_attempts(self, small_world):
        plan = FaultPlan(seed=0, smtp_refused=1.0)
        injector = FaultInjector(plan)
        address = small_world.host_table.addresses()[0]
        outcomes = {injector.probe_fault(address, DAY, attempt) for attempt in range(3)}
        assert len(outcomes) == 1  # retrying a refused port never helps
