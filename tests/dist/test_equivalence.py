"""The dist executor's headline guarantee: bit-identical output.

A differential matrix over hosts ∈ {1, 2, 4} × jobs ∈ {1, 2} × kill ∈
{none, one-worker, whole-host}: every combination must gather to bytes
identical to the serial reference (``gatherer.gather`` over the whole
target list), even when a worker attempt is fault-injected dead or an
entire host is SIGKILLed mid-lease.  Worker hosts are real forked
processes speaking the socket protocol — the only test double is the
gatherer they run, shared with the serial reference via fork.

Targeted scenarios on top of the matrix: work-stealing from a slow
host, the ``host.netsplit`` fault channel (silent host, heartbeat-
timeout recovery), the ``host.crash`` channel, and one end-to-end CLI
run (``repro dist coordinator`` + 2 ``repro dist worker`` processes)
compared against plain ``repro`` on stdout and artifact-store bytes.
"""

import hashlib
import itertools
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dist import DistCoordinator, DistWorker
from repro.dist.worker import EXIT_HOST_NETSPLIT
from repro.engine.sharding import merge_shard_results, split_shards
from repro.engine.stats import STATS
from repro.faults import FaultPlan
from repro.resilience import (
    GatherSupervision,
    SupervisorOptions,
    supervised_gather,
)
from repro.resilience.supervisor import _roll
from repro.store.codec import encode_measurements
from repro.stream.canon import canonicalize_measurements
from repro.world.entities import DatasetTag

from conftest import wait_for

needs_fork = pytest.mark.skipif(
    os.name != "posix"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="dist workers fork the test process",
)

REPO = Path(__file__).resolve().parents[2]

HOST_COUNTS = (1, 2, 4)
JOB_COUNTS = (1, 2)
KILLS = ("none", "worker", "host")
N_DOMAINS = 80

#: Unique host-name prefix per dist run, so per-host STATS counters and
#: journal events never collide across tests in one session.
_RUN_SEQ = itertools.count(1)


class SlowGatherer:
    """Delays each shard gather so kills land provably mid-flight."""

    def __init__(self, inner, delay: float):
        self.inner = inner
        self.delay = delay

    def gather(self, shard, snapshot_index):
        time.sleep(self.delay)
        return self.inner.gather(shard, snapshot_index)


def _worker_main(socket_path, host_id, gatherer, delay, plan):
    if delay:
        gatherer = SlowGatherer(gatherer, delay)
    worker = DistWorker(socket_path, host_id=host_id, pool=1,
                        gatherer=gatherer, plan=plan)
    worker.run()


def spawn_worker(socket_path, host_id, gatherer, delay=0.0, plan=None):
    proc = multiprocessing.get_context("fork").Process(
        target=_worker_main,
        args=(socket_path, host_id, gatherer, delay, plan),
        daemon=True,
    )
    proc.start()
    return proc


def counters() -> dict:
    return STATS.snapshot()["counters"]


def pick_crash_seed(scope_key: str, shard_count: int, rate: float,
                    max_attempts: int) -> int:
    """A seed whose worker.crash rolls fire at least once but never
    quarantine — computed from the same pure rolls the workers use."""
    for seed in range(1, 500):
        plan = FaultPlan.parse(f"worker.crash={rate},seed={seed}")
        fires = any(
            _roll(plan, "worker.crash", scope_key, shard, 1)
            for shard in range(shard_count)
        )
        survivable = all(
            any(
                not _roll(plan, "worker.crash", scope_key, shard, attempt)
                for attempt in range(1, max_attempts + 1)
            )
            for shard in range(shard_count)
        )
        if fires and survivable:
            return seed
    pytest.fail("no worker.crash seed fires without quarantining")


@pytest.fixture(scope="module")
def reference(ctx, last_snapshot):
    """The serial reference: one whole-list gather, canonical bytes."""
    domains = ctx.domains(DatasetTag.ALEXA)[:N_DOMAINS]
    expected = ctx.gatherer.gather(list(domains), last_snapshot)
    return domains, last_snapshot, canonical_bytes(expected)


def canonical_bytes(measurements: dict) -> bytes:
    """Encoded bytes after the same canonicalization the engine applies
    to every merged gather (one observation object per address) — shard
    boundaries must leave no trace in the stored artifact."""
    return encode_measurements(canonicalize_measurements(measurements))


def run_dist_gather(
    ctx, tmp_path, domains, snapshot, *,
    hosts, shards, kill="none", faults_spec=None, steal_after=None,
    delay=0.0, worker_delays=None, worker_plans=None, max_restarts=4,
    min_hosts=None, stagger=False,
):
    """One distributed gather against forked worker-host processes.

    Returns (results, timings).  ``kill="host"`` SIGKILLs whichever host
    is first granted a lease, then (when it was the only host) starts a
    replacement — elastic join mid-run.  ``stagger=True`` holds the
    later hosts back until host 0 provably holds a lease (requires
    ``min_hosts=1`` so the quorum gate doesn't deadlock the stagger).
    """
    token = f"eq{next(_RUN_SEQ)}"
    host_ids = [f"{token}-h{i}" for i in range(hosts)]
    socket_path = str(tmp_path / "dist.sock")
    coordinator = DistCoordinator(
        socket_path=socket_path,
        heartbeat_timeout=4.0,
        heartbeat_interval=0.1,
        steal_after=steal_after,
        min_hosts=hosts if min_hosts is None else min_hosts,
        stall_timeout=120,
    )
    coordinator.configure(faults_spec=faults_spec)
    coordinator.start()
    procs = []

    def launch(index):
        plan = worker_plans[index] if worker_plans else None
        host_delay = (
            worker_delays[index] if worker_delays is not None else delay
        )
        procs.append(
            spawn_worker(socket_path, host_ids[index], ctx.gatherer,
                         delay=host_delay, plan=plan)
        )

    try:
        for index in range(1 if stagger else hosts):
            launch(index)
        supervision = GatherSupervision(
            options=SupervisorOptions(max_restarts=max_restarts),
            scope=("alexa", snapshot),
            dist=coordinator,
        )
        outcome = {}

        def gather():
            try:
                outcome["value"] = supervised_gather(
                    ctx.gatherer, shards, snapshot,
                    executor="process", supervision=supervision,
                )
            except BaseException as error:  # surfaced to the test thread
                outcome["error"] = error

        runner = threading.Thread(target=gather, daemon=True)
        runner.start()

        if stagger:
            wait_for(
                lambda: counters().get(
                    f"dist.host.{host_ids[0]}.leases", 0
                ) >= 1,
                timeout=30, message="host 0 to hold its first lease",
            )
            for index in range(1, hosts):
                launch(index)

        if kill == "host":
            def first_leased_host():
                granted = counters()
                for index, host_id in enumerate(host_ids):
                    if granted.get(f"dist.host.{host_id}.leases", 0) >= 1:
                        return index + 1  # 1-based: 0 means "none yet"
                return 0

            victim = wait_for(
                first_leased_host, timeout=30,
                message="a host to be granted its first lease",
            ) - 1
            os.kill(procs[victim].pid, signal.SIGKILL)
            procs[victim].join(timeout=10)
            if hosts == 1:
                # The fleet is empty — a fresh host joins mid-run and
                # picks the released shards straight up.
                procs.append(
                    spawn_worker(socket_path, f"{token}-spare",
                                 ctx.gatherer, delay=delay)
                )

        runner.join(timeout=180)
        assert not runner.is_alive(), "dist gather never completed"
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]
    finally:
        coordinator.close()
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


@needs_fork
class TestDistEquivalenceMatrix:
    @pytest.mark.parametrize("kill", KILLS)
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    @pytest.mark.parametrize("hosts", HOST_COUNTS)
    def test_bit_identical(self, ctx, reference, tmp_path, hosts, jobs, kill):
        domains, snapshot, expected = reference
        shards = split_shards(domains, jobs)
        faults_spec = None
        if kill == "worker":
            seed = pick_crash_seed(
                f"alexa:{snapshot}", len(shards), rate=0.5, max_attempts=5
            )
            faults_spec = f"worker.crash=0.5,seed={seed}"
        before = counters()
        results, timings = run_dist_gather(
            ctx, tmp_path, domains, snapshot,
            hosts=hosts, shards=shards, kill=kill,
            faults_spec=faults_spec,
            delay=0.3 if kill == "host" else 0.0,
        )
        after = counters()
        assert len(results) == len(shards)
        assert len(timings) == len(shards)
        merged = merge_shard_results(results)
        assert list(merged) == list(domains)  # serial key order, exactly
        assert canonical_bytes(merged) == expected
        if kill == "worker":
            crashed = (after.get("resilience.worker.crash", 0)
                       - before.get("resilience.worker.crash", 0))
            assert crashed >= 1, "injected worker.crash never fired"
        if kill == "host":
            lost = (after.get("dist.host.lost", 0)
                    - before.get("dist.host.lost", 0))
            assert lost >= 1, "SIGKILLed host was never declared lost"


@needs_fork
class TestDistScenarios:
    def test_work_stealing_from_slow_host(self, ctx, reference, tmp_path):
        """A fast host steals the slow host's tail shard; bytes match."""
        domains, snapshot, expected = reference
        shards = split_shards(domains, 4)
        before = counters()
        results, _ = run_dist_gather(
            ctx, tmp_path, domains, snapshot,
            hosts=2, shards=shards, steal_after=0.3,
            # Host 0 sleeps 4s per shard; host 1 joins only once host 0
            # provably holds a lease (stagger), then drains the pending
            # shards and — out of work while host 0 still sleeps — must
            # steal to finish.  First completion wins, so the duplicate
            # compute never shows in the output bytes.
            worker_delays=[4.0, 0.0],
            min_hosts=1, stagger=True,
        )
        assert canonical_bytes(merge_shard_results(results)) == expected
        stolen = (counters().get("dist.lease.stolen", 0)
                  - before.get("dist.lease.stolen", 0))
        assert stolen >= 1, "fast host never stole the slow host's shard"

    def test_netsplit_host_recovered_by_heartbeat_timeout(
        self, ctx, reference, tmp_path
    ):
        """A silent (netsplit) host is reaped and its shards re-leased."""
        domains, snapshot, expected = reference
        shards = split_shards(domains, 2)
        # Only host 0 carries the netsplit plan: it goes silent on its
        # first lease, holding its socket open, so the coordinator must
        # recover through the heartbeat timeout — not EOF.
        netsplit = FaultPlan.parse("host.netsplit=1.0,seed=1")
        token = f"net{next(_RUN_SEQ)}"
        socket_path = str(tmp_path / "dist.sock")
        coordinator = DistCoordinator(
            socket_path=socket_path,
            heartbeat_timeout=0.6,
            heartbeat_interval=0.1,
            steal_after=None,
            min_hosts=2,
            stall_timeout=120,
        )
        coordinator.configure()
        coordinator.start()
        procs = []
        before = counters()
        try:
            procs.append(spawn_worker(
                socket_path, f"{token}-h0", ctx.gatherer, plan=netsplit
            ))
            procs.append(spawn_worker(socket_path, f"{token}-h1", ctx.gatherer))
            supervision = GatherSupervision(
                options=SupervisorOptions(max_restarts=3),
                scope=("alexa", snapshot),
                dist=coordinator,
            )
            results, _ = supervised_gather(
                ctx.gatherer, shards, snapshot,
                executor="process", supervision=supervision,
            )
            assert canonical_bytes(merge_shard_results(results)) == expected
            lost = (counters().get("dist.host.lost", 0)
                    - before.get("dist.host.lost", 0))
            assert lost >= 1, "netsplit host was never reaped"
            procs[0].join(timeout=10)
            assert procs[0].exitcode == EXIT_HOST_NETSPLIT
        finally:
            coordinator.close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)

    def test_host_crash_channel_kills_whole_process(
        self, ctx, reference, tmp_path
    ):
        """host.crash exits the host process; EOF recovery re-leases."""
        domains, snapshot, expected = reference
        shards = split_shards(domains, 2)
        crash = FaultPlan.parse("host.crash=1.0,seed=1")
        results, _ = run_dist_gather(
            ctx, tmp_path, domains, snapshot,
            hosts=2, shards=shards,
            worker_plans=[crash, None],
        )
        assert canonical_bytes(merge_shard_results(results)) == expected


@needs_fork
class TestCliDist:
    """End to end: coordinator verb + worker processes vs plain repro."""

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env.pop("REPRO_CACHE", None)
        env.pop("REPRO_JOBS", None)
        env.pop("REPRO_RUNS", None)
        return env

    def _store_digests(self, root: Path) -> dict[str, str]:
        return {
            str(path.relative_to(root)):
                hashlib.sha256(path.read_bytes()).hexdigest()
            for path in sorted(root.glob("*/*.rsto"))
        }

    def test_dist_cli_matches_serial(self, tmp_path):
        env = self._env()
        ref_cache = tmp_path / "ref-cache"
        dist_cache = tmp_path / "dist-cache"
        socket_path = tmp_path / "dist.sock"

        serial = subprocess.run(
            [sys.executable, "-m", "repro", "tab4", "--scale", "0.15",
             "--jobs", "2", "--cache-dir", str(ref_cache)],
            env=env, capture_output=True, timeout=180,
        )
        assert serial.returncode == 0, serial.stderr.decode(errors="replace")

        coordinator = subprocess.Popen(
            [sys.executable, "-m", "repro", "dist", "coordinator",
             "--socket", str(socket_path), "--hosts", "2",
             "--heartbeat-interval", "0.1", "--stall-timeout", "60", "--",
             "tab4", "--scale", "0.15", "--jobs", "2",
             "--cache-dir", str(dist_cache)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        workers = []
        try:
            wait_for(socket_path.exists, timeout=60,
                     message="the coordinator socket to appear")
            workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro", "dist", "worker",
                     "--connect", str(socket_path), "--host-id", f"cli-w{i}"],
                    env=env, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                for i in range(2)
            ]
            stdout, stderr = coordinator.communicate(timeout=180)
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.communicate()
            for worker in workers:
                try:
                    worker.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    worker.wait()

        assert coordinator.returncode == 0, stderr.decode(errors="replace")
        assert b"dist coordinator listening" in stderr
        assert stdout == serial.stdout  # byte-identical tables
        assert self._store_digests(dist_cache) == self._store_digests(ref_cache)
