"""Property tests for the shard-lease state machine.

The coordinator's correctness hangs on :class:`LeaseTable`: under *any*
interleaving of lease / complete / steal / timeout / rejoin events,
every shard must be completed exactly once (first-wins), no lease id is
ever reused, and no shard falls out of the state machine.  The table is
pure bookkeeping (caller-supplied clock, no I/O), so hypothesis can
drive it through arbitrary histories and check the invariants after
every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.dist.leases import LeaseTable

HOSTS = ["alpha", "beta", "gamma", "delta"]


class LeaseMachine(RuleBasedStateMachine):
    """Drive a LeaseTable through arbitrary event interleavings."""

    def __init__(self):
        super().__init__()
        self.table = None
        self.clock = 0.0
        self.fresh_completes = []   # shards completed fresh, in order
        self.lease_ids = []         # every id ever granted

    @initialize(
        shard_count=st.integers(min_value=1, max_value=8),
        steal_after=st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=5.0)
        ),
    )
    def setup(self, shard_count, steal_after):
        self.table = LeaseTable(range(shard_count), steal_after=steal_after)

    @rule(host=st.sampled_from(HOSTS), dt=st.floats(min_value=0.0, max_value=3.0))
    def request(self, host, dt):
        self.clock += dt
        lease = self.table.request(host, self.clock)
        if lease is not None:
            assert lease.host == host
            assert lease.lease_id not in self.lease_ids, "lease id reused"
            self.lease_ids.append(lease.lease_id)
            if lease.stolen:
                # A steal never targets the holder and never a done shard.
                assert lease.victim != host
                assert lease.shard not in self.table.done

    @rule(data=st.data())
    def complete(self, data):
        if not self.lease_ids:
            return
        lease_id = data.draw(st.sampled_from(self.lease_ids))
        lease, fresh = self.table.complete(lease_id)
        assert lease.lease_id == lease_id
        if fresh:
            self.fresh_completes.append(lease.shard)

    @rule(data=st.data())
    def release(self, data):
        active = self.table.active_leases()
        if not active:
            return
        lease = data.draw(st.sampled_from(active))
        released = self.table.release(lease.lease_id)
        assert released is not None and released.lease_id == lease.lease_id

    @rule(host=st.sampled_from(HOSTS))
    def drop_host(self, host):
        # Host loss (crash, netsplit reap, elastic leave).  A later
        # `request` from the same host is a rejoin — no special casing.
        dropped = self.table.drop_host(host)
        assert all(lease.host == host for lease in dropped)
        assert not any(
            lease.host == host for lease in self.table.active_leases()
        )

    @invariant()
    def state_is_legal(self):
        if self.table is None:
            return
        self.table.check_invariants()
        # THE property: first-wins completion means each shard completes
        # fresh at most once, ever.
        assert len(self.fresh_completes) == len(set(self.fresh_completes))
        # Attempts only grow, and checkpoint keys — (shard, attempt) of a
        # fresh completion — can never collide since attempt is monotone
        # per shard and each shard completes fresh once.
        done = self.table.done
        assert all(shard in done for shard in self.fresh_completes)

    def teardown(self):
        if self.table is None:
            return
        # Drain: any reachable state can still finish every shard once
        # the heartbeat reaper declares every straggler host lost.
        for host in HOSTS:
            self.table.drop_host(host)
        self.clock += 1000.0
        guard = 0
        while not self.table.all_done:
            lease = self.table.request("drain", self.clock)
            assert lease is not None, "live shards but nothing leasable"
            self.table.complete(lease.lease_id)
            guard += 1
            assert guard <= 10 * len(self.table.shards)
        assert sorted(self.table.done) == self.table.shards


LeaseMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestLeaseMachine = LeaseMachine.TestCase


class TestLeaseTableDirect:
    """Targeted checks on the transitions the machine samples randomly."""

    def test_grants_lowest_pending_first(self):
        table = LeaseTable([3, 1, 2])
        assert table.request("a", 0.0).shard == 1
        assert table.request("a", 0.0).shard == 2
        assert table.request("b", 0.0).shard == 3
        assert table.request("b", 0.0) is None  # steal disabled

    def test_steal_needs_age_and_foreign_host(self):
        table = LeaseTable([0], steal_after=2.0)
        first = table.request("a", 0.0)
        assert table.request("b", 1.0) is None          # too young
        assert table.request("a", 5.0) is None          # holder can't steal
        twin = table.request("b", 5.0)
        assert twin.stolen and twin.victim == "a" and twin.shard == 0
        assert twin.attempt == first.attempt + 1
        assert table.request("c", 9.0) is None          # max one twin

    def test_first_completion_wins(self):
        table = LeaseTable([0], steal_after=1.0)
        first = table.request("a", 0.0)
        twin = table.request("b", 2.0)
        _, fresh = table.complete(twin.lease_id)
        assert fresh
        _, fresh = table.complete(first.lease_id)
        assert not fresh
        assert table.all_done

    def test_release_requeues_only_uncovered(self):
        table = LeaseTable([0], steal_after=1.0)
        first = table.request("a", 0.0)
        twin = table.request("b", 2.0)
        table.release(first.lease_id)
        assert table.pending_count() == 0      # twin still covers it
        table.release(twin.lease_id)
        assert table.pending_count() == 1      # now truly uncovered
        again = table.request("c", 3.0)
        assert again.shard == 0 and again.attempt == 3

    def test_drop_host_releases_all_its_leases(self):
        table = LeaseTable([0, 1, 2])
        table.request("a", 0.0)
        table.request("a", 0.0)
        keep = table.request("b", 0.0)
        dropped = table.drop_host("a")
        assert sorted(lease.shard for lease in dropped) == [0, 1]
        assert table.pending_count() == 2
        assert [l.lease_id for l in table.active_leases()] == [keep.lease_id]

    def test_unknown_lease_raises(self):
        table = LeaseTable([0])
        with pytest.raises(KeyError):
            table.complete(999)

    def test_zero_steal_after_rejected(self):
        with pytest.raises(ValueError):
            LeaseTable([0], steal_after=0.0)
