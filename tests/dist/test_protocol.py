"""Wire-format golden tests for the dist RPC protocol.

One golden message per type, each round-tripped through the line codec
and validated against the versioned schema in ``repro.obs.schemas`` —
so any schema drift (a renamed field, a new required key, a version
bump without a migration) fails here before it can strand a live
coordinator/worker pair mid-run.  Also proves ``validate_obs --journal``
accepts the new host/lease journal events a dist run writes.
"""

import json
import subprocess
import sys
from datetime import date
from pathlib import Path

import pytest

from repro.dist import protocol
from repro.measure.caida import ASInfo
from repro.measure.dataset import DomainMeasurement, IPObservation, MXData
from repro.obs.schemas import (
    DIST_MESSAGE_SCHEMA,
    DIST_PROTOCOL_VERSION,
    JOURNAL_EVENT_SCHEMA,
    validate,
)

REPO = Path(__file__).resolve().parents[2]

#: One golden message per wire type.  Every field a real exchange uses
#: appears at least once; adding a message type without a golden here
#: fails the completeness check below.
GOLDENS = {
    "hello": {"host": "host-a", "pool": 2, "pid": 4242},
    "welcome": {
        "run": "r20260808-120000-abc123",
        "world": {"seed": 7, "alexa_size": 600},
        "faults": "host.crash=0.5,seed=3",
        "heartbeat_interval": 0.5,
        "heartbeat_timeout": 5.0,
        "cache_dir": "/tmp/cache",
    },
    "lease-request": {"host": "host-a"},
    "lease": {
        "gather": 3,
        "lease": 17,
        "shard": 4,
        "shard_count": 8,
        "attempt": 2,
        "snapshot": 11,
        "corpus": "alexa",
        "scope": "alexa[s11]",
        "domains": ["a.com", "b.com"],
        "stolen": True,
    },
    "no-work": {"idle": True, "retry_after": 0.05},
    "result": {
        "host": "host-a",
        "gather": 3,
        "lease": 17,
        "shard": 4,
        "attempt": 2,
        "payload": "AAAA",
        "elapsed": 0.25,
        "stats": {"counters": {}},
        "events": [],
    },
    "heartbeat": {"host": "host-a"},
    "ack": {},
    "shutdown": {},
    "error": {"reason": "quorum not configured"},
}


class TestGoldenMessages:
    def test_goldens_cover_every_schema_type(self):
        schema_types = set(DIST_MESSAGE_SCHEMA["properties"]["type"]["enum"])
        assert set(GOLDENS) == schema_types

    @pytest.mark.parametrize("kind", sorted(GOLDENS))
    def test_round_trip(self, kind):
        msg = protocol.message(kind, **GOLDENS[kind])
        assert msg["v"] == DIST_PROTOCOL_VERSION
        assert validate(msg, DIST_MESSAGE_SCHEMA) == []
        line = protocol.encode_line(msg)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert protocol.decode_line(line) == msg
        # The line codec is canonical (sorted keys): re-encoding the
        # decoded message is byte-identical — the goldens are stable.
        assert protocol.encode_line(protocol.decode_line(line)) == line

    def test_failed_result_golden(self):
        msg = protocol.message(
            "result", host="host-a", gather=3, lease=17, shard=4, attempt=2,
            failed="crash", reason="injected worker crash (attempt 2)",
        )
        assert protocol.decode_line(protocol.encode_line(msg)) == msg

    def test_version_mismatch_rejected(self):
        msg = dict(protocol.message("ack"), v=DIST_PROTOCOL_VERSION + 1)
        with pytest.raises(protocol.ProtocolError, match="version mismatch"):
            protocol.decode_line(protocol.encode_line(msg))

    def test_unknown_type_rejected(self):
        bad = json.dumps({"v": DIST_PROTOCOL_VERSION, "type": "gossip"})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(bad.encode() + b"\n")

    def test_unversioned_message_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.check_message({"type": "ack"})

    def test_non_object_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"[1, 2]\n")

    def test_bad_json_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="bad JSON"):
            protocol.decode_line(b"{nope\n")


class TestPayloadCodec:
    def test_measurements_round_trip(self):
        measurements = {
            "a.com": DomainMeasurement(
                domain="a.com",
                measured_on=date(2021, 3, 1),
                mx_set=(
                    MXData(
                        name="mx1.mail.a.com",
                        preference=10,
                        ips=(
                            IPObservation(
                                address="10.0.0.1",
                                as_info=ASInfo(
                                    asn=64500, name="EXAMPLE-AS", country="US"
                                ),
                                scan=None,
                            ),
                        ),
                    ),
                ),
                txt=("v=spf1 include:_spf.a.com ~all",),
            ),
            "b.com": DomainMeasurement(
                domain="b.com", measured_on=date(2021, 3, 1), mx_set=()
            ),
        }
        payload = protocol.pack_payload(measurements)
        assert isinstance(payload, str)
        json.dumps(payload)  # must embed in a JSON message as-is
        assert protocol.unpack_payload(payload) == measurements


class TestJournalEvents:
    """The dist journal events validate_obs must accept."""

    DIST_EVENTS = [
        {"event": "host.join", "host": "host-a", "pool": 2},
        {
            "event": "shard.lease", "host": "host-a", "lease": 1,
            "shard": 0, "attempt": 1, "corpus": "alexa", "snapshot": 3,
        },
        {
            "event": "shard.stolen", "host": "host-b", "lease": 2,
            "shard": 0, "attempt": 2, "stolen": True, "victim": "host-a",
        },
        {
            "event": "shard.lost", "shard": 0, "attempt": 1,
            "reason": "host host-a lost: disconnected",
        },
        {"event": "host.lost", "host": "host-a", "reason": "disconnected"},
    ]

    def _records(self):
        return [
            {"schema": 1, "run": "r1", "ts": 1.0, **fields}
            for fields in self.DIST_EVENTS
        ]

    def test_events_match_journal_schema(self):
        for record in self._records():
            assert validate(record, JOURNAL_EVENT_SCHEMA) == [], record

    def test_validate_obs_accepts_dist_journal(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(
            "".join(json.dumps(record) + "\n" for record in self._records())
        )
        result = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "validate_obs.py"),
             "--journal", str(journal)],
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "ok   [journal]" in result.stdout
