#!/usr/bin/env python
"""Kill/resume differential sweep: resumed runs must be byte-identical.

The resilience layer's core promise is that an interrupted run, resumed,
converges to exactly the bytes an uninterrupted run produces — same
stdout, same artifact-store entries.  This harness checks that promise
the hard way: it launches real ``python -m repro`` subprocesses, kills
them at randomized-but-seeded points (SIGKILL for the crash story,
SIGINT for the graceful-shutdown story), resumes via ``repro resume``
until the run completes, and then compares

* final stdout against an uninterrupted reference run of the same
  configuration, byte for byte;
* every artifact-store entry against the reference store, byte for byte
  (which also proves shard checkpoints were cleaned up — the reference
  store has none);
* the run journal against ``JOURNAL_EVENT_SCHEMA``.

A separate **poison gate** runs with ``--faults worker.crash=1.0``: every
worker attempt dies, so the run must terminate (not hang) within the
restart budget, exit nonzero, and name the quarantined shard in its
diagnosis.

Scenarios cover jobs∈{1,4} and both executors.  Everything is seeded
(``--seed`` drives the kill delays), so a CI failure replays locally.

Usage::

    PYTHONPATH=src python scripts/resilience_sweep.py --seed 1
    PYTHONPATH=src python scripts/resilience_sweep.py --seed 1 \\
        --check --json resilience-sweep.json --keep-dir sweep-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.obs import schemas
from repro.resilience import JOURNAL_NAME

SUBPROCESS_TIMEOUT = 180.0
MAX_RESUMES = 5
DIST_HOSTS = 3

#: (name, jobs, executor, signal) — jobs∈{1,4}, both executors, both
#: interruption styles.
SCENARIOS = (
    ("p4-sigkill", 4, "process", signal.SIGKILL),
    ("p4-sigint", 4, "process", signal.SIGINT),
    ("t4-sigint", 4, "thread", signal.SIGINT),
    ("j1-sigkill", 1, "process", signal.SIGKILL),
)


def repro_command(args, *, jobs: int, cache_dir: Path, extra=()) -> list[str]:
    return [
        sys.executable, "-m", "repro", args.experiment,
        "--scale", str(args.scale),
        "--jobs", str(jobs),
        "--cache-dir", str(cache_dir),
        *extra,
    ]


def run_env(executor: str) -> dict:
    env = dict(os.environ)
    env["REPRO_EXECUTOR"] = executor
    env.pop("REPRO_CACHE", None)
    env.pop("REPRO_JOBS", None)
    env.pop("REPRO_RUNS", None)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    return env


def run_to_completion(command, env) -> tuple[int, bytes, bytes, float]:
    started = time.monotonic()
    result = subprocess.run(
        command, env=env, capture_output=True, timeout=SUBPROCESS_TIMEOUT
    )
    return result.returncode, result.stdout, result.stderr, time.monotonic() - started


def run_and_kill(command, env, delay: float, kill_signal) -> tuple[int | None, bool]:
    """Start the command, signal it after *delay* seconds.

    Returns (returncode, was_signalled); was_signalled is False when the
    run won the race and completed before the signal fired.
    """
    proc = subprocess.Popen(
        command, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    try:
        proc.wait(timeout=delay)
        return proc.returncode, False
    except subprocess.TimeoutExpired:
        pass
    proc.send_signal(kill_signal)
    try:
        proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    return proc.returncode, True


def store_entries(root: Path) -> dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.glob("*/*.rsto"))
    }


def compare_stores(reference: Path, candidate: Path) -> list[str]:
    failures = []
    ref_entries = store_entries(reference)
    cand_entries = store_entries(candidate)
    missing = sorted(set(ref_entries) - set(cand_entries))
    extra = sorted(set(cand_entries) - set(ref_entries))
    if missing:
        failures.append(f"store missing entries: {missing}")
    if extra:
        # Extra entries include any leaked shard checkpoints.
        failures.append(f"store has extra entries (leaked checkpoints?): {extra}")
    for name in sorted(set(ref_entries) & set(cand_entries)):
        if ref_entries[name] != cand_entries[name]:
            failures.append(f"store entry differs: {name}")
    return failures


def run_scenario(args, name, jobs, executor, kill_signal, rng, work: Path) -> dict:
    env = run_env(executor)
    scenario_dir = work / name
    ref_cache = scenario_dir / "ref-cache"
    victim_cache = scenario_dir / "victim-cache"
    run_dir = scenario_dir / "run"
    scenario_dir.mkdir(parents=True)

    rc, ref_stdout, _, ref_wall = run_to_completion(
        repro_command(args, jobs=jobs, cache_dir=ref_cache), env
    )
    if rc != 0:
        return {"name": name, "failures": [f"reference run exited {rc}"]}

    victim = repro_command(
        args, jobs=jobs, cache_dir=victim_cache,
        extra=("--run-dir", str(run_dir)),
    )
    journal_path = run_dir / JOURNAL_NAME
    delay = ref_wall * rng.uniform(0.3, 0.8)
    kills = 0
    interrupted = False
    # A kill can land during interpreter startup, before the journal
    # exists; there is nothing to resume then, so relaunch with a later
    # kill point (the run dir is reusable until a journal appears).
    for _ in range(4):
        rc, signalled = run_and_kill(victim, env, delay, kill_signal)
        if signalled:
            kills += 1
        interrupted = signalled
        if not signalled or journal_path.is_file():
            break
        delay += 0.15 * ref_wall

    resume = [
        sys.executable, "-m", "repro", "resume", "--run-dir", str(run_dir),
    ]
    resumes = 0
    final_stdout = None
    if not interrupted and rc == 0:
        # The run won the race against the kill; its output still must
        # match the reference, via one warm resume (exercises the
        # completed-run resume path).
        rc, final_stdout, stderr, _ = run_to_completion(resume, env)
        resumes += 1
    else:
        while resumes < MAX_RESUMES:
            resumes += 1
            if resumes == 1 and interrupted:
                # Kill the first resume too, at a fresh seeded point —
                # multi-resume lineages must also converge.
                rc, signalled = run_and_kill(
                    resume, env, ref_wall * rng.uniform(0.2, 0.8), kill_signal
                )
                if signalled:
                    kills += 1
                    continue
                if rc != 0:
                    break
                rc, final_stdout, stderr, _ = run_to_completion(resume, env)
                break
            rc, final_stdout, stderr, _ = run_to_completion(resume, env)
            break

    failures: list[str] = []
    if rc != 0 or final_stdout is None:
        failures.append(f"run never completed (last exit {rc})")
    else:
        if final_stdout != ref_stdout:
            failures.append("final stdout differs from the uninterrupted reference")
        failures.extend(compare_stores(ref_cache, victim_cache))
    if journal_path.is_file():
        failures.extend(
            schemas.validate_jsonl_file(
                str(journal_path), schemas.JOURNAL_EVENT_SCHEMA
            )
        )
    elif kills:
        failures.append("no journal written before the kill")
    return {
        "name": name,
        "jobs": jobs,
        "executor": executor,
        "signal": signal.Signals(kill_signal).name,
        "kill_delay_seconds": round(delay, 3),
        "kills": kills,
        "resumes": resumes,
        "failures": failures,
    }


def spawn_dist_worker(socket_path: Path, host_id: str, env) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "dist", "worker",
            "--connect", str(socket_path), "--host-id", host_id,
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def run_dist_scenario(args, rng, work: Path) -> dict:
    """Distributed gate: 3 simulated hosts, one SIGKILLed whole mid-run.

    A ``repro dist coordinator`` run over three worker-host processes,
    with the hash-pure ``host.netsplit`` channel armed, one whole host
    SIGKILLed at a seeded point, and a replacement host joining
    elastically.  The coordinator recovers host loss live by re-leasing;
    should the entire fleet die, ``repro resume`` completes the
    journaled run locally.  Either way the gate is the same as every
    other scenario: stdout and artifact-store bytes must match a local,
    never-failed reference run exactly.
    """
    env = run_env("process")
    scenario_dir = work / "dist-hostkill"
    ref_cache = scenario_dir / "ref-cache"
    dist_cache = scenario_dir / "dist-cache"
    run_dir = scenario_dir / "run"
    scenario_dir.mkdir(parents=True)

    rc, ref_stdout, _, ref_wall = run_to_completion(
        repro_command(args, jobs=4, cache_dir=ref_cache), env
    )
    if rc != 0:
        return {"name": "dist-hostkill", "failures": [f"reference run exited {rc}"]}

    socket_path = scenario_dir / "coordinator.sock"
    coordinator = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "dist", "coordinator",
            "--socket", str(socket_path),
            "--hosts", str(DIST_HOSTS),
            "--heartbeat-timeout", "1.0",
            "--heartbeat-interval", "0.2",
            "--stall-timeout", "45",
            "--",
            args.experiment, "--scale", str(args.scale), "--jobs", "4",
            "--cache-dir", str(dist_cache), "--run-dir", str(run_dir),
            "--faults", f"host.netsplit=0.4,seed={args.seed}",
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    workers: list[subprocess.Popen] = []
    kills = 0
    kill_delay = ref_wall * rng.uniform(0.25, 0.6)
    try:
        deadline = time.monotonic() + 60.0
        while not socket_path.exists():
            if coordinator.poll() is not None or time.monotonic() > deadline:
                coordinator.kill()
                coordinator.communicate()
                return {
                    "name": "dist-hostkill",
                    "failures": ["coordinator socket never appeared"],
                }
            time.sleep(0.05)
        workers = [
            spawn_dist_worker(socket_path, f"sweep-h{i}", env)
            for i in range(DIST_HOSTS)
        ]
        # Whole-host SIGKILL at a seeded point.  The dist run is slower
        # than the local reference (payload shipping, heartbeats), so a
        # delay calibrated against ref_wall lands mid-run.
        try:
            coordinator.wait(timeout=kill_delay)
        except subprocess.TimeoutExpired:
            victim = workers[rng.randrange(DIST_HOSTS)]
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
                kills += 1
            # Elastic join: a spare host replaces the lost capacity.
            workers.append(spawn_dist_worker(socket_path, "sweep-spare", env))
        try:
            stdout, _ = coordinator.communicate(timeout=SUBPROCESS_TIMEOUT)
            rc = coordinator.returncode
        except subprocess.TimeoutExpired:
            coordinator.kill()
            stdout, _ = coordinator.communicate()
            rc = -1
    finally:
        if coordinator.poll() is None:
            coordinator.kill()
            coordinator.communicate()
        for worker in workers:
            try:
                worker.wait(timeout=15)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait()

    final_stdout = stdout if rc == 0 else None
    resume = [
        sys.executable, "-m", "repro", "resume", "--run-dir", str(run_dir),
    ]
    resumes = 0
    while final_stdout is None and resumes < MAX_RESUMES:
        resumes += 1
        rc, out, _, _ = run_to_completion(resume, env)
        if rc == 0:
            final_stdout = out

    failures: list[str] = []
    if final_stdout is None:
        failures.append(f"dist run never completed (last exit {rc})")
    else:
        if final_stdout != ref_stdout:
            failures.append("dist stdout differs from the local reference")
        failures.extend(compare_stores(ref_cache, dist_cache))
    journal_path = run_dir / JOURNAL_NAME
    events: list[str] = []
    if journal_path.is_file():
        failures.extend(
            schemas.validate_jsonl_file(
                str(journal_path), schemas.JOURNAL_EVENT_SCHEMA
            )
        )
        for line in journal_path.read_text().splitlines():
            try:
                events.append(json.loads(line).get("event"))
            except json.JSONDecodeError:
                continue
    else:
        failures.append("dist run wrote no journal")
    if events.count("host.join") < DIST_HOSTS:
        failures.append(
            f"journal records {events.count('host.join')} host.join events "
            f"(want >= {DIST_HOSTS})"
        )
    if "shard.lease" not in events:
        failures.append("journal records no shard.lease events")
    if kills and "host.lost" not in events:
        failures.append("SIGKILLed host never journalled host.lost")
    return {
        "name": "dist-hostkill",
        "hosts": DIST_HOSTS,
        "kill_delay_seconds": round(kill_delay, 3),
        "kills": kills,
        "resumes": resumes,
        "host_join_events": events.count("host.join"),
        "host_lost_events": events.count("host.lost"),
        "stolen_events": events.count("shard.stolen"),
        "failures": failures,
    }


def run_poison_gate(args, work: Path) -> dict:
    """worker.crash=1.0 must quarantine loudly, never hang."""
    env = run_env("process")
    cache = work / "poison-cache"
    command = repro_command(
        args, jobs=4, cache_dir=cache, extra=("--faults", "worker.crash=1.0")
    )
    failures: list[str] = []
    started = time.monotonic()
    try:
        result = subprocess.run(
            command, env=env, capture_output=True, timeout=SUBPROCESS_TIMEOUT
        )
    except subprocess.TimeoutExpired:
        return {
            "name": "poison",
            "failures": ["poison run hung past the subprocess timeout"],
        }
    elapsed = time.monotonic() - started
    stderr = result.stderr.decode(errors="replace")
    if result.returncode == 0:
        failures.append("poison run exited 0 (quarantine never fired)")
    if "quarantined" not in stderr:
        failures.append("diagnosis does not mention quarantine")
    if "shard #" not in stderr:
        failures.append("diagnosis does not name the poisoned shard")
    return {
        "name": "poison",
        "exit_code": result.returncode,
        "elapsed_seconds": round(elapsed, 3),
        "failures": failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1, help="kill-point seed")
    parser.add_argument(
        "--experiment", default="tab4", help="experiment to run (default tab4)"
    )
    parser.add_argument(
        "--scale", type=float, default=0.2, help="corpus scale (default 0.2)"
    )
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--keep-dir", metavar="PATH", default=None,
        help="keep work dirs (journals, manifests, stores) under PATH "
             "instead of a deleted tempdir — CI uploads these as artifacts",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when any scenario fails (CI mode)",
    )
    parser.add_argument(
        "--dist", action="store_true",
        help="run the distributed-executor gate (3 simulated hosts, "
             "whole-host SIGKILL + netsplit) instead of the kill/resume "
             "scenarios",
    )
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    if args.keep_dir:
        work = Path(args.keep_dir)
        if work.exists():
            shutil.rmtree(work)
        work.mkdir(parents=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="resilience-sweep-")
        work = Path(cleanup.name)

    print(
        f"resilience sweep: experiment={args.experiment} scale={args.scale} "
        f"seed={args.seed}",
        file=sys.stderr,
    )
    results = []
    try:
        if args.dist:
            result = run_dist_scenario(args, rng, work)
            results.append(result)
            status = "ok" if not result["failures"] else "FAIL"
            print(
                f"  dist-hostkill: {status} "
                f"(hosts={result.get('hosts', '?')}, "
                f"kills={result.get('kills', '?')}, "
                f"host_lost={result.get('host_lost_events', '?')}, "
                f"resumes={result.get('resumes', '?')})",
                file=sys.stderr,
            )
        else:
            for name, jobs, executor, kill_signal in SCENARIOS:
                result = run_scenario(
                    args, name, jobs, executor, kill_signal, rng, work
                )
                results.append(result)
                status = "ok" if not result["failures"] else "FAIL"
                print(
                    f"  {name}: {status} "
                    f"(kills={result.get('kills', '?')}, "
                    f"resumes={result.get('resumes', '?')})",
                    file=sys.stderr,
                )
            poison = run_poison_gate(args, work)
            results.append(poison)
            print(
                f"  poison: {'ok' if not poison['failures'] else 'FAIL'} "
                f"(exit={poison.get('exit_code', '?')}, "
                f"{poison.get('elapsed_seconds', '?')}s)",
                file=sys.stderr,
            )
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    failures = [
        f"{result['name']}: {failure}"
        for result in results
        for failure in result["failures"]
    ]
    document = {
        "seed": args.seed,
        "experiment": args.experiment,
        "scale": args.scale,
        "scenarios": results,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1 if args.check else 0
    print("all resilience gates passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
