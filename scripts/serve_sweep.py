#!/usr/bin/env python
"""Serving benchmark: warm start, lookup tails, ingest speedup, chaos.

Phases, mirroring the daemon's life:

1. **Seed** — build a world and fill a (temporary) artifact store with
   every (corpus, snapshot) measurement + inference artifact, the state a
   daemon inherits from a prior sweep.
2. **Daemon** — spawn ``python -m repro serve`` as a subprocess, measure
   warm start (spawn → first healthy ping; the daemon must never re-run
   the pipeline), then drive a threaded ``who-has`` load over the unix
   socket and report client-side p50/p99 latency and QPS plus the
   server's own endpoint histograms.  While the load is in flight the
   sweep scrapes the daemon's ``GET /metrics`` Prometheus endpoint and
   asserts the sliding-window p99 and block-cache hit rate are live and
   non-zero (``--scrape-out`` keeps the raw exposition text).  With
   ``--overhead`` a second daemon runs with ``REPRO_LIVE=off`` and the
   row gains ``telemetry_overhead`` (relative p99 cost of telemetry).
3. **Ingest** — in-process: at each churn rate, synthesize a mutated
   snapshot, then time a full batch recompute (decode + cold pipeline)
   against an incremental ingest (delta detection + re-infer changed
   domains only), asserting the two produce **bit-identical** encoded
   results before reporting the speedup.

With ``--workers N`` or ``--chaos`` the sweep instead exercises the
resilience layer (phases 2–3 are skipped so the CI step stays focused):

4. **Workers** — throughput of a 1-worker vs an N-worker prefork pool
   (core-aware ``--min-worker-speedup`` gate; skipped with a note on a
   single-CPU host), plus a shed probe: a ``--max-inflight 1`` pool
   under a concurrent burst must answer ``overloaded`` with a
   ``retry_after`` hint instead of queueing unboundedly.
5. **Chaos** (``--chaos``) — a reference pool ingests the latest
   snapshot undisturbed; a victim pool runs the same sequence with one
   worker SIGKILLed under client load and the whole process group
   SIGKILLed between ``ingest.wal.begin`` and commit (the deterministic
   ``ingest.crash`` fault fells the ingesting worker right after the
   durable intent record), then restarts fault-free.  Gates: retried
   availability ≥ ``--min-availability``, no request past its deadline,
   WAL replay events present, and post-recovery answers **and** store
   digests byte-identical to the reference pool's.

CI gates: ``--max-warm-start-s``, ``--max-p99-ms``, ``--min-speedup``
(evaluated at ``--gate-churn``, default 5%), ``--min-worker-speedup``,
and ``--min-availability``.

Usage::

    PYTHONPATH=src python scripts/serve_sweep.py --json serve-sweep.json
    PYTHONPATH=src python scripts/serve_sweep.py --chaos --workers 4
"""

from __future__ import annotations

import argparse
import hashlib
import http.client
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro.engine import EngineOptions
from repro.core.pipeline import PriorityPipeline
from repro.engine.incremental import IncrementalInferencer
from repro.experiments.common import StudyContext
from repro.obs.schemas import (
    BENCH_SCHEMA_VERSION,
    JOURNAL_EVENT_SCHEMA,
    bench_document,
    validate_jsonl_file,
    validate_prometheus,
)
from repro.resilience.journal import JOURNAL_NAME, read_events
from repro.serve.churn import synthesize_churn
from repro.serve.daemon import request_socket, rpc
from repro.serve.resilience import RetryPolicy, rpc_retry, wait_until_healthy
from repro.store import (
    ArtifactStore,
    SnapshotView,
    cache_key,
    decode_measurements,
    encode_measurements,
    encode_result,
)
from repro.store.artifacts import KIND_PRIORITY
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS


def seed_store(config: WorldConfig, cache_dir: str, jobs: int) -> tuple[float, list[str]]:
    """Fill *cache_dir* with every artifact; returns (seconds, alexa domains)."""
    started = time.perf_counter()
    ctx = StudyContext.create(
        config, engine=EngineOptions(jobs=jobs), store=ArtifactStore(cache_dir)
    )
    for dataset in DatasetTag:
        for snapshot in range(NUM_SNAPSHOTS):
            if ctx.covered(dataset, snapshot):
                ctx.priority_result(dataset, snapshot)
    return time.perf_counter() - started, ctx.domains(DatasetTag.ALEXA)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def scrape_prometheus(host: str, port: int, timeout: float = 5.0) -> str:
    """One GET /metrics scrape; raises on a non-200 answer."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read().decode()
    finally:
        connection.close()
    if response.status != 200:
        raise RuntimeError(f"GET /metrics answered {response.status}")
    return body


def prom_sample(text: str, name: str, fragment: str = "") -> float | None:
    """The first sample value of *name* whose label set contains *fragment*."""
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        series, _, value = line.rpartition(" ")
        if fragment in series:
            try:
                return float(value)
            except ValueError:
                return None
    return None


_WHOHAS_P99 = 'endpoint="who-has",window="10s",quantile="0.99"'


def _await_healthy(process, socket_path: str, deadline: float, what: str = "daemon") -> None:
    """Backoff-poll until the daemon pings, watching for process death.

    ``wait_until_healthy`` owns the connect-refused races; this wrapper
    adds what only the spawner can know — the subprocess dying before it
    ever answers — and surfaces its captured output in that case.
    """
    while True:
        if process.poll() is not None:
            output = process.communicate()[0]
            raise RuntimeError(f"{what} died before becoming healthy: {output}")
        try:
            wait_until_healthy(
                ("socket", socket_path),
                timeout=min(2.0, max(0.1, deadline - time.perf_counter())),
            )
            return
        except TimeoutError:
            if time.perf_counter() > deadline:
                raise RuntimeError(f"{what} never became healthy")


def bench_daemon(
    args, cache_dir: str, domains: list[str], *, live: bool = True
) -> tuple[dict, list[str], str | None]:
    """Phase 2: warm start + threaded who-has load against a live daemon.

    With ``live=False`` the daemon runs with telemetry disabled
    (``REPRO_LIVE=off``) — the baseline for the overhead measurement.
    """
    failures: list[str] = []
    socket_path = os.path.join(
        cache_dir, "sweep-live.sock" if live else "sweep-base.sock"
    )
    http_port = _free_port()
    env = dict(
        os.environ,
        REPRO_CACHE=cache_dir,
        REPRO_LIVE="1" if live else "off",
    )
    env.setdefault("PYTHONPATH", "src")
    command = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path, "--http", f"127.0.0.1:{http_port}",
        "--scale", str(args.scale),
    ]
    started = time.perf_counter()
    daemon = subprocess.Popen(
        command, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    deadline = started + args.max_warm_start_s + 30
    try:
        _await_healthy(daemon, socket_path, deadline)
        warm_start = time.perf_counter() - started

        latencies: list[float] = []
        lock = threading.Lock()

        def worker(offset: int) -> None:
            mine: list[float] = []
            for i in range(args.requests):
                domain = domains[(offset * args.requests + i) % len(domains)]
                t0 = time.perf_counter()
                reply = request_socket(
                    socket_path,
                    {"op": "who-has", "domain": domain, "corpus": "alexa"},
                )
                mine.append(time.perf_counter() - t0)
                if not reply.get("ok"):
                    raise RuntimeError(f"lookup failed: {reply}")
            with lock:
                latencies.extend(mine)

        load_started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        scrape_text = None
        scraped_in_flight = False
        if live:
            # Scrape /metrics WHILE requests are in flight: the sliding
            # windows must already show a non-zero p99 and hit rate.  Stop
            # after the first satisfying capture so the scraper does not
            # keep stealing cycles from the load it is observing.
            while any(thread.is_alive() for thread in threads):
                try:
                    body = scrape_prometheus("127.0.0.1", http_port, timeout=2.0)
                except (OSError, RuntimeError):
                    body = None
                if body is not None:
                    p99 = prom_sample(
                        body, "repro_serve_latency_seconds", _WHOHAS_P99
                    )
                    hit = prom_sample(body, "repro_serve_block_cache_hit_ratio")
                    if p99 and hit is not None:
                        scrape_text = body
                        scraped_in_flight = True
                        break
                time.sleep(0.05)
        for thread in threads:
            thread.join()
        load_seconds = time.perf_counter() - load_started
        if live and scrape_text is None:
            # The load outran the scraper; the 10s window still holds the
            # burst, so a final scrape keeps short CI runs meaningful.
            try:
                scrape_text = scrape_prometheus("127.0.0.1", http_port)
            except (OSError, RuntimeError) as error:
                failures.append(f"GET /metrics scrape failed: {error}")

        server_metrics = request_socket(socket_path, {"op": "metrics"})["result"]
        request_socket(socket_path, {"op": "shutdown"})
        daemon.wait(timeout=15)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)

    latencies.sort()
    total = len(latencies)
    p50 = latencies[total // 2]
    p99 = latencies[min(total - 1, (99 * total) // 100)]
    row = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "phase": "daemon" if live else "daemon-baseline",
        "telemetry": live,
        "warm_start_s": round(warm_start, 4),
        "clients": args.clients,
        "requests": total,
        "qps": round(total / load_seconds, 1),
        "p50_ms": round(1e3 * p50, 3),
        "p99_ms": round(1e3 * p99, 3),
        "max_ms": round(1e3 * latencies[-1], 3),
        "server_endpoints": server_metrics["endpoints"],
        "block_cache": server_metrics["block_cache"],
    }
    if live:
        if scrape_text is not None:
            errors = validate_prometheus(scrape_text, "/metrics")
            failures.extend(f"scrape: {error}" for error in errors)
            scrape_p99 = prom_sample(
                scrape_text, "repro_serve_latency_seconds", _WHOHAS_P99
            )
            scrape_hit = prom_sample(
                scrape_text, "repro_serve_block_cache_hit_ratio"
            )
            if not scrape_p99:
                failures.append(
                    "scrape: sliding-window who-has p99 is zero/absent"
                )
            if scrape_hit is None:
                failures.append("scrape: block cache hit ratio absent")
            row["scrape_p99_ms"] = round(1e3 * (scrape_p99 or 0.0), 3)
            row["scrape_cache_hit_ratio"] = (
                round(scrape_hit, 4) if scrape_hit is not None else None
            )
            row["scrape_in_flight"] = scraped_in_flight
    if warm_start > args.max_warm_start_s:
        failures.append(
            f"warm start {warm_start:.2f}s exceeds "
            f"--max-warm-start-s {args.max_warm_start_s:g}"
        )
    if row["p99_ms"] > args.max_p99_ms:
        failures.append(
            f"who-has p99 {row['p99_ms']:.1f}ms exceeds "
            f"--max-p99-ms {args.max_p99_ms:g}"
        )
    print(
        f"daemon{'' if live else ' (telemetry off)'}: warm start "
        f"{warm_start:.2f}s; {total} lookups x "
        f"{args.clients} clients -> {row['qps']:.0f} qps, "
        f"p50 {row['p50_ms']:.1f}ms, p99 {row['p99_ms']:.1f}ms"
    )
    if live and scrape_text is not None:
        print(
            f"scrape: /metrics p99(10s) {row.get('scrape_p99_ms', 0):.1f}ms, "
            f"cache hit {row.get('scrape_cache_hit_ratio')}, "
            f"in-flight={scraped_in_flight}"
        )
    return row, failures, scrape_text


def bench_ingest(args, config: WorldConfig, cache_dir: str) -> tuple[list[dict], list[str]]:
    """Phase 3: batch-vs-incremental wall clock at each churn rate."""
    failures: list[str] = []
    store = ArtifactStore(cache_dir)
    base_index = NUM_SNAPSHOTS - 1
    base_payload = store.measurement_payload(config, DatasetTag.ALEXA, base_index)
    if base_payload is None:
        raise RuntimeError("seed phase left no alexa measurement payload")
    base = decode_measurements(base_payload)

    ctx = StudyContext.create(config, engine=EngineOptions(jobs=args.jobs), store=None)
    world = ctx.world

    def batch_run(measurements):
        pipeline = PriorityPipeline(world.trust_store, ctx.company_map, psl=world.psl)
        return pipeline.run(measurements, jobs=args.jobs)

    rows = []
    for rate in args.churn:
        churned = synthesize_churn(base, rate, seed=args.seed)
        payload = encode_measurements(churned)

        batch_seconds = min(
            _timed(lambda: batch_run(decode_measurements(payload)))[0]
            for _ in range(args.repeat)
        )
        batch_digest = encode_result(batch_run(decode_measurements(payload)))

        best = None
        for _ in range(args.repeat):
            inferencer = IncrementalInferencer(
                world.trust_store, ctx.company_map, psl=world.psl
            )
            state, _boot = inferencer.bootstrap(
                SnapshotView(base_payload), snapshot_index=base_index, jobs=args.jobs
            )
            seconds, report = _timed(
                lambda: inferencer.ingest(
                    state,
                    SnapshotView(payload),
                    snapshot_index=base_index + 1,
                    jobs=args.jobs,
                )
            )
            identical = encode_result(state.result) == batch_digest
            if not identical:
                failures.append(
                    f"churn {rate:.0%}: incremental result diverged from batch"
                )
            if best is None or seconds < best[0]:
                best = (seconds, report, identical)
        seconds, report, identical = best
        speedup = batch_seconds / seconds if seconds else float("inf")
        row = {
            "bench_schema": BENCH_SCHEMA_VERSION,
            "phase": "ingest",
            "churn": rate,
            "domains": len(base),
            "reinferred": report.reinferred,
            "batch_seconds": round(batch_seconds, 4),
            "ingest_seconds": round(seconds, 4),
            "speedup": round(speedup, 1),
            "bit_identical": identical,
        }
        rows.append(row)
        print(
            f"ingest: churn {rate:>4.0%} -> batch {batch_seconds*1e3:7.1f}ms, "
            f"incremental {seconds*1e3:6.1f}ms ({report.reinferred} domains) "
            f"= {speedup:5.1f}x, identical={identical}"
        )
        if abs(rate - args.gate_churn) < 1e-9 and speedup < args.min_speedup:
            failures.append(
                f"ingest speedup {speedup:.1f}x at {rate:.0%} churn below "
                f"--min-speedup {args.min_speedup:g}"
            )
    return rows, failures


def _timed(thunk):
    started = time.perf_counter()
    result = thunk()
    return time.perf_counter() - started, result


def _spawn_pool(
    args, cache_dir: str, socket_path: str, *,
    workers: int, run_dir: str | None = None, faults: str | None = None,
    extra: tuple[str, ...] = (),
) -> subprocess.Popen:
    """Spawn ``repro serve run`` in its own process group (killpg-able)."""
    command = [
        sys.executable, "-m", "repro", "serve", "run",
        "--workers", str(workers),
        "--socket", socket_path,
        "--cache-dir", cache_dir,
        "--scale", str(args.scale),
        "--seed", str(args.seed),
    ]
    if run_dir is not None:
        command += ["--run-dir", run_dir]
    if faults is not None:
        command += ["--faults", faults]
    command += list(extra)
    env = dict(os.environ, REPRO_CACHE=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    return subprocess.Popen(
        command, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, start_new_session=True,
    )


def _kill_pool(process: subprocess.Popen) -> None:
    if process.poll() is None:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        process.wait(timeout=10)


def _journal_events(run_dir: str) -> list[dict]:
    path = os.path.join(run_dir, JOURNAL_NAME)
    return read_events(path) if os.path.exists(path) else []


def _wait_journal(run_dir: str, predicate, *, timeout: float = 30.0,
                  what: str = "journal event") -> list[dict]:
    """Poll the run journal until *predicate* matches at least one event."""
    deadline = time.perf_counter() + timeout
    while True:
        matched = [event for event in _journal_events(run_dir) if predicate(event)]
        if matched:
            return matched
        if time.perf_counter() > deadline:
            raise RuntimeError(f"journal never recorded {what}")
        time.sleep(0.05)


def _store_digest(root: str) -> str:
    """One digest over every store entry (relative path + bytes)."""
    digest = hashlib.sha256()
    base = os.path.abspath(root)
    entries = []
    for dirpath, _dirnames, filenames in os.walk(base):
        entries.extend(
            os.path.join(dirpath, name)
            for name in filenames if name.endswith(".rsto")
        )
    for path in sorted(entries):
        digest.update(os.path.relpath(path, base).encode())
        with open(path, "rb") as stream:
            digest.update(stream.read())
    return digest.hexdigest()


def _canonical_answer(reply: dict) -> str:
    """A reply's payload, canonicalized for cross-daemon comparison.

    Only ``source`` is stripped: live-vs-store provenance legitimately
    differs between a daemon that just ingested and one that recovered
    from its store.  Everything else — including a lingering ``stale``
    flag — must match byte for byte.
    """
    result = dict(reply.get("result") or {})
    result.pop("source", None)
    return json.dumps(result, sort_keys=True)


def bench_workers(args, cache_dir: str, domains: list[str],
                  socket_dir: str) -> tuple[list[dict], list[str]]:
    """Phase 4: prefork scaling (1 vs N workers) and the shed probe.

    The load is ``provider-stats`` across snapshots — a whole-corpus
    aggregation whose cost lives on the server, so the single-process
    client driver measures worker scaling rather than its own socket
    overhead.  The speedup gate is core-aware: prefork workers only
    help when there are cores to run them on (and the client driver
    occupies one), so on a single-CPU host the comparison is reported
    but not gated, and elsewhere the effective floor is
    ``min(--min-worker-speedup, 0.75 * (cores - 1))``.
    """
    failures: list[str] = []
    cores = os.cpu_count() or 1

    def throughput(workers: int) -> float:
        socket_path = os.path.join(socket_dir, f"pool-{workers}.sock")
        run_dir = os.path.join(socket_dir, f"pool-{workers}-run")
        pool = _spawn_pool(
            args, cache_dir, socket_path, workers=workers, run_dir=run_dir
        )
        try:
            _await_healthy(
                pool, socket_path, time.perf_counter() + 90,
                what=f"{workers}-worker pool",
            )
            clients = max(args.clients, 2 * workers)
            per_client = max(20, args.requests // 2)
            errors: list[str] = []
            lock = threading.Lock()

            def client(offset: int) -> None:
                for i in range(per_client):
                    reply = request_socket(
                        socket_path,
                        {"op": "provider-stats", "corpus": "alexa",
                         "snapshot": (offset * per_client + i) % NUM_SNAPSHOTS},
                    )
                    if not reply.get("ok"):
                        with lock:
                            errors.append(f"pool lookup failed: {reply}")
                        return

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(clients)
            ]
            load_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - load_started
            if errors:
                raise RuntimeError(errors[0])
            request_socket(socket_path, {"op": "shutdown"})
            pool.wait(timeout=20)
            return clients * per_client / elapsed
        finally:
            _kill_pool(pool)

    row = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "phase": "workers",
        "cores": cores,
        "workers": args.workers,
    }
    if cores < 2:
        note = f"only {cores} CPU core: prefork scaling needs >= 2"
        row["skipped"] = note
        print(f"workers: {note} — speedup gate skipped")
    else:
        qps_one = throughput(1)
        qps_many = throughput(args.workers)
        speedup = qps_many / qps_one if qps_one else float("inf")
        gate = min(args.min_worker_speedup, 0.75 * (cores - 1))
        row.update(
            qps_1=round(qps_one, 1),
            qps_n=round(qps_many, 1),
            speedup=round(speedup, 2),
            gate=round(gate, 2),
        )
        print(
            f"workers: 1 -> {qps_one:.0f} qps, {args.workers} -> "
            f"{qps_many:.0f} qps = {speedup:.2f}x (gate {gate:.2f}x, "
            f"{cores} cores)"
        )
        if speedup < gate:
            failures.append(
                f"workers: {args.workers}-worker speedup {speedup:.2f}x "
                f"below core-aware gate {gate:.2f}x"
            )

    # Saturation must shed, not queue: a one-slot admission gate has to
    # answer `overloaded` with a retry hint while the slot is taken.
    # Racing short lookups against each other is scheduling-luck on a
    # single core, so the probe is deterministic instead: the
    # `serve.worker.hang=1` fault channel makes the first query hang
    # inside the daemon *after* claiming the only admission slot, the
    # probe waits until the daemon's own metrics (a control op, exempt
    # from admission) report the slot in flight, and every query fired
    # from then on must be shed.  The hung daemon is SIGKILLed at the
    # end — there is nothing graceful to preserve.
    socket_path = os.path.join(socket_dir, "shed.sock")
    shed_run = os.path.join(socket_dir, "shed-run")
    pool = _spawn_pool(
        args, cache_dir, socket_path, workers=1, run_dir=shed_run,
        faults="serve.worker.hang=1",
        extra=("--max-inflight", "1", "--queue-wait", "0.005"),
    )
    tally = {"ok": 0, "overloaded": 0, "refused": 0, "other": 0}
    missing_hint = []
    lock = threading.Lock()
    try:
        _await_healthy(
            pool, socket_path, time.perf_counter() + 90, what="shed pool"
        )

        def hold_slot() -> None:
            try:
                request_socket(
                    socket_path,
                    {"op": "who-has", "domain": domains[0], "corpus": "alexa"},
                    timeout=30.0,
                )
            except (OSError, ValueError):
                pass  # the doomed request never answers; the kill ends it

        holder = threading.Thread(target=hold_slot, daemon=True)
        holder.start()
        deadline = time.perf_counter() + 30
        while True:
            reply = request_socket(socket_path, {"op": "metrics"})
            resilience = reply.get("result", {}).get("resilience", {})
            if resilience.get("inflight", 0) >= 1:
                break
            if time.perf_counter() > deadline:
                raise RuntimeError("shed probe: the hang fault never held "
                                   "the admission slot")
            time.sleep(0.02)

        def burst(offset: int) -> None:
            for i in range(6):
                domain = domains[(offset * 6 + i) % len(domains)]
                try:
                    reply = request_socket(
                        socket_path,
                        {"op": "who-has", "domain": domain, "corpus": "alexa"},
                    )
                except OSError:
                    with lock:
                        tally["refused"] += 1
                    continue
                with lock:
                    if reply.get("ok"):
                        tally["ok"] += 1
                    elif reply.get("code") == "overloaded":
                        tally["overloaded"] += 1
                        if reply.get("retry_after") is None:
                            missing_hint.append(reply)
                    else:
                        tally["other"] += 1

        threads = [
            threading.Thread(target=burst, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        _kill_pool(pool)
    row["shed"] = dict(tally)
    print(
        f"shed probe: {tally['ok']} served, {tally['overloaded']} shed, "
        f"{tally['refused']} refused at connect, {tally['other']} other"
    )
    if tally["overloaded"] == 0:
        failures.append(
            "shed probe: saturated pool never answered `overloaded` "
            "(it queued instead of shedding)"
        )
    if missing_hint:
        failures.append("shed probe: overloaded reply missing retry_after")
    return [row], failures


def bench_chaos(args, config: WorldConfig, cache_dir: str, domains: list[str],
                work_dir: str, socket_dir: str) -> tuple[dict, list[str]]:
    """Phase 5: the chaos gate — worker SIGKILL under load, pool SIGKILL
    mid-ingest, then fault-free restart back to byte-identity.

    Ground truth first: a copy of the seeded store minus the latest
    alexa result, served by an undisturbed pool that performs the same
    ingest; its answers and store digest are what the victim must return
    to.  The victim's mid-ingest kill is made deterministic by the
    ``ingest.crash=1`` fault channel: the ingesting worker exits right
    after the durable ``ingest.wal.begin``, so the process-group SIGKILL
    always lands between intent and commit.
    """
    failures: list[str] = []
    latest = NUM_SNAPSHOTS - 1
    key = cache_key(config, DatasetTag.ALEXA, latest, KIND_PRIORITY)
    expected = ArtifactStore(cache_dir).read(key)
    if expected is None:
        raise RuntimeError("seed phase left no latest alexa result artifact")

    sample = domains[:: max(1, len(domains) // 20)][:20]

    def collect_answers(target) -> dict[str, str]:
        policy = RetryPolicy(attempts=6)

        def fetch(request: dict) -> dict:
            reply = rpc_retry(
                target, request, timeout=args.chaos_deadline_s, policy=policy
            )
            if not reply.get("ok"):
                raise RuntimeError(f"chaos lookup failed: {reply}")
            return reply

        collected = {
            f"who-has:{domain}": _canonical_answer(fetch({
                "op": "who-has", "domain": domain,
                "corpus": "alexa", "snapshot": latest,
            }))
            for domain in sample
        }
        collected["provider-stats"] = _canonical_answer(fetch({
            "op": "provider-stats", "corpus": "alexa", "snapshot": latest,
        }))
        return collected

    # --- Reference: same store surgery, same ingest, nobody dies. ---
    ref_dir = os.path.join(work_dir, "ref-store")
    shutil.copytree(cache_dir, ref_dir)
    ArtifactStore(ref_dir).discard(key)
    ref_socket = os.path.join(socket_dir, "chaos-ref.sock")
    reference = _spawn_pool(
        args, ref_dir, ref_socket, workers=args.chaos_workers,
        run_dir=os.path.join(work_dir, "ref-run"),
    )
    try:
        _await_healthy(
            reference, ref_socket, time.perf_counter() + 120,
            what="reference pool",
        )
        ref_target = ("socket", ref_socket)
        reply = rpc(
            ref_target,
            {"op": "ingest", "snapshot": latest, "corpus": "alexa"},
            timeout=300.0,
        )
        if not reply.get("ok"):
            raise RuntimeError(f"reference ingest failed: {reply}")
        ref_answers = collect_answers(ref_target)
        rpc(ref_target, {"op": "shutdown"}, timeout=10.0)
        reference.wait(timeout=20)
    finally:
        _kill_pool(reference)
    ref_digest = _store_digest(ref_dir)

    # --- Victim: worker SIGKILL under load, pool SIGKILL mid-ingest. ---
    victim_dir = os.path.join(work_dir, "victim-store")
    shutil.copytree(cache_dir, victim_dir)
    ArtifactStore(victim_dir).discard(key)
    victim_socket = os.path.join(socket_dir, "chaos-victim.sock")
    victim_run = os.path.join(work_dir, "victim-run")
    target = ("socket", victim_socket)
    results: list[tuple[bool, float]] = []
    lock = threading.Lock()
    progressed = threading.Event()

    pool = _spawn_pool(
        args, victim_dir, victim_socket, workers=args.chaos_workers,
        run_dir=victim_run, faults="ingest.crash=1",
        extra=("--restart-budget", "32"),
    )
    try:
        _await_healthy(
            pool, victim_socket, time.perf_counter() + 120, what="victim pool"
        )
        deadline = time.perf_counter() + 30
        while True:
            pids = sorted({
                event["pid"] for event in _journal_events(victim_run)
                if event.get("event") == "serve.worker.start"
            })
            if len(pids) >= args.chaos_workers:
                break
            if time.perf_counter() > deadline:
                raise RuntimeError(
                    f"only {len(pids)} of {args.chaos_workers} workers "
                    "journaled serve.worker.start"
                )
            time.sleep(0.05)

        # Queries pin the PRIOR snapshot: the latest result is the hole
        # the ingest (and later the WAL replay) must fill.
        query_snapshot = latest - 1

        def load_client(offset: int) -> None:
            mine = []
            policy = RetryPolicy(attempts=6)
            for i in range(args.chaos_requests):
                domain = domains[(offset * args.chaos_requests + i) % len(domains)]
                t0 = time.perf_counter()
                try:
                    reply = rpc_retry(
                        target,
                        {"op": "who-has", "domain": domain,
                         "corpus": "alexa", "snapshot": query_snapshot},
                        timeout=args.chaos_deadline_s,
                        policy=policy,
                    )
                    ok = bool(reply.get("ok"))
                except (OSError, ValueError):
                    ok = False
                mine.append((ok, time.perf_counter() - t0))
                if i >= 1:
                    progressed.set()
            with lock:
                results.extend(mine)

        threads = [
            threading.Thread(target=load_client, args=(index,))
            for index in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        # Pull the trigger once the load is demonstrably in flight.
        progressed.wait(timeout=10)
        try:
            os.kill(pids[0], signal.SIGKILL)
        except ProcessLookupError:
            pass
        for thread in threads:
            thread.join()

        total = len(results)
        ok_count = sum(1 for ok, _ in results if ok)
        availability = ok_count / total if total else 0.0
        slowest = max((elapsed for _, elapsed in results), default=0.0)
        print(
            f"chaos: worker {pids[0]} SIGKILLed under load — "
            f"{ok_count}/{total} requests ok ({availability:.2%}), "
            f"slowest {slowest:.2f}s"
        )
        if availability < args.min_availability:
            failures.append(
                f"chaos: availability {availability:.2%} below "
                f"--min-availability {args.min_availability:.2%}"
            )
        if slowest > args.chaos_deadline_s:
            failures.append(
                f"chaos: slowest request {slowest:.2f}s exceeded its "
                f"{args.chaos_deadline_s:g}s deadline"
            )
        _wait_journal(
            victim_run, lambda e: e.get("event") == "serve.worker.lost",
            what="serve.worker.lost",
        )
        _wait_journal(
            victim_run, lambda e: e.get("event") == "serve.worker.restart",
            what="serve.worker.restart",
        )

        # Mid-ingest kill: the fault fells the ingesting worker right
        # after the WAL intent; the connection dying IS the expected
        # outcome.  Then SIGKILL the whole group with the intent open.
        try:
            reply = rpc(
                target,
                {"op": "ingest", "snapshot": latest, "corpus": "alexa"},
                timeout=args.chaos_deadline_s,
            )
            ingest_note = reply.get("code") or (
                "ok" if reply.get("ok") else "error"
            )
        except (OSError, ValueError):
            ingest_note = "connection-died"
        _wait_journal(
            victim_run,
            lambda e: (e.get("event") == "ingest.wal.begin"
                       and e.get("snapshot") == latest),
            what="ingest.wal.begin",
        )
        if any(
            event.get("event") == "ingest.wal.commit"
            and event.get("snapshot") == latest
            for event in _journal_events(victim_run)
        ):
            failures.append(
                "chaos: the mid-ingest kill landed after commit — "
                "nothing left to replay"
            )
        os.killpg(pool.pid, signal.SIGKILL)
        pool.wait(timeout=20)
        print(f"chaos: pool SIGKILLed mid-ingest (client saw: {ingest_note})")
    finally:
        _kill_pool(pool)

    # --- Recovery: fault-free restart must replay the WAL. ---
    recovered = _spawn_pool(
        args, victim_dir, victim_socket, workers=args.chaos_workers,
        run_dir=victim_run,
    )
    try:
        _await_healthy(
            recovered, victim_socket, time.perf_counter() + 300,
            what="recovered pool",
        )
        ready = rpc_retry(
            target, {"op": "ready"}, timeout=10.0,
            policy=RetryPolicy(attempts=10),
        )
        if not (ready.get("ok") and ready.get("result", {}).get("ready")):
            failures.append(f"chaos: recovered pool never ready: {ready}")
        _wait_journal(
            victim_run, lambda e: e.get("event") == "ingest.wal.replay",
            timeout=60.0, what="ingest.wal.replay",
        )
        _wait_journal(
            victim_run,
            lambda e: (e.get("event") == "ingest.wal.commit"
                       and e.get("snapshot") == latest),
            timeout=60.0, what="post-replay ingest.wal.commit",
        )
        victim_answers = collect_answers(target)
        rpc(target, {"op": "shutdown"}, timeout=10.0)
        recovered.wait(timeout=20)
    finally:
        _kill_pool(recovered)

    replayed = ArtifactStore(victim_dir).read(key)
    if replayed != expected:
        failures.append(
            "chaos: replayed result bytes differ from the undisturbed "
            "batch artifact"
        )
    victim_digest = _store_digest(victim_dir)
    if victim_digest != ref_digest:
        failures.append(
            "chaos: post-recovery store digest differs from the "
            "undisturbed pool's"
        )
    mismatched = [
        name for name in ref_answers
        if victim_answers.get(name) != ref_answers[name]
    ]
    if mismatched:
        failures.append(
            f"chaos: {len(mismatched)}/{len(ref_answers)} answers differ "
            f"from the undisturbed pool (e.g. {mismatched[0]})"
        )

    journal_path = os.path.join(victim_run, JOURNAL_NAME)
    errors = validate_jsonl_file(journal_path, JOURNAL_EVENT_SCHEMA)
    failures.extend(f"chaos journal: {error}" for error in errors)
    kinds = {event.get("event") for event in _journal_events(victim_run)}
    for required in (
        "serve.start", "serve.ready", "serve.worker.start",
        "serve.worker.lost", "serve.worker.restart",
        "ingest.wal.begin", "ingest.wal.replay", "ingest.wal.commit",
        "serve.stop",
    ):
        if required not in kinds:
            failures.append(f"chaos journal: missing {required} event")
    print(
        f"chaos: recovery replayed the WAL — store digest "
        f"{'matches' if victim_digest == ref_digest else 'DIFFERS from'} "
        f"the reference, {len(ref_answers) - len(mismatched)}/"
        f"{len(ref_answers)} answers identical"
    )

    row = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "phase": "chaos",
        "workers": args.chaos_workers,
        "requests": total,
        "availability": round(availability, 4),
        "slowest_s": round(slowest, 3),
        "ingest_outcome": ingest_note,
        "store_digest_match": victim_digest == ref_digest,
        "answers_compared": len(ref_answers),
        "answers_mismatched": len(mismatched),
        "journal": journal_path,
    }
    return row, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5,
                        help="world scale for the benchmark (default 0.5)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent lookup clients (default 4)")
    parser.add_argument("--requests", type=int, default=150,
                        help="who-has lookups per client (default 150)")
    parser.add_argument("--churn", type=float, nargs="+",
                        default=[0.0, 0.05, 0.5],
                        help="churn rates for the ingest phase")
    parser.add_argument("--gate-churn", type=float, default=0.05,
                        help="churn rate the --min-speedup gate applies to")
    parser.add_argument("--repeat", type=int, default=2,
                        help="best-of repetitions per timing (default 2)")
    parser.add_argument("--max-warm-start-s", type=float, default=10.0)
    parser.add_argument("--max-p99-ms", type=float, default=100.0)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--overhead", action="store_true",
                        help="also run a REPRO_LIVE=off baseline daemon and "
                             "report telemetry_overhead on the daemon row")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail when telemetry_overhead exceeds this "
                             "fraction (e.g. 0.05); needs --overhead")
    parser.add_argument("--scrape-out", metavar="PATH", default=None,
                        help="write the captured /metrics exposition here")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="benchmark a 1-worker vs N-worker prefork pool "
                             "plus the shed probe (replaces the daemon/ingest "
                             "phases; 0 = off)")
    parser.add_argument("--min-worker-speedup", type=float, default=3.0,
                        help="N-worker throughput floor relative to 1 worker; "
                             "clamped to 0.75*(cores-1), skipped below 2 cores")
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos gate (worker SIGKILL under load, "
                             "whole-pool SIGKILL mid-ingest, replay to "
                             "byte-identity) instead of the daemon/ingest "
                             "phases")
    parser.add_argument("--chaos-workers", type=int, default=2,
                        help="pool size for the chaos phase (default 2)")
    parser.add_argument("--chaos-requests", type=int, default=50,
                        help="who-has lookups per client during the chaos "
                             "load (default 50)")
    parser.add_argument("--min-availability", type=float, default=0.99,
                        help="retried request success floor under chaos "
                             "(default 0.99)")
    parser.add_argument("--chaos-deadline-s", type=float, default=10.0,
                        help="per-request deadline (incl. retries) under "
                             "chaos (default 10)")
    parser.add_argument("--chaos-dir", metavar="PATH", default=None,
                        help="keep chaos stores + run journal here (for CI "
                             "artifacts / validate_obs --journal)")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse a seeded store instead of a temp dir")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the results document here")
    args = parser.parse_args(argv)

    config = WorldConfig(seed=args.seed).scaled(args.scale)
    failures: list[str] = []
    rows: list[dict] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-sweep-") as tmp:
        # The store gets its own subdirectory so the chaos phase can
        # copytree it next to (never into) itself.
        cache_dir = args.cache_dir or os.path.join(tmp, "store")
        seed_seconds, domains = seed_store(config, cache_dir, args.jobs)
        print(f"seeded store in {seed_seconds:.1f}s ({cache_dir})")
        rows.append({
            "bench_schema": BENCH_SCHEMA_VERSION,
            "phase": "seed",
            "seconds": round(seed_seconds, 2),
            "alexa_domains": len(domains),
        })

        if args.workers or args.chaos:
            # Resilience run: phases 2-3 are skipped so the chaos CI step
            # stays focused (and fast); the latency/ingest gates have
            # their own invocation.
            if args.workers:
                worker_rows, worker_failures = bench_workers(
                    args, cache_dir, domains, tmp
                )
                rows.extend(worker_rows)
                failures.extend(worker_failures)
            if args.chaos:
                work_dir = args.chaos_dir or os.path.join(tmp, "chaos")
                os.makedirs(work_dir, exist_ok=True)
                chaos_row, chaos_failures = bench_chaos(
                    args, config, cache_dir, domains, work_dir, tmp
                )
                rows.append(chaos_row)
                failures.extend(chaos_failures)
            return _finish(args, rows, failures)

        daemon_row, daemon_failures, scrape_text = bench_daemon(
            args, cache_dir, domains
        )
        failures.extend(daemon_failures)
        if args.scrape_out and scrape_text is not None:
            with open(args.scrape_out, "w") as stream:
                stream.write(scrape_text)
            print(f"wrote {args.scrape_out}")

        if args.overhead:
            # The per-request cost of telemetry, not the cost of load: at
            # the concurrent benchmark's saturation point a few µs of
            # extra CPU per request balloons the queue tail, so the
            # overhead probes run a SINGLE sequential client, and both
            # sides take the best p99 of --repeat runs (tails of short
            # socket loads are scheduling-noise dominated).
            probe_args = argparse.Namespace(**{
                **vars(args),
                "clients": 1,
                "requests": min(args.clients * args.requests, 1000),
            })
            live_p99 = None
            for _ in range(args.repeat):
                probe_row, _probe_failures, _ = bench_daemon(
                    probe_args, cache_dir, domains
                )
                if live_p99 is None or probe_row["p99_ms"] < live_p99:
                    live_p99 = probe_row["p99_ms"]
            base_row = None
            for _ in range(args.repeat):
                candidate, _base_failures, _ = bench_daemon(
                    probe_args, cache_dir, domains, live=False
                )
                if base_row is None or candidate["p99_ms"] < base_row["p99_ms"]:
                    base_row = candidate
            overhead = (
                live_p99 / base_row["p99_ms"] - 1 if base_row["p99_ms"] else 0.0
            )
            daemon_row["baseline_p99_ms"] = base_row["p99_ms"]
            daemon_row["telemetry_overhead"] = round(overhead, 4)
            print(
                f"telemetry overhead on p99 (best of {args.repeat}): "
                f"{overhead:+.1%}"
            )
            if args.max_overhead is not None and overhead > args.max_overhead:
                failures.append(
                    f"telemetry overhead {overhead:.1%} exceeds "
                    f"--max-overhead {args.max_overhead:.1%}"
                )
            rows.append(base_row)
        rows.append(daemon_row)

        ingest_rows, ingest_failures = bench_ingest(args, config, cache_dir)
        rows.extend(ingest_rows)
        failures.extend(ingest_failures)

    return _finish(args, rows, failures)


def _finish(args, rows: list[dict], failures: list[str]) -> int:
    if args.json:
        document = bench_document(
            "serve-sweep",
            rows,
            failures=failures,
            scale=args.scale,
            jobs=args.jobs,
            seed=args.seed,
            clients=args.clients,
            requests=args.requests,
            churn=args.churn,
        )
        with open(args.json, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
