#!/usr/bin/env python
"""Serving benchmark: warm start, lookup tails, incremental-ingest speedup.

Three phases, mirroring the daemon's life:

1. **Seed** — build a world and fill a (temporary) artifact store with
   every (corpus, snapshot) measurement + inference artifact, the state a
   daemon inherits from a prior sweep.
2. **Daemon** — spawn ``python -m repro serve`` as a subprocess, measure
   warm start (spawn → first healthy ping; the daemon must never re-run
   the pipeline), then drive a threaded ``who-has`` load over the unix
   socket and report client-side p50/p99 latency and QPS plus the
   server's own endpoint histograms.
3. **Ingest** — in-process: at each churn rate, synthesize a mutated
   snapshot, then time a full batch recompute (decode + cold pipeline)
   against an incremental ingest (delta detection + re-infer changed
   domains only), asserting the two produce **bit-identical** encoded
   results before reporting the speedup.

CI gates: ``--max-warm-start-s``, ``--max-p99-ms``, and
``--min-speedup`` (evaluated at ``--gate-churn``, default 5%).

Usage::

    PYTHONPATH=src python scripts/serve_sweep.py --json serve-sweep.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

from repro.engine import EngineOptions
from repro.core.pipeline import PriorityPipeline
from repro.engine.incremental import IncrementalInferencer
from repro.experiments.common import StudyContext
from repro.obs.schemas import BENCH_SCHEMA_VERSION
from repro.serve.churn import synthesize_churn
from repro.serve.daemon import request_socket
from repro.store import (
    ArtifactStore,
    SnapshotView,
    decode_measurements,
    encode_measurements,
    encode_result,
)
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS


def seed_store(config: WorldConfig, cache_dir: str, jobs: int) -> tuple[float, list[str]]:
    """Fill *cache_dir* with every artifact; returns (seconds, alexa domains)."""
    started = time.perf_counter()
    ctx = StudyContext.create(
        config, engine=EngineOptions(jobs=jobs), store=ArtifactStore(cache_dir)
    )
    for dataset in DatasetTag:
        for snapshot in range(NUM_SNAPSHOTS):
            if ctx.covered(dataset, snapshot):
                ctx.priority_result(dataset, snapshot)
    return time.perf_counter() - started, ctx.domains(DatasetTag.ALEXA)


def bench_daemon(
    args, cache_dir: str, domains: list[str]
) -> tuple[dict, list[str]]:
    """Phase 2: warm start + threaded who-has load against a live daemon."""
    failures: list[str] = []
    socket_path = os.path.join(cache_dir, "sweep.sock")
    env = dict(os.environ, REPRO_CACHE=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    command = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path, "--scale", str(args.scale),
    ]
    started = time.perf_counter()
    daemon = subprocess.Popen(
        command, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    warm_start = None
    deadline = started + args.max_warm_start_s + 30
    try:
        while True:
            try:
                reply = request_socket(socket_path, {"op": "ping"}, timeout=1.0)
                if reply.get("ok"):
                    warm_start = time.perf_counter() - started
                    break
            except OSError:
                pass
            if time.perf_counter() > deadline or daemon.poll() is not None:
                output = daemon.communicate()[0] if daemon.poll() is not None else ""
                raise RuntimeError(f"daemon never became healthy: {output}")
            time.sleep(0.02)

        latencies: list[float] = []
        lock = threading.Lock()

        def worker(offset: int) -> None:
            mine: list[float] = []
            for i in range(args.requests):
                domain = domains[(offset * args.requests + i) % len(domains)]
                t0 = time.perf_counter()
                reply = request_socket(
                    socket_path,
                    {"op": "who-has", "domain": domain, "corpus": "alexa"},
                )
                mine.append(time.perf_counter() - t0)
                if not reply.get("ok"):
                    raise RuntimeError(f"lookup failed: {reply}")
            with lock:
                latencies.extend(mine)

        load_started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        load_seconds = time.perf_counter() - load_started

        server_metrics = request_socket(socket_path, {"op": "metrics"})["result"]
        request_socket(socket_path, {"op": "shutdown"})
        daemon.wait(timeout=15)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)

    latencies.sort()
    total = len(latencies)
    p50 = latencies[total // 2]
    p99 = latencies[min(total - 1, (99 * total) // 100)]
    row = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "phase": "daemon",
        "warm_start_s": round(warm_start, 4),
        "clients": args.clients,
        "requests": total,
        "qps": round(total / load_seconds, 1),
        "p50_ms": round(1e3 * p50, 3),
        "p99_ms": round(1e3 * p99, 3),
        "max_ms": round(1e3 * latencies[-1], 3),
        "server_endpoints": server_metrics["endpoints"],
        "block_cache": server_metrics["block_cache"],
    }
    if warm_start > args.max_warm_start_s:
        failures.append(
            f"warm start {warm_start:.2f}s exceeds "
            f"--max-warm-start-s {args.max_warm_start_s:g}"
        )
    if row["p99_ms"] > args.max_p99_ms:
        failures.append(
            f"who-has p99 {row['p99_ms']:.1f}ms exceeds "
            f"--max-p99-ms {args.max_p99_ms:g}"
        )
    print(
        f"daemon: warm start {warm_start:.2f}s; {total} lookups x "
        f"{args.clients} clients -> {row['qps']:.0f} qps, "
        f"p50 {row['p50_ms']:.1f}ms, p99 {row['p99_ms']:.1f}ms"
    )
    return row, failures


def bench_ingest(args, config: WorldConfig, cache_dir: str) -> tuple[list[dict], list[str]]:
    """Phase 3: batch-vs-incremental wall clock at each churn rate."""
    failures: list[str] = []
    store = ArtifactStore(cache_dir)
    base_index = NUM_SNAPSHOTS - 1
    base_payload = store.measurement_payload(config, DatasetTag.ALEXA, base_index)
    if base_payload is None:
        raise RuntimeError("seed phase left no alexa measurement payload")
    base = decode_measurements(base_payload)

    ctx = StudyContext.create(config, engine=EngineOptions(jobs=args.jobs), store=None)
    world = ctx.world

    def batch_run(measurements):
        pipeline = PriorityPipeline(world.trust_store, ctx.company_map, psl=world.psl)
        return pipeline.run(measurements, jobs=args.jobs)

    rows = []
    for rate in args.churn:
        churned = synthesize_churn(base, rate, seed=args.seed)
        payload = encode_measurements(churned)

        batch_seconds = min(
            _timed(lambda: batch_run(decode_measurements(payload)))[0]
            for _ in range(args.repeat)
        )
        batch_digest = encode_result(batch_run(decode_measurements(payload)))

        best = None
        for _ in range(args.repeat):
            inferencer = IncrementalInferencer(
                world.trust_store, ctx.company_map, psl=world.psl
            )
            state, _boot = inferencer.bootstrap(
                SnapshotView(base_payload), snapshot_index=base_index, jobs=args.jobs
            )
            seconds, report = _timed(
                lambda: inferencer.ingest(
                    state,
                    SnapshotView(payload),
                    snapshot_index=base_index + 1,
                    jobs=args.jobs,
                )
            )
            identical = encode_result(state.result) == batch_digest
            if not identical:
                failures.append(
                    f"churn {rate:.0%}: incremental result diverged from batch"
                )
            if best is None or seconds < best[0]:
                best = (seconds, report, identical)
        seconds, report, identical = best
        speedup = batch_seconds / seconds if seconds else float("inf")
        row = {
            "bench_schema": BENCH_SCHEMA_VERSION,
            "phase": "ingest",
            "churn": rate,
            "domains": len(base),
            "reinferred": report.reinferred,
            "batch_seconds": round(batch_seconds, 4),
            "ingest_seconds": round(seconds, 4),
            "speedup": round(speedup, 1),
            "bit_identical": identical,
        }
        rows.append(row)
        print(
            f"ingest: churn {rate:>4.0%} -> batch {batch_seconds*1e3:7.1f}ms, "
            f"incremental {seconds*1e3:6.1f}ms ({report.reinferred} domains) "
            f"= {speedup:5.1f}x, identical={identical}"
        )
        if abs(rate - args.gate_churn) < 1e-9 and speedup < args.min_speedup:
            failures.append(
                f"ingest speedup {speedup:.1f}x at {rate:.0%} churn below "
                f"--min-speedup {args.min_speedup:g}"
            )
    return rows, failures


def _timed(thunk):
    started = time.perf_counter()
    result = thunk()
    return time.perf_counter() - started, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5,
                        help="world scale for the benchmark (default 0.5)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent lookup clients (default 4)")
    parser.add_argument("--requests", type=int, default=150,
                        help="who-has lookups per client (default 150)")
    parser.add_argument("--churn", type=float, nargs="+",
                        default=[0.0, 0.05, 0.5],
                        help="churn rates for the ingest phase")
    parser.add_argument("--gate-churn", type=float, default=0.05,
                        help="churn rate the --min-speedup gate applies to")
    parser.add_argument("--repeat", type=int, default=2,
                        help="best-of repetitions per timing (default 2)")
    parser.add_argument("--max-warm-start-s", type=float, default=10.0)
    parser.add_argument("--max-p99-ms", type=float, default=100.0)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--cache-dir", default=None,
                        help="reuse a seeded store instead of a temp dir")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the results document here")
    args = parser.parse_args(argv)

    config = WorldConfig(seed=args.seed).scaled(args.scale)
    failures: list[str] = []
    rows: list[dict] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-sweep-") as tmp:
        cache_dir = args.cache_dir or tmp
        seed_seconds, domains = seed_store(config, cache_dir, args.jobs)
        print(f"seeded store in {seed_seconds:.1f}s ({cache_dir})")
        rows.append({
            "bench_schema": BENCH_SCHEMA_VERSION,
            "phase": "seed",
            "seconds": round(seed_seconds, 2),
            "alexa_domains": len(domains),
        })

        daemon_row, daemon_failures = bench_daemon(args, cache_dir, domains)
        rows.append(daemon_row)
        failures.extend(daemon_failures)

        ingest_rows, ingest_failures = bench_ingest(args, config, cache_dir)
        rows.extend(ingest_rows)
        failures.extend(ingest_failures)

    if args.json:
        document = {
            "bench": "serve-sweep",
            "bench_schema": BENCH_SCHEMA_VERSION,
            "scale": args.scale,
            "jobs": args.jobs,
            "rows": rows,
            "failures": failures,
        }
        with open(args.json, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
