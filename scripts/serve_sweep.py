#!/usr/bin/env python
"""Serving benchmark: warm start, lookup tails, incremental-ingest speedup.

Three phases, mirroring the daemon's life:

1. **Seed** — build a world and fill a (temporary) artifact store with
   every (corpus, snapshot) measurement + inference artifact, the state a
   daemon inherits from a prior sweep.
2. **Daemon** — spawn ``python -m repro serve`` as a subprocess, measure
   warm start (spawn → first healthy ping; the daemon must never re-run
   the pipeline), then drive a threaded ``who-has`` load over the unix
   socket and report client-side p50/p99 latency and QPS plus the
   server's own endpoint histograms.  While the load is in flight the
   sweep scrapes the daemon's ``GET /metrics`` Prometheus endpoint and
   asserts the sliding-window p99 and block-cache hit rate are live and
   non-zero (``--scrape-out`` keeps the raw exposition text).  With
   ``--overhead`` a second daemon runs with ``REPRO_LIVE=off`` and the
   row gains ``telemetry_overhead`` (relative p99 cost of telemetry).
3. **Ingest** — in-process: at each churn rate, synthesize a mutated
   snapshot, then time a full batch recompute (decode + cold pipeline)
   against an incremental ingest (delta detection + re-infer changed
   domains only), asserting the two produce **bit-identical** encoded
   results before reporting the speedup.

CI gates: ``--max-warm-start-s``, ``--max-p99-ms``, and
``--min-speedup`` (evaluated at ``--gate-churn``, default 5%).

Usage::

    PYTHONPATH=src python scripts/serve_sweep.py --json serve-sweep.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

from repro.engine import EngineOptions
from repro.core.pipeline import PriorityPipeline
from repro.engine.incremental import IncrementalInferencer
from repro.experiments.common import StudyContext
from repro.obs.schemas import (
    BENCH_SCHEMA_VERSION,
    bench_document,
    validate_prometheus,
)
from repro.serve.churn import synthesize_churn
from repro.serve.daemon import request_socket
from repro.store import (
    ArtifactStore,
    SnapshotView,
    decode_measurements,
    encode_measurements,
    encode_result,
)
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS


def seed_store(config: WorldConfig, cache_dir: str, jobs: int) -> tuple[float, list[str]]:
    """Fill *cache_dir* with every artifact; returns (seconds, alexa domains)."""
    started = time.perf_counter()
    ctx = StudyContext.create(
        config, engine=EngineOptions(jobs=jobs), store=ArtifactStore(cache_dir)
    )
    for dataset in DatasetTag:
        for snapshot in range(NUM_SNAPSHOTS):
            if ctx.covered(dataset, snapshot):
                ctx.priority_result(dataset, snapshot)
    return time.perf_counter() - started, ctx.domains(DatasetTag.ALEXA)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def scrape_prometheus(host: str, port: int, timeout: float = 5.0) -> str:
    """One GET /metrics scrape; raises on a non-200 answer."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read().decode()
    finally:
        connection.close()
    if response.status != 200:
        raise RuntimeError(f"GET /metrics answered {response.status}")
    return body


def prom_sample(text: str, name: str, fragment: str = "") -> float | None:
    """The first sample value of *name* whose label set contains *fragment*."""
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        series, _, value = line.rpartition(" ")
        if fragment in series:
            try:
                return float(value)
            except ValueError:
                return None
    return None


_WHOHAS_P99 = 'endpoint="who-has",window="10s",quantile="0.99"'


def bench_daemon(
    args, cache_dir: str, domains: list[str], *, live: bool = True
) -> tuple[dict, list[str], str | None]:
    """Phase 2: warm start + threaded who-has load against a live daemon.

    With ``live=False`` the daemon runs with telemetry disabled
    (``REPRO_LIVE=off``) — the baseline for the overhead measurement.
    """
    failures: list[str] = []
    socket_path = os.path.join(
        cache_dir, "sweep-live.sock" if live else "sweep-base.sock"
    )
    http_port = _free_port()
    env = dict(
        os.environ,
        REPRO_CACHE=cache_dir,
        REPRO_LIVE="1" if live else "off",
    )
    env.setdefault("PYTHONPATH", "src")
    command = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path, "--http", f"127.0.0.1:{http_port}",
        "--scale", str(args.scale),
    ]
    started = time.perf_counter()
    daemon = subprocess.Popen(
        command, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    warm_start = None
    deadline = started + args.max_warm_start_s + 30
    try:
        while True:
            try:
                reply = request_socket(socket_path, {"op": "ping"}, timeout=1.0)
                if reply.get("ok"):
                    warm_start = time.perf_counter() - started
                    break
            except OSError:
                pass
            if time.perf_counter() > deadline or daemon.poll() is not None:
                output = daemon.communicate()[0] if daemon.poll() is not None else ""
                raise RuntimeError(f"daemon never became healthy: {output}")
            time.sleep(0.02)

        latencies: list[float] = []
        lock = threading.Lock()

        def worker(offset: int) -> None:
            mine: list[float] = []
            for i in range(args.requests):
                domain = domains[(offset * args.requests + i) % len(domains)]
                t0 = time.perf_counter()
                reply = request_socket(
                    socket_path,
                    {"op": "who-has", "domain": domain, "corpus": "alexa"},
                )
                mine.append(time.perf_counter() - t0)
                if not reply.get("ok"):
                    raise RuntimeError(f"lookup failed: {reply}")
            with lock:
                latencies.extend(mine)

        load_started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        scrape_text = None
        scraped_in_flight = False
        if live:
            # Scrape /metrics WHILE requests are in flight: the sliding
            # windows must already show a non-zero p99 and hit rate.  Stop
            # after the first satisfying capture so the scraper does not
            # keep stealing cycles from the load it is observing.
            while any(thread.is_alive() for thread in threads):
                try:
                    body = scrape_prometheus("127.0.0.1", http_port, timeout=2.0)
                except (OSError, RuntimeError):
                    body = None
                if body is not None:
                    p99 = prom_sample(
                        body, "repro_serve_latency_seconds", _WHOHAS_P99
                    )
                    hit = prom_sample(body, "repro_serve_block_cache_hit_ratio")
                    if p99 and hit is not None:
                        scrape_text = body
                        scraped_in_flight = True
                        break
                time.sleep(0.05)
        for thread in threads:
            thread.join()
        load_seconds = time.perf_counter() - load_started
        if live and scrape_text is None:
            # The load outran the scraper; the 10s window still holds the
            # burst, so a final scrape keeps short CI runs meaningful.
            try:
                scrape_text = scrape_prometheus("127.0.0.1", http_port)
            except (OSError, RuntimeError) as error:
                failures.append(f"GET /metrics scrape failed: {error}")

        server_metrics = request_socket(socket_path, {"op": "metrics"})["result"]
        request_socket(socket_path, {"op": "shutdown"})
        daemon.wait(timeout=15)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)

    latencies.sort()
    total = len(latencies)
    p50 = latencies[total // 2]
    p99 = latencies[min(total - 1, (99 * total) // 100)]
    row = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "phase": "daemon" if live else "daemon-baseline",
        "telemetry": live,
        "warm_start_s": round(warm_start, 4),
        "clients": args.clients,
        "requests": total,
        "qps": round(total / load_seconds, 1),
        "p50_ms": round(1e3 * p50, 3),
        "p99_ms": round(1e3 * p99, 3),
        "max_ms": round(1e3 * latencies[-1], 3),
        "server_endpoints": server_metrics["endpoints"],
        "block_cache": server_metrics["block_cache"],
    }
    if live:
        if scrape_text is not None:
            errors = validate_prometheus(scrape_text, "/metrics")
            failures.extend(f"scrape: {error}" for error in errors)
            scrape_p99 = prom_sample(
                scrape_text, "repro_serve_latency_seconds", _WHOHAS_P99
            )
            scrape_hit = prom_sample(
                scrape_text, "repro_serve_block_cache_hit_ratio"
            )
            if not scrape_p99:
                failures.append(
                    "scrape: sliding-window who-has p99 is zero/absent"
                )
            if scrape_hit is None:
                failures.append("scrape: block cache hit ratio absent")
            row["scrape_p99_ms"] = round(1e3 * (scrape_p99 or 0.0), 3)
            row["scrape_cache_hit_ratio"] = (
                round(scrape_hit, 4) if scrape_hit is not None else None
            )
            row["scrape_in_flight"] = scraped_in_flight
    if warm_start > args.max_warm_start_s:
        failures.append(
            f"warm start {warm_start:.2f}s exceeds "
            f"--max-warm-start-s {args.max_warm_start_s:g}"
        )
    if row["p99_ms"] > args.max_p99_ms:
        failures.append(
            f"who-has p99 {row['p99_ms']:.1f}ms exceeds "
            f"--max-p99-ms {args.max_p99_ms:g}"
        )
    print(
        f"daemon{'' if live else ' (telemetry off)'}: warm start "
        f"{warm_start:.2f}s; {total} lookups x "
        f"{args.clients} clients -> {row['qps']:.0f} qps, "
        f"p50 {row['p50_ms']:.1f}ms, p99 {row['p99_ms']:.1f}ms"
    )
    if live and scrape_text is not None:
        print(
            f"scrape: /metrics p99(10s) {row.get('scrape_p99_ms', 0):.1f}ms, "
            f"cache hit {row.get('scrape_cache_hit_ratio')}, "
            f"in-flight={scraped_in_flight}"
        )
    return row, failures, scrape_text


def bench_ingest(args, config: WorldConfig, cache_dir: str) -> tuple[list[dict], list[str]]:
    """Phase 3: batch-vs-incremental wall clock at each churn rate."""
    failures: list[str] = []
    store = ArtifactStore(cache_dir)
    base_index = NUM_SNAPSHOTS - 1
    base_payload = store.measurement_payload(config, DatasetTag.ALEXA, base_index)
    if base_payload is None:
        raise RuntimeError("seed phase left no alexa measurement payload")
    base = decode_measurements(base_payload)

    ctx = StudyContext.create(config, engine=EngineOptions(jobs=args.jobs), store=None)
    world = ctx.world

    def batch_run(measurements):
        pipeline = PriorityPipeline(world.trust_store, ctx.company_map, psl=world.psl)
        return pipeline.run(measurements, jobs=args.jobs)

    rows = []
    for rate in args.churn:
        churned = synthesize_churn(base, rate, seed=args.seed)
        payload = encode_measurements(churned)

        batch_seconds = min(
            _timed(lambda: batch_run(decode_measurements(payload)))[0]
            for _ in range(args.repeat)
        )
        batch_digest = encode_result(batch_run(decode_measurements(payload)))

        best = None
        for _ in range(args.repeat):
            inferencer = IncrementalInferencer(
                world.trust_store, ctx.company_map, psl=world.psl
            )
            state, _boot = inferencer.bootstrap(
                SnapshotView(base_payload), snapshot_index=base_index, jobs=args.jobs
            )
            seconds, report = _timed(
                lambda: inferencer.ingest(
                    state,
                    SnapshotView(payload),
                    snapshot_index=base_index + 1,
                    jobs=args.jobs,
                )
            )
            identical = encode_result(state.result) == batch_digest
            if not identical:
                failures.append(
                    f"churn {rate:.0%}: incremental result diverged from batch"
                )
            if best is None or seconds < best[0]:
                best = (seconds, report, identical)
        seconds, report, identical = best
        speedup = batch_seconds / seconds if seconds else float("inf")
        row = {
            "bench_schema": BENCH_SCHEMA_VERSION,
            "phase": "ingest",
            "churn": rate,
            "domains": len(base),
            "reinferred": report.reinferred,
            "batch_seconds": round(batch_seconds, 4),
            "ingest_seconds": round(seconds, 4),
            "speedup": round(speedup, 1),
            "bit_identical": identical,
        }
        rows.append(row)
        print(
            f"ingest: churn {rate:>4.0%} -> batch {batch_seconds*1e3:7.1f}ms, "
            f"incremental {seconds*1e3:6.1f}ms ({report.reinferred} domains) "
            f"= {speedup:5.1f}x, identical={identical}"
        )
        if abs(rate - args.gate_churn) < 1e-9 and speedup < args.min_speedup:
            failures.append(
                f"ingest speedup {speedup:.1f}x at {rate:.0%} churn below "
                f"--min-speedup {args.min_speedup:g}"
            )
    return rows, failures


def _timed(thunk):
    started = time.perf_counter()
    result = thunk()
    return time.perf_counter() - started, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5,
                        help="world scale for the benchmark (default 0.5)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent lookup clients (default 4)")
    parser.add_argument("--requests", type=int, default=150,
                        help="who-has lookups per client (default 150)")
    parser.add_argument("--churn", type=float, nargs="+",
                        default=[0.0, 0.05, 0.5],
                        help="churn rates for the ingest phase")
    parser.add_argument("--gate-churn", type=float, default=0.05,
                        help="churn rate the --min-speedup gate applies to")
    parser.add_argument("--repeat", type=int, default=2,
                        help="best-of repetitions per timing (default 2)")
    parser.add_argument("--max-warm-start-s", type=float, default=10.0)
    parser.add_argument("--max-p99-ms", type=float, default=100.0)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--overhead", action="store_true",
                        help="also run a REPRO_LIVE=off baseline daemon and "
                             "report telemetry_overhead on the daemon row")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail when telemetry_overhead exceeds this "
                             "fraction (e.g. 0.05); needs --overhead")
    parser.add_argument("--scrape-out", metavar="PATH", default=None,
                        help="write the captured /metrics exposition here")
    parser.add_argument("--cache-dir", default=None,
                        help="reuse a seeded store instead of a temp dir")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the results document here")
    args = parser.parse_args(argv)

    config = WorldConfig(seed=args.seed).scaled(args.scale)
    failures: list[str] = []
    rows: list[dict] = []

    with tempfile.TemporaryDirectory(prefix="repro-serve-sweep-") as tmp:
        cache_dir = args.cache_dir or tmp
        seed_seconds, domains = seed_store(config, cache_dir, args.jobs)
        print(f"seeded store in {seed_seconds:.1f}s ({cache_dir})")
        rows.append({
            "bench_schema": BENCH_SCHEMA_VERSION,
            "phase": "seed",
            "seconds": round(seed_seconds, 2),
            "alexa_domains": len(domains),
        })

        daemon_row, daemon_failures, scrape_text = bench_daemon(
            args, cache_dir, domains
        )
        failures.extend(daemon_failures)
        if args.scrape_out and scrape_text is not None:
            with open(args.scrape_out, "w") as stream:
                stream.write(scrape_text)
            print(f"wrote {args.scrape_out}")

        if args.overhead:
            # The per-request cost of telemetry, not the cost of load: at
            # the concurrent benchmark's saturation point a few µs of
            # extra CPU per request balloons the queue tail, so the
            # overhead probes run a SINGLE sequential client, and both
            # sides take the best p99 of --repeat runs (tails of short
            # socket loads are scheduling-noise dominated).
            probe_args = argparse.Namespace(**{
                **vars(args),
                "clients": 1,
                "requests": min(args.clients * args.requests, 1000),
            })
            live_p99 = None
            for _ in range(args.repeat):
                probe_row, _probe_failures, _ = bench_daemon(
                    probe_args, cache_dir, domains
                )
                if live_p99 is None or probe_row["p99_ms"] < live_p99:
                    live_p99 = probe_row["p99_ms"]
            base_row = None
            for _ in range(args.repeat):
                candidate, _base_failures, _ = bench_daemon(
                    probe_args, cache_dir, domains, live=False
                )
                if base_row is None or candidate["p99_ms"] < base_row["p99_ms"]:
                    base_row = candidate
            overhead = (
                live_p99 / base_row["p99_ms"] - 1 if base_row["p99_ms"] else 0.0
            )
            daemon_row["baseline_p99_ms"] = base_row["p99_ms"]
            daemon_row["telemetry_overhead"] = round(overhead, 4)
            print(
                f"telemetry overhead on p99 (best of {args.repeat}): "
                f"{overhead:+.1%}"
            )
            if args.max_overhead is not None and overhead > args.max_overhead:
                failures.append(
                    f"telemetry overhead {overhead:.1%} exceeds "
                    f"--max-overhead {args.max_overhead:.1%}"
                )
            rows.append(base_row)
        rows.append(daemon_row)

        ingest_rows, ingest_failures = bench_ingest(args, config, cache_dir)
        rows.extend(ingest_rows)
        failures.extend(ingest_failures)

    if args.json:
        document = bench_document(
            "serve-sweep",
            rows,
            failures=failures,
            scale=args.scale,
            jobs=args.jobs,
            seed=args.seed,
            clients=args.clients,
            requests=args.requests,
            churn=args.churn,
        )
        with open(args.json, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
