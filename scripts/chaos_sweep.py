#!/usr/bin/env python
"""Chaos/differential sweep: accuracy vs fault rate, with CI gates.

Runs the measure→infer path at a series of uniform fault rates (the same
seed throughout) and reports how the priority pipeline degrades: overall
accuracy against ground truth, the evidence-tier distribution (how far
domains fall down the cert > banner > mx-name ladder), and the injected
fault counters.  Three gates make this a differential harness rather than
a dashboard:

* **rate-0 is a no-op** — the rate-0 run must be *byte-identical* to a
  baseline run with faults absent: measurement digests, result digests,
  and artifact-store cache keys all equal.  This pins the zero-overhead
  seam (an inactive plan resolves to no injector at all).
* **monotone tier fallback** — as the rate rises, the cert-tier share
  must not rise and the mx-tier share must not fall (within a small
  tolerance; partial-zone dropout can occasionally *improve* a tier by
  removing a bad IP, and truncated banners can still parse).
* **bounded degradation** — accuracy at the highest swept rate must stay
  within ``--tolerance`` of baseline (documented in DESIGN.md §7.4).

Usage::

    PYTHONPATH=src python scripts/chaos_sweep.py --rates 0,0.05,0.2 --seed 1
    PYTHONPATH=src python scripts/chaos_sweep.py --rates 0,0.05,0.2 --seed 1 \\
        --check --json chaos-sweep.json --table chaos-sweep.md   # CI
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time

from repro.analysis.accuracy import is_correct
from repro.engine import EngineOptions
from repro.engine.stats import STATS, reset_stats
from repro.experiments.common import LAST_SNAPSHOT, StudyContext
from repro.faults import FaultPlan
from repro.faults.plan import RATE_FIELDS
from repro.obs.schemas import bench_document
from repro.store.artifacts import (
    KIND_MEASUREMENTS,
    KIND_PRIORITY,
    cache_key,
)
from repro.store.codec import encode_measurements, encode_result
from repro.tls.ca import reset_serials
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag

#: Tier-share tolerance for the monotonicity gate (absolute share points).
TIER_TOLERANCE = 0.02

CORPORA = (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV)


def winning_tier(inference) -> str | None:
    """The strongest evidence tier behind one attribution, or None."""
    if not inference.mx_identities:
        return None
    best = min(inference.mx_identities, key=lambda identity: identity.source.priority)
    return best.source.value


def run_once(config, engine, plan, snapshot_index: int) -> dict:
    """One full measure→infer pass; returns metrics + content digests."""
    reset_stats()
    # Cert serials come from a process-global counter; restart it so every
    # run's world (and therefore its snapshot encodings) is byte-comparable.
    reset_serials()
    started = time.time()
    ctx = StudyContext.create(config, engine=engine, store=None, faults=plan)
    correct = total = 0
    tiers = {"cert": 0, "banner": 0, "mx": 0}
    attributed = no_mx = 0
    digests = {}
    keys = {}
    for dataset in CORPORA:
        measurements = ctx.measurements(dataset, snapshot_index)
        result = ctx.priority_result(dataset, snapshot_index)
        digests[dataset.value] = {
            "measurements": hashlib.sha256(
                encode_measurements(measurements)
            ).hexdigest(),
            "result": hashlib.sha256(encode_result(result)).hexdigest(),
        }
        keys[dataset.value] = {
            "measurements": cache_key(
                config, dataset, snapshot_index, KIND_MEASUREMENTS, ctx.faults_key()
            ),
            "result": cache_key(
                config, dataset, snapshot_index, KIND_PRIORITY, ctx.faults_key()
            ),
        }
        for domain, inference in result.inferences.items():
            total += 1
            if is_correct(
                inference, ctx.ground_truth(domain, snapshot_index), ctx.company_map
            ):
                correct += 1
            tier = winning_tier(inference)
            if tier is None:
                no_mx += 1
            else:
                attributed += 1
                tiers[tier] += 1
    fault_counters = {
        name: count
        for name, count in sorted(STATS.counters.items())
        if name.startswith("faults.")
    }
    return {
        "accuracy": correct / total if total else 0.0,
        "domains": total,
        "attributed": attributed,
        "no_mx": no_mx,
        "tier_counts": tiers,
        "tier_shares": {
            tier: (count / attributed if attributed else 0.0)
            for tier, count in tiers.items()
        },
        "digests": digests,
        "cache_keys": keys,
        "fault_counters": fault_counters,
        "elapsed_seconds": round(time.time() - started, 3),
    }


def render_table(rows: list[dict], baseline: dict) -> str:
    lines = [
        "| rate | accuracy | Δ accuracy | cert | banner | mx | no-MX | injected |",
        "|-----:|---------:|-----------:|-----:|-------:|---:|------:|---------:|",
    ]
    for row in rows:
        shares = row["tier_shares"]
        channels = {f"faults.{channel}" for channel in RATE_FIELDS}
        injected = sum(
            count
            for name, count in row["fault_counters"].items()
            if name in channels
        )
        lines.append(
            f"| {row['rate']:g} "
            f"| {row['accuracy']:.3f} "
            f"| {row['accuracy'] - baseline['accuracy']:+.3f} "
            f"| {shares['cert']:.2f} "
            f"| {shares['banner']:.2f} "
            f"| {shares['mx']:.2f} "
            f"| {row['no_mx']} "
            f"| {injected} |"
        )
    return "\n".join(lines)


def check_gates(rows: list[dict], baseline: dict, tolerance: float) -> list[str]:
    """All gate violations (empty = pass)."""
    failures: list[str] = []
    by_rate = {row["rate"]: row for row in rows}
    zero = by_rate.get(0.0)
    if zero is not None:
        for field in ("digests", "cache_keys"):
            if zero[field] != baseline[field]:
                failures.append(
                    f"rate-0 {field} differ from the fault-free baseline "
                    f"(the inactive-plan seam is not a no-op)"
                )
        if zero["accuracy"] != baseline["accuracy"]:
            failures.append("rate-0 accuracy differs from baseline")
    ordered = sorted(rows, key=lambda row: row["rate"])
    for previous, current in zip(ordered, ordered[1:]):
        cert_rise = (
            current["tier_shares"]["cert"] - previous["tier_shares"]["cert"]
        )
        mx_fall = previous["tier_shares"]["mx"] - current["tier_shares"]["mx"]
        if cert_rise > TIER_TOLERANCE:
            failures.append(
                f"cert-tier share rose {cert_rise:.3f} from rate "
                f"{previous['rate']:g} to {current['rate']:g} "
                f"(> {TIER_TOLERANCE}) — tier fallback is not monotone"
            )
        if mx_fall > TIER_TOLERANCE:
            failures.append(
                f"mx-tier share fell {mx_fall:.3f} from rate "
                f"{previous['rate']:g} to {current['rate']:g} "
                f"(> {TIER_TOLERANCE}) — tier fallback is not monotone"
            )
    worst = ordered[-1]
    degradation = baseline["accuracy"] - worst["accuracy"]
    if degradation > tolerance:
        failures.append(
            f"accuracy degraded {degradation:.3f} at rate {worst['rate']:g} "
            f"(tolerance {tolerance})"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rates", default="0,0.05,0.2",
        help="comma-separated uniform fault rates to sweep (default 0,0.05,0.2)",
    )
    parser.add_argument("--seed", type=int, default=1, help="fault-plan seed")
    parser.add_argument(
        "--world-seed", type=int, default=7, help="world seed (default 7)"
    )
    parser.add_argument("--scale", type=float, default=0.5, help="corpus scale")
    parser.add_argument("--jobs", type=int, default=None, help="engine workers")
    parser.add_argument(
        "--snapshot", type=int, default=LAST_SNAPSHOT, help="snapshot index"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.55,
        help="max accuracy drop at the highest rate (default 0.55, sized "
             "for rate 0.2 where a uniform plan costs ~0.51 at the "
             "reference scale; see DESIGN.md §7.4)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the sweep as JSON")
    parser.add_argument(
        "--table", metavar="PATH", help="write the markdown table to PATH"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when any differential gate fails (CI mode)",
    )
    args = parser.parse_args(argv)

    rates = [float(raw) for raw in args.rates.split(",") if raw.strip()]
    config = WorldConfig(seed=args.world_seed).scaled(args.scale)
    engine = EngineOptions(jobs=args.jobs)

    print(
        f"chaos sweep: rates={rates} fault-seed={args.seed} "
        f"world=(seed={config.seed}, {config.alexa_size}/{config.com_size}"
        f"/{config.gov_size}) snapshot={args.snapshot}",
        file=sys.stderr,
    )
    baseline = run_once(config, engine, None, args.snapshot)
    baseline["rate"] = None
    print(
        f"  baseline (faults absent): accuracy {baseline['accuracy']:.3f} "
        f"in {baseline['elapsed_seconds']}s",
        file=sys.stderr,
    )
    rows = []
    for rate in rates:
        plan = FaultPlan.uniform(rate, seed=args.seed)
        row = run_once(config, engine, plan, args.snapshot)
        row["rate"] = rate
        row["plan"] = plan.canonical()
        rows.append(row)
        print(
            f"  rate {rate:g}: accuracy {row['accuracy']:.3f} "
            f"({row['accuracy'] - baseline['accuracy']:+.3f}), "
            f"tiers c/b/m {row['tier_shares']['cert']:.2f}/"
            f"{row['tier_shares']['banner']:.2f}/{row['tier_shares']['mx']:.2f} "
            f"in {row['elapsed_seconds']}s",
            file=sys.stderr,
        )

    table = render_table(rows, baseline)
    print(table)
    failures = check_gates(rows, baseline, args.tolerance)
    document = bench_document(
        "chaos-sweep",
        rows,
        failures=failures,
        rates=rates,
        fault_seed=args.seed,
        snapshot=args.snapshot,
        tolerance=args.tolerance,
        baseline=baseline,
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    if args.table:
        with open(args.table, "w") as handle:
            handle.write(table + "\n")
        print(f"wrote {args.table}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1 if args.check else 0
    print("all gates passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
