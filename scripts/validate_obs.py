#!/usr/bin/env python
"""Validate observability artifacts against their JSON schemas.

CI runs a small traced sweep, then checks that the trace file (plus its
JSONL event stream), the metrics export, and the run manifest all match
the schemas in :mod:`repro.obs.schemas` before uploading them as build
artifacts.  Optionally asserts that the trace actually contains the span
categories a sharded sweep must produce.

Usage::

    PYTHONPATH=src python scripts/validate_obs.py \\
        --trace trace.json --metrics metrics.json --manifest manifest.json \\
        --expect-cats run,experiment,snapshot,gather,shard
    PYTHONPATH=src python scripts/validate_obs.py \\
        --bench serve-sweep.json --bench-history BENCH_history.jsonl \\
        --prom metrics.prom
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import schemas, trace


def check(label: str, errors: list[str]) -> bool:
    if errors:
        for error in errors:
            print(f"FAIL [{label}] {error}", file=sys.stderr)
        return False
    print(f"ok   [{label}]")
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", metavar="PATH", help="Chrome-trace JSON file")
    parser.add_argument("--metrics", metavar="PATH", help="metrics JSON export")
    parser.add_argument("--manifest", metavar="PATH", help="run manifest JSON")
    parser.add_argument(
        "--journal", metavar="PATH", help="resilience run journal (JSONL)"
    )
    parser.add_argument(
        "--bench", metavar="PATH", action="append", default=[],
        help="bench JSON document (bench_sweep/serve_sweep/chaos_sweep "
             "--json output); repeatable",
    )
    parser.add_argument(
        "--bench-history", metavar="PATH", default=None,
        help="BENCH_history.jsonl perf timeline (one history event per line)",
    )
    parser.add_argument(
        "--prom", metavar="PATH", action="append", default=[],
        help="Prometheus text exposition (a saved GET /metrics scrape); "
             "repeatable",
    )
    parser.add_argument(
        "--expect-cats", metavar="CATS", default=None,
        help="comma-separated span categories the trace must contain "
             "(e.g. run,experiment,snapshot,gather,shard)",
    )
    parser.add_argument(
        "--expect-memory", action="store_true",
        help="require the metrics memory section to carry a real peak-RSS "
             "sample (nonzero peak_rss_bytes)",
    )
    args = parser.parse_args(argv)
    if not (
        args.trace or args.metrics or args.manifest or args.journal
        or args.bench or args.bench_history or args.prom
    ):
        parser.error(
            "nothing to validate; pass --trace/--metrics/--manifest/"
            "--journal/--bench/--bench-history/--prom"
        )

    ok = True
    if args.trace:
        ok &= check("trace", schemas.validate_file(args.trace, schemas.TRACE_SCHEMA))
        stream = trace.jsonl_path(args.trace)
        ok &= check(
            "trace-jsonl",
            schemas.validate_jsonl_file(stream, schemas.TRACE_EVENT_SCHEMA),
        )
        if args.expect_cats:
            wanted = {cat.strip() for cat in args.expect_cats.split(",") if cat.strip()}
            with open(args.trace) as handle:
                events = json.load(handle)["traceEvents"]
            present = {event.get("cat") for event in events}
            missing = sorted(wanted - present)
            ok &= check(
                "trace-cats",
                [f"missing span categories: {missing}"] if missing else [],
            )
    if args.metrics:
        ok &= check(
            "metrics", schemas.validate_file(args.metrics, schemas.METRICS_SCHEMA)
        )
        if args.expect_memory:
            with open(args.metrics) as handle:
                memory = json.load(handle).get("memory", {})
            peak = memory.get("peak_rss_bytes", 0)
            ok &= check(
                "metrics-memory",
                [] if peak > 0 else [f"peak_rss_bytes is {peak}, expected > 0"],
            )
    if args.manifest:
        ok &= check(
            "manifest", schemas.validate_file(args.manifest, schemas.MANIFEST_SCHEMA)
        )
    if args.journal:
        ok &= check(
            "journal",
            schemas.validate_jsonl_file(args.journal, schemas.JOURNAL_EVENT_SCHEMA),
        )
    for bench_path in args.bench:
        errors = schemas.validate_file(bench_path, schemas.BENCH_SCHEMA)
        if not errors:
            # The schema proves the stamps exist; also pin their value so
            # a version bump without regenerated artifacts fails loudly.
            with open(bench_path) as handle:
                document = json.load(handle)
            stamps = [document["bench_schema"]] + [
                row["bench_schema"] for row in document["rows"]
            ]
            stale = sorted({s for s in stamps if s != schemas.BENCH_SCHEMA_VERSION})
            if stale:
                errors = [
                    f"{bench_path}: bench_schema {stale} != "
                    f"{schemas.BENCH_SCHEMA_VERSION}"
                ]
        ok &= check(f"bench:{bench_path}", errors)
    if args.bench_history:
        ok &= check(
            "bench-history",
            schemas.validate_jsonl_file(
                args.bench_history, schemas.HISTORY_EVENT_SCHEMA
            ),
        )
    for prom_path in args.prom:
        ok &= check(
            f"prom:{prom_path}", schemas.validate_prometheus_file(prom_path)
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
