#!/usr/bin/env python
"""One-command perf baseline: the longitudinal sweep across engine modes.

Runs the 3-corpora × 9-snapshot measure→infer sweep at a couple of corpus
scales and worker counts, and prints a speedup / cache-hit table.  Future
perf PRs quote this table as their before/after evidence.

Five modes per scale:

* ``serial``     — jobs=1, memoization off (the seed's from-scratch path),
* ``parallel``   — sharded gathering, memoization off,
* ``engine``     — sharded and cache-aware (PR 1's default),
* ``store-cold`` — engine plus a *fresh* persistent artifact store
  (measures write-through overhead vs ``engine``),
* ``store-warm`` — the same store again in a new context (measures the
  cross-process warm path: everything loads, nothing is measured).

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py
    PYTHONPATH=src python scripts/bench_sweep.py --scales 1 2 --jobs 4
    PYTHONPATH=src python scripts/bench_sweep.py --json bench-sweep.json \\
        --min-warm-hit-rate 0.9        # CI: fail unless the warm run hits
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import EngineOptions
from repro.engine.stats import STATS, peak_rss_bytes, reset_stats
from repro.obs.schemas import BENCH_SCHEMA_VERSION, bench_document
from repro.experiments.common import StudyContext
from repro.store import ArtifactStore
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS

CORPORA = (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV)
STORE_PREFIXES = ("store.meas", "store.result", "store.baseline")


def store_hit_rate() -> float | None:
    """Combined hit rate across every store counter pair."""
    hits = sum(STATS.counters.get(f"{p}.hit", 0) for p in STORE_PREFIXES)
    misses = sum(STATS.counters.get(f"{p}.miss", 0) for p in STORE_PREFIXES)
    total = hits + misses
    return hits / total if total else None


def run_sweep(
    scale: float,
    engine: EngineOptions,
    store_dir: str | None,
    repeat: int = 1,
    clear_store_between: bool = False,
) -> dict:
    """Build a context and run the full sweep; returns a metrics row.

    With ``repeat`` > 1 the sweep runs that many times on fresh contexts
    and the fastest run wins — best-of-N is the standard guard against
    scheduler noise on shared machines.  ``clear_store_between`` empties
    the store before every run so each repetition of a cold-store mode
    really starts cold (the last run still leaves the store populated
    for a subsequent warm mode).
    """
    wall = None
    for _ in range(max(1, repeat)):
        store = ArtifactStore(store_dir) if store_dir is not None else None
        if store is not None and clear_store_between:
            store.clear()
        ctx = StudyContext.create(
            WorldConfig().scaled(scale), engine=engine, store=store
        )
        reset_stats()
        started = time.perf_counter()
        for dataset in CORPORA:
            for index in range(NUM_SNAPSHOTS):
                ctx.priority(dataset, index)
        elapsed = time.perf_counter() - started
        wall = elapsed if wall is None else min(wall, elapsed)
    return {
        "wall_seconds": wall,
        # Process-wide RSS high-water mark at the end of this mode.  The
        # HWM is monotonic, so within one bench process later rows carry
        # the running maximum — an upper envelope, not a per-mode peak
        # (the scaled-smoke children measure per-run peaks in isolation).
        "peak_rss_mb": round((peak_rss_bytes() or 0) / 2**20, 1),
        "rates": {
            prefix: STATS.hit_rate(prefix)
            for prefix in ("gather.obs", "censys.scan", "pipeline.mxident")
        },
        "store": {
            "hit_rate": store_hit_rate(),
            "hits": sum(
                STATS.counters.get(f"{p}.hit", 0) for p in STORE_PREFIXES
            ),
            "misses": sum(
                STATS.counters.get(f"{p}.miss", 0) for p in STORE_PREFIXES
            ),
            "read_bytes": STATS.counters.get("store.read_bytes", 0),
            "write_bytes": STATS.counters.get("store.write_bytes", 0),
        },
        # Per-phase timer breakdown (cumulative time descending), so the
        # JSON trajectory shows where each mode's wall clock went — not
        # just the total.  A list, because the writer's sort_keys=True
        # would destroy dict ordering.  Like the rates above, timers
        # describe the last repetition (stats are reset per repeat).
        "timers": [
            {
                "name": name,
                "seconds": seconds,
                "calls": STATS.timer_calls.get(name, 0),
            }
            for name, seconds in sorted(
                STATS.timers.items(), key=lambda item: (-item[1], item[0])
            )
        ],
    }


def fmt_rate(rate: float | None) -> str:
    return f"{100 * rate:5.1f}%" if rate is not None else "    --"


def smoke_child(scale: float, jobs: int, batch: int) -> dict:
    """One isolated scaled run; prints the JSON row the parent gates on.

    The interesting number is ``measure_delta_mb``: the RSS high-water
    mark the measure→infer sweep adds *on top of* the world build.  The
    world itself is eagerly built and O(scale); the streamed measure
    path is what must stay flat, so the gate compares deltas, not
    absolute peaks.
    """
    # Out-of-core posture: keep one decoded snapshot, trim memo caches
    # aggressively, spill early.  Explicit env settings still win.
    os.environ.setdefault("REPRO_STREAM_KEEP", "1")
    os.environ.setdefault("REPRO_STREAM_CACHE", "50000")
    os.environ.setdefault("REPRO_MEM_BUDGET_MB", "64")
    engine = EngineOptions(jobs=jobs, memoize=True, batch_domains=batch)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache_dir:
        built_at = time.perf_counter()
        ctx = StudyContext.create(
            WorldConfig().scaled(scale),
            engine=engine,
            store=ArtifactStore(cache_dir),
        )
        world_seconds = time.perf_counter() - built_at
        world_rss = peak_rss_bytes() or 0
        reset_stats()
        started = time.perf_counter()
        for dataset in CORPORA:
            for index in range(NUM_SNAPSHOTS):
                ctx.priority(dataset, index)
        wall = time.perf_counter() - started
        final_rss = peak_rss_bytes() or 0
    return {
        "scale": scale,
        "jobs": jobs,
        "batch_domains": batch,
        "world_seconds": round(world_seconds, 2),
        "measure_seconds": round(wall, 2),
        "world_rss_mb": round(world_rss / 2**20, 1),
        "final_rss_mb": round(final_rss / 2**20, 1),
        "measure_delta_mb": round((final_rss - world_rss) / 2**20, 1),
        "batches": STATS.counters.get("stream.batches", 0),
        "spilled_batches": STATS.counters.get("stream.batch.spilled", 0),
    }


def run_smoke_child(scale: float, jobs: int, batch: int) -> dict:
    """Spawn one smoke child in its own process and parse its JSON row."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(src), env.get("PYTHONPATH")) if part
    )
    result = subprocess.run(
        [
            sys.executable, __file__, "--smoke-child", str(scale),
            "--jobs", str(jobs), "--smoke-batch", str(batch),
        ],
        env=env, capture_output=True, text=True,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"smoke child (scale {scale}) failed:\n{result.stderr.strip()}"
        )
    return json.loads(result.stdout.splitlines()[-1])


def scaled_smoke(args) -> int:
    """Seed-vs-scaled RSS regression gate (the CI scaled-smoke job).

    Runs the sweep twice in isolated child processes — once at scale 1,
    once at ``--scaled-smoke SCALE`` — and fails unless the scaled run's
    measure-phase RSS delta stays within ``--rss-factor`` × the seed
    delta (with an ``--rss-floor-mb`` absolute allowance for fixed
    overheads), proving the streamed measure path is flat in scale.
    """
    print(
        f"scaled smoke: seed vs {args.scaled_smoke:g}x "
        f"(jobs={args.jobs}, batch={args.smoke_batch})"
    )
    children = [
        {"bench_schema": BENCH_SCHEMA_VERSION,
         **run_smoke_child(scale, args.jobs, args.smoke_batch)}
        for scale in (1.0, args.scaled_smoke)
    ]
    header = (
        f"{'scale':>6s} {'world':>8s} {'measure':>8s} {'world-rss':>9s}"
        f" {'final-rss':>9s} {'delta':>8s} {'batches':>7s} {'spilled':>7s}"
    )
    print(header)
    print("-" * len(header))
    for row in children:
        print(
            f"{row['scale']:>6.1f} {row['world_seconds']:>7.1f}s"
            f" {row['measure_seconds']:>7.1f}s {row['world_rss_mb']:>8.1f}M"
            f" {row['final_rss_mb']:>8.1f}M {row['measure_delta_mb']:>7.1f}M"
            f" {row['batches']:>7d} {row['spilled_batches']:>7d}"
        )
    seed, scaled = children
    allowed = max(
        args.rss_factor * seed["measure_delta_mb"], args.rss_floor_mb
    )
    failures: list[str] = []
    if scaled["measure_delta_mb"] > allowed:
        failures.append(
            f"measure-phase RSS delta {scaled['measure_delta_mb']:.1f}M at "
            f"scale {args.scaled_smoke:g} exceeds allowance {allowed:.1f}M "
            f"(max({args.rss_factor:g} x seed {seed['measure_delta_mb']:.1f}M, "
            f"floor {args.rss_floor_mb:g}M))"
        )
    if args.max_rss_mb is not None and scaled["final_rss_mb"] > args.max_rss_mb:
        failures.append(
            f"scaled-run peak RSS {scaled['final_rss_mb']:.1f}M exceeds "
            f"--max-rss-mb {args.max_rss_mb:g}"
        )
    verdict = "FAIL" if failures else "ok"
    print(
        f"{'':>6s} gate: delta {scaled['measure_delta_mb']:.1f}M vs allowed "
        f"{allowed:.1f}M -> {verdict}"
    )
    if args.json:
        document = bench_document(
            "scaled-smoke",
            children,
            failures=failures,
            jobs=args.jobs,
            batch_domains=args.smoke_batch,
            rss_factor=args.rss_factor,
            rss_floor_mb=args.rss_floor_mb,
            max_rss_mb=args.max_rss_mb,
            allowed_delta_mb=allowed,
        )
        with open(args.json, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", type=float, nargs="+", default=[1.0, 2.0],
        help="corpus scale factors to sweep (default: 1 2)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker count for the parallel/engine modes (default 4)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run each mode N times and report the fastest wall time "
             "(best-of-N; default 1)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the table as machine-readable JSON "
             "(the BENCH_*.json trajectory convention)",
    )
    parser.add_argument(
        "--min-warm-hit-rate", type=float, default=None, metavar="RATE",
        help="exit non-zero unless every store-warm run's store hit rate "
             "is at least RATE (0-1); CI gate for the persistent store",
    )
    parser.add_argument(
        "--max-rss-mb", type=float, default=None, metavar="MB",
        help="exit non-zero if peak RSS exceeds MB (bench: this process; "
             "scaled smoke: the scaled child)",
    )
    parser.add_argument(
        "--scaled-smoke", type=float, default=None, metavar="SCALE",
        help="instead of the mode table, run the seed-vs-SCALE RSS "
             "regression gate in isolated child processes (CI smoke job)",
    )
    parser.add_argument(
        "--smoke-batch", type=int, default=25, metavar="N",
        help="--batch-domains for the smoke runs (default 25)",
    )
    parser.add_argument(
        "--rss-factor", type=float, default=2.0, metavar="F",
        help="scaled measure-phase RSS delta may be at most F x the seed "
             "delta (default 2.0)",
    )
    parser.add_argument(
        "--rss-floor-mb", type=float, default=512.0, metavar="MB",
        help="absolute allowance the factor gate never drops below; the "
             "measure phase's working set is one decoded snapshot plus "
             "one in-flight pipeline run, both O(scale), so a pure "
             "factor gate would mis-fire at large scales (default 512: "
             "~35%% above the measured scale-50 delta, ~5x below the "
             "delta an unbounded cross-snapshot cache regression shows)",
    )
    parser.add_argument(
        "--smoke-child", type=float, default=None, metavar="SCALE",
        help=argparse.SUPPRESS,  # internal: one isolated smoke run
    )
    args = parser.parse_args(argv)
    if args.smoke_child is not None:
        print(json.dumps(smoke_child(args.smoke_child, args.jobs, args.smoke_batch)))
        return 0
    if args.scaled_smoke is not None:
        return scaled_smoke(args)

    header = (
        f"{'scale':>5s} {'mode':<10s} {'jobs':>4s} {'wall':>8s} {'speedup':>8s}"
        f" {'obs-cache':>9s} {'scan':>7s} {'mxident':>8s} {'store':>7s}"
    )
    print(header)
    print("-" * len(header))
    rows: list[dict] = []
    summaries: list[dict] = []
    failures: list[str] = []
    for scale in args.scales:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
            modes = [
                ("serial", EngineOptions(jobs=1, memoize=False), None),
                ("parallel", EngineOptions(jobs=args.jobs, memoize=False), None),
                ("engine", EngineOptions(jobs=args.jobs, memoize=True), None),
                ("store-cold", EngineOptions(jobs=args.jobs, memoize=True), cache_dir),
                ("store-warm", EngineOptions(jobs=args.jobs, memoize=True), cache_dir),
            ]
            walls: dict[str, float] = {}
            for name, engine, store_dir in modes:
                metrics = run_sweep(
                    scale, engine, store_dir,
                    repeat=args.repeat,
                    clear_store_between=(name == "store-cold"),
                )
                wall = metrics["wall_seconds"]
                walls[name] = wall
                baseline = walls["serial"]
                jobs = 1 if name == "serial" else args.jobs
                row = {
                    "bench_schema": BENCH_SCHEMA_VERSION,
                    "scale": scale,
                    "mode": name,
                    "jobs": jobs,
                    "speedup_vs_serial": baseline / wall if wall else None,
                    **metrics,
                }
                rows.append(row)
                print(
                    f"{scale:>5.1f} {name:<10s} {jobs:>4d} {wall:>7.2f}s"
                    f" {baseline / wall:>7.2f}x"
                    f" {fmt_rate(metrics['rates']['gather.obs']):>9s}"
                    f" {fmt_rate(metrics['rates']['censys.scan']):>7s}"
                    f" {fmt_rate(metrics['rates']['pipeline.mxident']):>8s}"
                    f" {fmt_rate(metrics['store']['hit_rate']):>7s}"
                )
                if (
                    name == "store-warm"
                    and args.min_warm_hit_rate is not None
                    and (metrics["store"]["hit_rate"] or 0.0) < args.min_warm_hit_rate
                ):
                    failures.append(
                        f"scale {scale}: store-warm hit rate "
                        f"{fmt_rate(metrics['store']['hit_rate']).strip()} < "
                        f"{100 * args.min_warm_hit_rate:.0f}%"
                    )
            summary = {
                "scale": scale,
                "warm_speedup_vs_cold": walls["store-cold"] / walls["store-warm"],
                "cold_overhead_vs_engine": walls["store-cold"] / walls["engine"] - 1.0,
            }
            summaries.append(summary)
            print(
                f"{'':>5s} warm {summary['warm_speedup_vs_cold']:.1f}x faster than"
                f" cold; cold overhead vs engine"
                f" {100 * summary['cold_overhead_vs_engine']:+.1f}%"
            )
    peak_mb = (peak_rss_bytes() or 0) / 2**20
    if args.max_rss_mb is not None and peak_mb > args.max_rss_mb:
        failures.append(
            f"bench peak RSS {peak_mb:.1f}M exceeds --max-rss-mb "
            f"{args.max_rss_mb:g}"
        )
    if args.json:
        document = bench_document(
            "sweep",
            rows,
            failures=failures,
            corpora=[dataset.value for dataset in CORPORA],
            num_snapshots=NUM_SNAPSHOTS,
            jobs=args.jobs,
            peak_rss_mb=round(peak_mb, 1),
            summaries=summaries,
        )
        with open(args.json, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.json}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
