#!/usr/bin/env python
"""One-command perf baseline: the longitudinal sweep across engine modes.

Runs the 3-corpora × 9-snapshot measure→infer sweep at a couple of corpus
scales and worker counts, and prints a speedup / cache-hit table.  Future
perf PRs quote this table as their before/after evidence.

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py
    PYTHONPATH=src python scripts/bench_sweep.py --scales 1 2 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.engine import EngineOptions
from repro.engine.stats import STATS, reset_stats
from repro.experiments.common import StudyContext
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS

CORPORA = (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV)


def run_sweep(scale: float, engine: EngineOptions) -> tuple[float, dict[str, float | None]]:
    """Build a context and run the full sweep; returns (wall, cache rates)."""
    ctx = StudyContext.create(WorldConfig().scaled(scale), engine=engine)
    reset_stats()
    started = time.perf_counter()
    for dataset in CORPORA:
        for index in range(NUM_SNAPSHOTS):
            ctx.priority(dataset, index)
    wall = time.perf_counter() - started
    rates = {
        prefix: STATS.hit_rate(prefix)
        for prefix in ("gather.obs", "censys.scan", "pipeline.mxident")
    }
    return wall, rates


def fmt_rate(rate: float | None) -> str:
    return f"{100 * rate:5.1f}%" if rate is not None else "    --"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", type=float, nargs="+", default=[1.0, 2.0],
        help="corpus scale factors to sweep (default: 1 2)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker count for the parallel/engine modes (default 4)",
    )
    args = parser.parse_args(argv)

    header = (
        f"{'scale':>5s} {'mode':<10s} {'jobs':>4s} {'wall':>8s} {'speedup':>8s}"
        f" {'obs-cache':>9s} {'scan':>7s} {'mxident':>8s}"
    )
    print(header)
    print("-" * len(header))
    for scale in args.scales:
        modes = [
            ("serial", EngineOptions(jobs=1, memoize=False)),
            ("parallel", EngineOptions(jobs=args.jobs, memoize=False)),
            ("engine", EngineOptions(jobs=args.jobs, memoize=True)),
        ]
        baseline: float | None = None
        for name, engine in modes:
            wall, rates = run_sweep(scale, engine)
            if baseline is None:
                baseline = wall
            jobs = 1 if name == "serial" else args.jobs
            print(
                f"{scale:>5.1f} {name:<10s} {jobs:>4d} {wall:>7.2f}s"
                f" {baseline / wall:>7.2f}x"
                f" {fmt_rate(rates['gather.obs']):>9s}"
                f" {fmt_rate(rates['censys.scan']):>7s}"
                f" {fmt_rate(rates['pipeline.mxident']):>8s}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
