"""Benchmark E1 — regenerate Tables 1/2/3 (the worked examples)."""

from conftest import emit

from repro.experiments import tab1_2_3


def test_bench_tables_1_2_3(ctx, benchmark):
    result = benchmark.pedantic(tab1_2_3.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    assert result.inferences["gsipartners.com"].attributions == {"google.com": 1.0}
