"""Benchmark E6 — regenerate Figure 6 (longitudinal market share)."""

from conftest import emit

from repro.experiments import fig6


def test_bench_fig6_longitudinal(ctx, benchmark):
    result = benchmark.pedantic(fig6.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    alexa_top = result.panel("alexa:top")
    assert alexa_top.result["google"].delta_percent() > 0
    assert alexa_top.result["SELF"].delta_percent() < 0
