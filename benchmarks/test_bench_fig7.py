"""Benchmark E7 — regenerate Figure 7 (Sankey churn, Alexa 2017→2021)."""

from conftest import emit

from repro.experiments import fig7


def test_bench_fig7_churn(ctx, benchmark):
    result = benchmark.pedantic(fig7.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    matrix = result.matrix
    to_big_two = matrix.flow("Self-Hosted", "Google") + matrix.flow(
        "Self-Hosted", "Microsoft"
    )
    assert to_big_two > matrix.outgoing("Self-Hosted") / 4
