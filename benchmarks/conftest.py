"""Benchmark fixtures: one shared study context per session.

Corpus scale is controlled by the ``REPRO_SCALE`` environment variable
(default 1.0 → the standard small world; the paper's corpora are ~78×).
Benchmarks print the regenerated table/figure so a ``--benchmark-only -s``
run reproduces the paper's artifacts alongside the timings.
"""

import pytest

from repro.experiments.common import StudyContext, env_scale
from repro.world.build import WorldConfig


@pytest.fixture(scope="session")
def ctx():
    config = WorldConfig().scaled(env_scale())
    context = StudyContext.create(config)
    # Pre-gather the final-snapshot measurements so benchmarks time the
    # analysis work, not the one-off measurement materialization.
    return context


def emit(result) -> None:
    """Print a rendered experiment artifact beneath the benchmark output."""
    print()
    print(result.render())
