"""Benchmark E5 — regenerate Figure 5 (top companies per domain set)."""

from conftest import emit

from repro.experiments import fig5


def test_bench_fig5_top_companies(ctx, benchmark):
    result = benchmark.pedantic(fig5.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    assert result.panels["Alexa Top 1M"][0].label == "google"
    assert result.panels["COM"][0].label == "godaddy"
    assert result.panels["GOV (all)"][0].label == "microsoft"
