"""Bench — Section 4.1 corpus-construction funnel."""

from conftest import emit

from repro.experiments import sec41_corpus


def test_bench_sec41_corpus_funnel(ctx, benchmark):
    result = benchmark.pedantic(sec41_corpus.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    funnel = result.funnel
    assert funnel.union_domains > funnel.list_stable >= funnel.mx_stable
