"""Extension bench — SPF-revealed eventual providers (Section 3.4)."""

from conftest import emit

from repro.experiments import ext_spf


def test_bench_ext_spf_eventual_providers(ctx, benchmark):
    result = benchmark.pedantic(ext_spf.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    for report in result.reports.values():
        assert report.filtered_total >= report.revealed
