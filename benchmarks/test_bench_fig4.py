"""Benchmark E2 — regenerate Figure 4 (approach accuracy comparison)."""

from conftest import emit

from repro.experiments import fig4


def test_bench_fig4_accuracy(ctx, benchmark):
    result = benchmark.pedantic(fig4.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    # Shape gate: the priority approach wins on every evaluation set.
    for evaluation in result.evaluations.values():
        samples = {cell.sample_set for cell in evaluation.cells}
        for sample in samples:
            priority = evaluation.cell(sample, "priority-based")
            assert priority.accuracy >= 0.95
