"""Micro-benchmarks of the core machinery.

These are throughput benches (pytest-benchmark runs them many times):
certificate grouping, the full priority pipeline, the LPM trie, PSL
extraction, and banner parsing — the hot paths of a full-scale run over
hundreds of thousands of domains.
"""

import pytest

from repro.core.certgroup import CertificatePreprocessor
from repro.core.pipeline import PriorityPipeline
from repro.dnscore.psl import default_psl
from repro.smtp.banner import identity_from_message
from repro.world.entities import DatasetTag

LAST = 8


@pytest.fixture(scope="module")
def alexa_measurements(ctx):
    return ctx.measurements(DatasetTag.ALEXA, LAST)


def test_bench_priority_pipeline(ctx, alexa_measurements, benchmark):
    pipeline = PriorityPipeline(ctx.world.trust_store, ctx.company_map, ctx.world.psl)
    result = benchmark(pipeline.run, alexa_measurements)
    assert len(result) == len(alexa_measurements)


def test_bench_certificate_grouping(ctx, alexa_measurements, benchmark):
    certificates = [
        ip.scan.certificate
        for measurement in alexa_measurements.values()
        for ip in measurement.all_ips()
        if ip.scan is not None and ip.scan.certificate is not None
    ]
    preprocessor = CertificatePreprocessor(ctx.world.psl)
    groups = benchmark(preprocessor.build, certificates)
    assert len(groups) > 10


def test_bench_lpm_lookup(ctx, benchmark):
    table = ctx.world.prefix2as
    addresses = [str(block.prefix.first + 1) for block in ctx.world.registry.blocks()]

    def lookup_all():
        return [table.lookup_asn(address) for address in addresses]

    results = benchmark(lookup_all)
    assert all(asn is not None for asn in results)


def test_bench_psl_extraction(benchmark):
    psl = default_psl()
    names = [
        "aspmx.l.google.com", "mx0a-00176a02.pphosted.com", "mail.bar.co.uk",
        "se26.mailspamprotection.com", "a.b.c.d.example.com.br", "mx.foo.ck",
    ] * 50

    def extract_all():
        return [psl.registered_domain(name) for name in names]

    results = benchmark(extract_all)
    assert results[0] == "google.com"


def test_bench_banner_parsing(benchmark):
    banners = [
        "mx.google.com ESMTP ready",
        "IP-1-2-3-4 ESMTP",
        "localhost.localdomain ESMTP Postfix",
        "220 welcome to mx1.provider.com the best server",
    ] * 100

    def parse_all():
        return [identity_from_message(banner) for banner in banners]

    results = benchmark(parse_all)
    assert results[0].registered_domain == "google.com"


def test_bench_measurement_gathering(ctx, benchmark):
    domains = ctx.domains(DatasetTag.GOV)

    def gather():
        return ctx.gatherer.gather(domains, LAST)

    measurements = benchmark(gather)
    assert len(measurements) == len(domains)
