"""Benchmark E9 — regenerate Table 6 (top-15 companies per dataset)."""

from conftest import emit

from repro.experiments import tab6


def test_bench_tab6_top15(ctx, benchmark):
    result = benchmark.pedantic(tab6.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    from repro.world.entities import DatasetTag

    assert result.rankings[DatasetTag.ALEXA][0].label == "google"
    assert result.rankings[DatasetTag.COM][0].label == "godaddy"
    assert result.rankings[DatasetTag.GOV][0].label == "microsoft"
