"""Extension bench — HHI / CR-k concentration of the provider market."""

from conftest import emit

from repro.experiments import ext_concentration
from repro.world.entities import DatasetTag


def test_bench_ext_concentration(ctx, benchmark):
    result = benchmark.pedantic(ext_concentration.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    assert result.hhi_delta(DatasetTag.ALEXA) > 0  # the market concentrates
