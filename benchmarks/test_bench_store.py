"""Store benches: columnar codec vs pickle, and the cold/warm store paths.

The codec's pitch is quantified here: per-(corpus, snapshot) snapshots
round-trip through interned, packed columns that are several times
smaller than a naive pickle of the same objects and faster to round-trip
than the equally-compact zlib-compressed pickle.  The context benches
time the write-through (cold) and load (warm) paths end to end.
"""

import pickle
import zlib

import pytest

from repro.experiments.common import StudyContext
from repro.store import (
    ArtifactStore,
    decode_measurements,
    decode_result,
    encode_measurements,
    encode_result,
)
from repro.world.entities import DatasetTag

LAST = 8


@pytest.fixture(scope="module")
def measurements(ctx):
    return ctx.measurements(DatasetTag.COM, LAST)


@pytest.fixture(scope="module")
def result(ctx):
    return ctx.priority_result(DatasetTag.COM, LAST)


def test_bench_encode_measurements(measurements, benchmark):
    encoded = benchmark(encode_measurements, measurements)
    # The size pitch: beats even a compressed pickle, let alone a raw one.
    assert len(encoded) < len(zlib.compress(pickle.dumps(measurements), 3))


def test_bench_decode_measurements(measurements, benchmark):
    encoded = encode_measurements(measurements)
    decoded = benchmark(decode_measurements, encoded)
    assert decoded == measurements


def test_bench_encode_result(result, benchmark):
    encoded = benchmark(encode_result, result)
    assert len(encoded) < len(pickle.dumps(result)) / 2


def test_bench_decode_result(result, benchmark):
    encoded = encode_result(result)
    decoded = benchmark(decode_result, encoded)
    assert decoded.inferences == result.inferences


def test_bench_pickle_round_trip_baseline(measurements, benchmark):
    """The naive alternative, for the comparison table."""

    def round_trip():
        return pickle.loads(pickle.dumps(measurements))

    assert benchmark(round_trip) == measurements


def test_bench_store_cold_snapshot(ctx, tmp_path, benchmark):
    """Write-through cost: encode + atomic write of one snapshot."""
    measurements = ctx.measurements(DatasetTag.COM, LAST)
    store = ArtifactStore(tmp_path)
    config = ctx.world.config

    def write_through():
        store.save_measurements(config, DatasetTag.COM, LAST, measurements)

    benchmark(write_through)
    assert store.entry_count() == 1


def test_bench_store_warm_snapshot(ctx, tmp_path, benchmark):
    """Warm-path cost: read + decode of one persisted snapshot."""
    measurements = ctx.measurements(DatasetTag.COM, LAST)
    store = ArtifactStore(tmp_path)
    config = ctx.world.config
    store.save_measurements(config, DatasetTag.COM, LAST, measurements)

    def load():
        return store.load_measurements(config, DatasetTag.COM, LAST)

    assert benchmark(load) == measurements
