"""Benchmark E3 — regenerate Table 4 (data-availability breakdown)."""

from conftest import emit

from repro.experiments import tab4


def test_bench_tab4_breakdown(ctx, benchmark):
    result = benchmark.pedantic(tab4.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    for breakdown in result.breakdowns.values():
        assert sum(breakdown.counts.values()) == breakdown.total
