"""Ablation benches for the design choices called out in DESIGN.md.

Each ablation disables one ingredient of the priority-based approach and
measures the accuracy it costs, against ground truth, on the Alexa corpus:

* no step 4 (misidentification checking),
* accepting self-signed certificates as cert evidence,
* dropping certificates entirely (banner-first),
* dropping banners entirely (cert-only + MX fallback),
* first-MX-wins instead of credit splitting.
"""

import pytest
from conftest import emit

from repro.analysis.accuracy import is_correct
from repro.analysis.render import format_table
from repro.core.pipeline import PipelineConfig, PriorityPipeline
from repro.world.entities import DatasetTag

LAST = 8

ABLATIONS = {
    "full": PipelineConfig(),
    "no-step4": PipelineConfig(check_misidentifications=False),
    "accept-self-signed": PipelineConfig(require_valid_cert=False),
    "no-certs": PipelineConfig(use_certs=False),
    "no-banners": PipelineConfig(use_banners=False),
    "first-mx-wins": PipelineConfig(split_credit=False),
}


class AblationResult:
    def __init__(self, rows):
        self.rows = rows

    def render(self):
        return format_table(
            ["Ablation", "Correct", "Total", "Accuracy"],
            self.rows,
            title="Ablation — accuracy cost of each design choice (Alexa)",
        )


def run_ablations(ctx):
    measurements = ctx.measurements(DatasetTag.ALEXA, LAST)
    eligible = [d for d, m in measurements.items() if m.has_smtp_server]
    rows = []
    accuracy_by_name = {}
    for name, config in ABLATIONS.items():
        pipeline = PriorityPipeline(
            ctx.world.trust_store, ctx.company_map, ctx.world.psl, config
        )
        result = pipeline.run(measurements)
        correct = sum(
            1
            for domain in eligible
            if is_correct(
                result[domain], ctx.ground_truth(domain, LAST), ctx.company_map
            )
        )
        accuracy = correct / len(eligible)
        accuracy_by_name[name] = accuracy
        rows.append([name, correct, len(eligible), f"{100 * accuracy:.2f}%"])
    return AblationResult(rows), accuracy_by_name


def test_bench_ablations(ctx, benchmark):
    result, accuracy = benchmark.pedantic(
        run_ablations, args=(ctx,), rounds=1, iterations=1
    )
    emit(result)
    # The full configuration is never worse than any ablation.
    full = accuracy["full"]
    for name, value in accuracy.items():
        assert value <= full + 1e-9, name
    # Step 4 measurably matters (it repairs the VPS / spoof / customer-cert
    # corner cases).
    assert accuracy["no-step4"] < full
