"""Extension bench — learned misidentification detection."""

from conftest import emit

from repro.experiments import ext_ml


def test_bench_ext_ml_detector(ctx, benchmark):
    result = benchmark.pedantic(ext_ml.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    assert result.learned.recall >= result.rule_based.recall
