"""Benchmark E4 — regenerate Table 5 (provider IDs per company)."""

from conftest import emit

from repro.experiments import tab5


def test_bench_tab5_provider_ids(ctx, benchmark):
    result = benchmark.pedantic(tab5.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    assert "pphosted.com" in result.entries["proofpoint"][0]
