"""Benchmark E8 — regenerate Figure 8 (provider preferences by ccTLD)."""

from conftest import emit

from repro.experiments import fig8


def test_bench_fig8_country_preferences(ctx, benchmark):
    result = benchmark.pedantic(fig8.run, args=(ctx,), rounds=1, iterations=1)
    emit(result)
    prefs = result.preferences
    assert prefs.dominant_cctld("yandex") == "ru"
    assert prefs.dominant_cctld("tencent") == "cn"
