"""Engine benches: the 3-corpora × 9-snapshot longitudinal sweep.

Three execution modes of the same sweep (the workload behind Figures 6/7
and Tables 4/6):

* **serial** — jobs=1, memoization off: the seed repo's from-scratch path,
* **parallel** — sharded gathering/identification, memoization off,
* **engine** — sharded *and* cache-aware (the default engine).

``test_bench_engine_speedup_report`` prints the before/after comparison
(wall clock, speedup, cache hit rates) that perf PRs quote.  Worker count
comes from ``REPRO_JOBS`` (default 4 here, the acceptance configuration).
"""

import time

from repro.engine import EngineOptions, env_jobs
from repro.engine.stats import STATS
from repro.experiments.common import StudyContext, env_scale
from repro.world.build import WorldConfig
from repro.world.entities import DatasetTag
from repro.world.population import NUM_SNAPSHOTS

CORPORA = (DatasetTag.ALEXA, DatasetTag.COM, DatasetTag.GOV)

# Wall-clock per mode, recorded even under --benchmark-disable so the
# speedup report works in smoke runs too.
_RECORDED: dict[str, float] = {}
_SECOND_CORPUS_REUSE: dict[str, float | None] = {}


def _context(**kwargs) -> StudyContext:
    config = WorldConfig().scaled(env_scale())
    return StudyContext.create(config, engine=EngineOptions(**kwargs))


def _sweep(ctx: StudyContext, mode: str) -> None:
    started = time.perf_counter()
    reuse: float | None = None
    for corpus_index, dataset in enumerate(CORPORA):
        if corpus_index == 1:
            before_second = STATS.snapshot()
        for index in range(NUM_SNAPSHOTS):
            ctx.priority(dataset, index)
        if corpus_index == 1:
            reuse = STATS.delta_hit_rate("gather.obs", before_second)
    _RECORDED[mode] = time.perf_counter() - started
    _SECOND_CORPUS_REUSE[mode] = reuse


def test_bench_sweep_serial(benchmark):
    benchmark.pedantic(
        _sweep,
        setup=lambda: ((_context(jobs=1, memoize=False), "serial"), {}),
        rounds=1,
        iterations=1,
    )


def test_bench_sweep_parallel(benchmark):
    jobs = env_jobs(default=4)
    benchmark.pedantic(
        _sweep,
        setup=lambda: ((_context(jobs=jobs, memoize=False), "parallel"), {}),
        rounds=1,
        iterations=1,
    )


def test_bench_sweep_engine(benchmark):
    jobs = env_jobs(default=4)
    benchmark.pedantic(
        _sweep,
        setup=lambda: ((_context(jobs=jobs, memoize=True), "engine"), {}),
        rounds=1,
        iterations=1,
    )
    # The acceptance criterion: on the second corpus of a sweep, more than
    # half of all scan-path lookups are served from the interning cache.
    reuse = _SECOND_CORPUS_REUSE["engine"]
    assert reuse is not None and reuse > 0.5, f"scan-cache reuse {reuse}"


def test_bench_engine_speedup_report():
    """Print the serial/parallel/engine comparison table."""
    missing = {"serial", "engine"} - set(_RECORDED)
    assert not missing, f"run the sweep benches first (missing {missing})"
    serial = _RECORDED["serial"]
    print()
    print(f"longitudinal sweep ({len(CORPORA)} corpora x {NUM_SNAPSHOTS} snapshots, "
          f"scale={env_scale()}, jobs={env_jobs(default=4)})")
    print(f"{'mode':<10s} {'wall':>8s} {'speedup':>8s} {'2nd-corpus scan reuse':>22s}")
    for mode in ("serial", "parallel", "engine"):
        if mode not in _RECORDED:
            continue
        wall = _RECORDED[mode]
        reuse = _SECOND_CORPUS_REUSE.get(mode)
        shown = f"{100 * reuse:.1f}%" if reuse is not None else "--"
        print(f"{mode:<10s} {wall:>7.2f}s {serial / wall:>7.2f}x {shown:>22s}")
    # The cache-aware engine must beat the from-scratch serial path.
    assert serial / _RECORDED["engine"] > 1.0